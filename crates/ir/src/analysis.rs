//! Compute-once, invalidate-on-mutation analysis caching.
//!
//! Every phase of the out-of-SSA pipeline — SSA construction, the SSA
//! optimizations, the translation itself and register allocation — needs
//! some subset of the same control-flow analyses (CFG, dominator tree,
//! dominance frontiers, loop nesting, static block frequencies).
//! Recomputing them per phase is exactly the engineering cost the paper's
//! Section IV is about avoiding, so the [`AnalysisManager`] computes each
//! analysis lazily, caches it, and hands out shared references until the
//! function is mutated.
//!
//! Invalidation is two-level, mirroring the key observation of the fast
//! liveness checker (Boissinot et al., CGO 2008) that some precomputations
//! depend only on the CFG:
//!
//! * [`AnalysisManager::invalidate_cfg`] — the block structure changed
//!   (edge splitting, new blocks): everything is dropped;
//! * instruction-only mutations (copy insertion inside existing blocks,
//!   renaming, sequentialization) keep all analyses cached here valid, since
//!   CFG, dominators, frontiers, loops and frequencies only read block
//!   structure.
//!
//! Invalidated analyses are not deallocated: their storage moves to a spare
//! slot and the next computation rebuilds *into* it (see
//! [`ControlFlowGraph::recompute`]), so a corpus driver that reuses one
//! manager across thousands of functions performs almost no per-function
//! heap allocation for its CFG-level analyses.
//!
//! The manager also counts how many times each analysis was actually
//! computed ([`AnalysisManager::counts`]) and how many CFG versions it has
//! seen, which is what lets the test suite *prove* the compute-once claim:
//! over a whole pipeline, no analysis may run twice for the same CFG
//! version.
//!
//! Liveness-level caches (which *do* depend on instructions) layer on top of
//! this manager in `ossa-liveness`.

use std::cell::{Cell, OnceCell};

use crate::cfg::ControlFlowGraph;
use crate::dominance::{DominanceFrontiers, DominatorTree};
use crate::function::Function;
use crate::loops::{BlockFrequencies, LoopAnalysis};

/// Cumulative compute counters of one [`AnalysisManager`].
///
/// `cfg_versions` counts the CFG versions the manager has seen (1 for a
/// fresh manager, +1 per [`AnalysisManager::invalidate_cfg`]); the other
/// fields count actual computations of each analysis. A correctly threaded
/// pipeline maintains `counts.<analysis> <= counts.cfg_versions` for every
/// CFG-level analysis — each is computed at most once per CFG version.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IrAnalysisCounts {
    /// Number of [`ControlFlowGraph`] computations.
    pub cfg: u64,
    /// Number of [`DominatorTree`] computations.
    pub domtree: u64,
    /// Number of [`DominanceFrontiers`] computations.
    pub frontiers: u64,
    /// Number of [`LoopAnalysis`] computations.
    pub loops: u64,
    /// Number of [`BlockFrequencies`] computations.
    pub frequencies: u64,
    /// Number of CFG versions seen (1 + number of CFG invalidations).
    pub cfg_versions: u64,
}

/// Lazy cache of the CFG-level analyses of one function.
///
/// The manager does not borrow the function; each accessor takes it as an
/// argument and the caller is responsible for invalidating after mutations
/// (the pass pipeline does this at its phase boundaries).
///
/// # Examples
///
/// ```
/// use ossa_ir::analysis::AnalysisManager;
/// use ossa_ir::builder::FunctionBuilder;
///
/// let mut b = FunctionBuilder::new("f", 0);
/// let entry = b.create_block();
/// b.set_entry(entry);
/// b.switch_to_block(entry);
/// b.ret(None);
/// let func = b.finish();
///
/// let analyses = AnalysisManager::new();
/// let domtree = analyses.domtree(&func);
/// assert_eq!(domtree.root(), entry);
/// // The second call returns the cached tree without recomputing.
/// assert_eq!(analyses.domtree(&func).root(), entry);
/// assert_eq!(analyses.counts().domtree, 1);
/// ```
#[derive(Default)]
pub struct AnalysisManager {
    cfg: OnceCell<ControlFlowGraph>,
    domtree: OnceCell<DominatorTree>,
    frontiers: OnceCell<DominanceFrontiers>,
    loops: OnceCell<LoopAnalysis>,
    freqs: OnceCell<BlockFrequencies>,
    /// Storage recycled from invalidated analyses: the next computation
    /// rebuilds into it instead of allocating from scratch.
    spare_cfg: Cell<Option<ControlFlowGraph>>,
    spare_domtree: Cell<Option<DominatorTree>>,
    spare_frontiers: Cell<Option<DominanceFrontiers>>,
    spare_loops: Cell<Option<LoopAnalysis>>,
    spare_freqs: Cell<Option<BlockFrequencies>>,
    counts: Cell<IrAnalysisCounts>,
}

impl std::fmt::Debug for AnalysisManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The spare slots are write-only storage behind `Cell`s; show the
        // cached analyses and the counters.
        f.debug_struct("AnalysisManager")
            .field("cfg", &self.cfg)
            .field("domtree", &self.domtree)
            .field("frontiers", &self.frontiers)
            .field("loops", &self.loops)
            .field("freqs", &self.freqs)
            .field("counts", &self.counts.get())
            .finish_non_exhaustive()
    }
}

impl AnalysisManager {
    /// Creates an empty manager; nothing is computed until first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn bump(&self, f: impl FnOnce(&mut IrAnalysisCounts)) {
        let mut counts = self.counts.get();
        f(&mut counts);
        self.counts.set(counts);
    }

    /// The cumulative compute counters (see [`IrAnalysisCounts`]).
    pub fn counts(&self) -> IrAnalysisCounts {
        let mut counts = self.counts.get();
        counts.cfg_versions += 1; // versions = invalidations + 1
        counts
    }

    /// The control-flow graph, computed on first use.
    pub fn cfg(&self, func: &Function) -> &ControlFlowGraph {
        self.cfg.get_or_init(|| {
            self.bump(|c| c.cfg += 1);
            match self.spare_cfg.take() {
                Some(mut cfg) => {
                    cfg.recompute(func);
                    cfg
                }
                None => ControlFlowGraph::compute(func),
            }
        })
    }

    /// The dominator tree, computed on first use.
    pub fn domtree(&self, func: &Function) -> &DominatorTree {
        // Compute the CFG first so the borrow of `self.cfg` ends before the
        // `domtree` cell is initialized.
        self.cfg(func);
        self.domtree.get_or_init(|| {
            self.bump(|c| c.domtree += 1);
            let cfg = self.cfg.get().expect("cfg");
            match self.spare_domtree.take() {
                Some(mut domtree) => {
                    domtree.recompute(func, cfg);
                    domtree
                }
                None => DominatorTree::compute(func, cfg),
            }
        })
    }

    /// The dominance frontiers, computed on first use.
    pub fn frontiers(&self, func: &Function) -> &DominanceFrontiers {
        self.domtree(func);
        self.frontiers.get_or_init(|| {
            self.bump(|c| c.frontiers += 1);
            let cfg = self.cfg.get().expect("cfg");
            let domtree = self.domtree.get().expect("domtree");
            match self.spare_frontiers.take() {
                Some(mut frontiers) => {
                    frontiers.recompute(func, cfg, domtree);
                    frontiers
                }
                None => DominanceFrontiers::compute(func, cfg, domtree),
            }
        })
    }

    /// The natural-loop analysis, computed on first use.
    pub fn loops(&self, func: &Function) -> &LoopAnalysis {
        self.domtree(func);
        self.loops.get_or_init(|| {
            self.bump(|c| c.loops += 1);
            let cfg = self.cfg.get().expect("cfg");
            let domtree = self.domtree.get().expect("domtree");
            match self.spare_loops.take() {
                Some(mut loops) => {
                    loops.recompute(func, cfg, domtree);
                    loops
                }
                None => LoopAnalysis::compute(func, cfg, domtree),
            }
        })
    }

    /// The static block-frequency estimate, computed on first use.
    pub fn frequencies(&self, func: &Function) -> &BlockFrequencies {
        self.loops(func);
        self.freqs.get_or_init(|| {
            self.bump(|c| c.frequencies += 1);
            let loops = self.loops.get().expect("loops");
            match self.spare_freqs.take() {
                Some(mut freqs) => {
                    freqs.recompute_from_loop_depths(func, loops);
                    freqs
                }
                None => BlockFrequencies::from_loop_depths(func, loops),
            }
        })
    }

    /// Drops every cached analysis. Must be called after any mutation that
    /// changes the block structure (new blocks, edge splitting, terminator
    /// rewrites) and before reusing the manager for a different function;
    /// instruction-only mutations keep this manager's caches valid.
    ///
    /// The dropped analyses' storage is kept and recycled by the next
    /// computation.
    pub fn invalidate_cfg(&mut self) {
        if let Some(cfg) = self.cfg.take() {
            self.spare_cfg.set(Some(cfg));
        }
        if let Some(domtree) = self.domtree.take() {
            self.spare_domtree.set(Some(domtree));
        }
        if let Some(frontiers) = self.frontiers.take() {
            self.spare_frontiers.set(Some(frontiers));
        }
        if let Some(loops) = self.loops.take() {
            self.spare_loops.set(Some(loops));
        }
        if let Some(freqs) = self.freqs.take() {
            self.spare_freqs.set(Some(freqs));
        }
        self.bump(|c| c.cfg_versions += 1);
    }

    /// Returns `true` if the CFG has already been computed.
    pub fn is_cfg_cached(&self) -> bool {
        self.cfg.get().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn two_block_function() -> Function {
        let mut b = FunctionBuilder::new("two", 0);
        let entry = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        b.jump(exit);
        b.switch_to_block(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn analyses_are_computed_lazily_and_cached() {
        let func = two_block_function();
        let am = AnalysisManager::new();
        assert!(!am.is_cfg_cached());
        let freqs = am.frequencies(&func);
        assert_eq!(freqs.frequency(func.entry()), 1.0);
        assert!(am.is_cfg_cached());
        // Cached pointers are stable across calls.
        let a = am.cfg(&func) as *const ControlFlowGraph;
        let b = am.cfg(&func) as *const ControlFlowGraph;
        assert_eq!(a, b);
        // Each analysis was computed exactly once.
        let counts = am.counts();
        assert_eq!(counts.cfg, 1);
        assert_eq!(counts.domtree, 1);
        assert_eq!(counts.loops, 1);
        assert_eq!(counts.frequencies, 1);
        assert_eq!(counts.cfg_versions, 1);
    }

    #[test]
    fn invalidation_recomputes_for_the_mutated_function() {
        let mut func = two_block_function();
        let mut am = AnalysisManager::new();
        assert_eq!(am.cfg(&func).num_reachable(), 2);
        // Add a block and re-point the entry jump at it.
        let extra = func.add_block();
        let entry = func.entry();
        let term = func.terminator(entry).expect("terminator");
        *func.inst_mut(term) = crate::InstData::Jump { dest: extra };
        func.append_inst(extra, crate::InstData::Return { value: None });
        am.invalidate_cfg();
        assert!(!am.is_cfg_cached());
        assert_eq!(am.cfg(&func).num_reachable(), 2);
        assert!(am.cfg(&func).is_reachable(extra));
        let counts = am.counts();
        assert_eq!(counts.cfg, 2);
        assert_eq!(counts.cfg_versions, 2);
    }

    #[test]
    fn domtree_and_loops_share_the_cached_cfg() {
        let func = two_block_function();
        let am = AnalysisManager::new();
        let domtree = am.domtree(&func);
        assert!(domtree.dominates(func.entry(), func.blocks().nth(1).unwrap()));
        assert_eq!(am.loops(&func).num_loops(), 0);
    }

    #[test]
    fn recycled_analyses_match_fresh_computations() {
        // Run the manager over two different functions with an invalidation
        // in between: the second round reuses the first round's storage and
        // must be indistinguishable from a fresh computation.
        let small = two_block_function();
        let mut b = FunctionBuilder::new("big", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        b.jump(header);
        b.switch_to_block(header);
        b.branch(n, body, exit);
        b.switch_to_block(body);
        b.jump(header);
        b.switch_to_block(exit);
        b.ret(None);
        let big = b.finish();

        let mut am = AnalysisManager::new();
        for func in [&big, &small, &big] {
            am.invalidate_cfg();
            let fresh_cfg = ControlFlowGraph::compute(func);
            let fresh_dom = DominatorTree::compute(func, &fresh_cfg);
            let fresh_front = DominanceFrontiers::compute(func, &fresh_cfg, &fresh_dom);
            let cfg = am.cfg(func);
            assert_eq!(cfg.reverse_post_order(), fresh_cfg.reverse_post_order());
            for block in func.blocks() {
                assert_eq!(cfg.succs(block), fresh_cfg.succs(block));
                assert_eq!(cfg.preds(block), fresh_cfg.preds(block));
                assert_eq!(cfg.is_reachable(block), fresh_cfg.is_reachable(block));
                assert_eq!(am.domtree(func).idom(block), fresh_dom.idom(block));
                assert_eq!(am.domtree(func).children(block), fresh_dom.children(block));
                assert_eq!(am.frontiers(func).frontier(block), fresh_front.frontier(block));
            }
            assert_eq!(am.domtree(func).preorder(), fresh_dom.preorder());
        }
    }
}
