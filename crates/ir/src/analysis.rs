//! Compute-once, invalidate-on-mutation analysis caching.
//!
//! Every phase of the out-of-SSA translation needs some subset of the same
//! control-flow analyses (CFG, dominator tree, loop nesting, static block
//! frequencies). Recomputing them per phase is exactly the engineering cost
//! the paper's Section IV is about avoiding, so the [`AnalysisManager`]
//! computes each analysis lazily, caches it, and hands out shared references
//! until the function is mutated.
//!
//! Invalidation is two-level, mirroring the key observation of the fast
//! liveness checker (Boissinot et al., CGO 2008) that some precomputations
//! depend only on the CFG:
//!
//! * [`AnalysisManager::invalidate_cfg`] — the block structure changed
//!   (edge splitting, new blocks): everything is dropped;
//! * instruction-only mutations (copy insertion inside existing blocks,
//!   renaming, sequentialization) keep all analyses cached here valid, since
//!   CFG, dominators, loops and frequencies only read block structure.
//!
//! Liveness-level caches (which *do* depend on instructions) layer on top of
//! this manager in `ossa-liveness`.

use std::cell::OnceCell;

use crate::cfg::ControlFlowGraph;
use crate::dominance::DominatorTree;
use crate::function::Function;
use crate::loops::{BlockFrequencies, LoopAnalysis};

/// Lazy cache of the CFG-level analyses of one function.
///
/// The manager does not borrow the function; each accessor takes it as an
/// argument and the caller is responsible for invalidating after mutations
/// (the `ossa-destruct` driver does this at its phase boundaries).
///
/// # Examples
///
/// ```
/// use ossa_ir::analysis::AnalysisManager;
/// use ossa_ir::builder::FunctionBuilder;
///
/// let mut b = FunctionBuilder::new("f", 0);
/// let entry = b.create_block();
/// b.set_entry(entry);
/// b.switch_to_block(entry);
/// b.ret(None);
/// let func = b.finish();
///
/// let analyses = AnalysisManager::new();
/// let domtree = analyses.domtree(&func);
/// assert_eq!(domtree.root(), entry);
/// // The second call returns the cached tree without recomputing.
/// assert_eq!(analyses.domtree(&func).root(), entry);
/// ```
#[derive(Debug, Default)]
pub struct AnalysisManager {
    cfg: OnceCell<ControlFlowGraph>,
    domtree: OnceCell<DominatorTree>,
    loops: OnceCell<LoopAnalysis>,
    freqs: OnceCell<BlockFrequencies>,
}

impl AnalysisManager {
    /// Creates an empty manager; nothing is computed until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The control-flow graph, computed on first use.
    pub fn cfg(&self, func: &Function) -> &ControlFlowGraph {
        self.cfg.get_or_init(|| ControlFlowGraph::compute(func))
    }

    /// The dominator tree, computed on first use.
    pub fn domtree(&self, func: &Function) -> &DominatorTree {
        // Compute the CFG first so the borrow of `self.cfg` ends before the
        // `domtree` cell is initialized.
        self.cfg(func);
        self.domtree.get_or_init(|| DominatorTree::compute(func, self.cfg.get().expect("cfg")))
    }

    /// The natural-loop analysis, computed on first use.
    pub fn loops(&self, func: &Function) -> &LoopAnalysis {
        self.domtree(func);
        self.loops.get_or_init(|| {
            LoopAnalysis::compute(
                func,
                self.cfg.get().expect("cfg"),
                self.domtree.get().expect("domtree"),
            )
        })
    }

    /// The static block-frequency estimate, computed on first use.
    pub fn frequencies(&self, func: &Function) -> &BlockFrequencies {
        self.loops(func);
        self.freqs.get_or_init(|| {
            BlockFrequencies::from_loop_depths(func, self.loops.get().expect("loops"))
        })
    }

    /// Drops every cached analysis. Must be called after any mutation that
    /// changes the block structure (new blocks, edge splitting, terminator
    /// rewrites); instruction-only mutations keep this manager's caches
    /// valid.
    pub fn invalidate_cfg(&mut self) {
        self.cfg.take();
        self.domtree.take();
        self.loops.take();
        self.freqs.take();
    }

    /// Returns `true` if the CFG has already been computed.
    pub fn is_cfg_cached(&self) -> bool {
        self.cfg.get().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn two_block_function() -> Function {
        let mut b = FunctionBuilder::new("two", 0);
        let entry = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        b.jump(exit);
        b.switch_to_block(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn analyses_are_computed_lazily_and_cached() {
        let func = two_block_function();
        let am = AnalysisManager::new();
        assert!(!am.is_cfg_cached());
        let freqs = am.frequencies(&func);
        assert_eq!(freqs.frequency(func.entry()), 1.0);
        assert!(am.is_cfg_cached());
        // Cached pointers are stable across calls.
        let a = am.cfg(&func) as *const ControlFlowGraph;
        let b = am.cfg(&func) as *const ControlFlowGraph;
        assert_eq!(a, b);
    }

    #[test]
    fn invalidation_recomputes_for_the_mutated_function() {
        let mut func = two_block_function();
        let mut am = AnalysisManager::new();
        assert_eq!(am.cfg(&func).num_reachable(), 2);
        // Add a block and re-point the entry jump at it.
        let extra = func.add_block();
        let entry = func.entry();
        let term = func.terminator(entry).expect("terminator");
        *func.inst_mut(term) = crate::InstData::Jump { dest: extra };
        func.append_inst(extra, crate::InstData::Return { value: None });
        am.invalidate_cfg();
        assert!(!am.is_cfg_cached());
        assert_eq!(am.cfg(&func).num_reachable(), 2);
        assert!(am.cfg(&func).is_reachable(extra));
    }

    #[test]
    fn domtree_and_loops_share_the_cached_cfg() {
        let func = two_block_function();
        let am = AnalysisManager::new();
        let domtree = am.domtree(&func);
        assert!(domtree.dominates(func.entry(), func.blocks().nth(1).unwrap()));
        assert_eq!(am.loops(&func).num_loops(), 0);
    }
}
