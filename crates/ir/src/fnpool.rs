//! A free list of recycled [`Function`] storage for streaming translation.
//!
//! A long-running translator processes an unbounded stream of functions. If
//! every incoming function is built into fresh heap storage, steady-state
//! allocation traffic grows linearly with the stream — even though the
//! translation itself (through recycled `FunctionAnalyses` / scratch state)
//! allocates nothing once warm. The [`FunctionPool`] closes that last gap:
//!
//! 1. **checkout** — pop a retired [`Function`] shell (all of its block,
//!    instruction, value and operand-arena capacity intact) or, on a pool
//!    miss, allocate a brand-new empty one;
//! 2. **build / translate** — the caller constructs the incoming function
//!    *into* the slot (`FunctionBuilder::reuse`, `generate_function_into`)
//!    and translates it in place;
//! 3. **retire** — once the consumer is done with the translated output the
//!    slot returns to the free list, keeping its (now translation-sized)
//!    capacity for the next checkout.
//!
//! After one warm-up cycle per slot, every subsequent build runs inside
//! capacity that already exists: the steady-state allocation count is
//! independent of how many functions flow through the pool.
//!
//! Rebuilding through a recycled slot is bit-identical to a fresh build
//! (`Function::reset` is the proven `truncate`-discipline reset), so pooling
//! never changes translation output — only where the bytes live.
//!
//! A slot whose translation *failed* must not go back on the free list: a
//! faulted pass may have left the function half-rewritten, and the isolation
//! contract (see the engine's quarantine path) treats all state the failed
//! translation touched as poisoned. Use [`FunctionPool::discard`] for those.

use crate::function::Function;

/// Running totals of pool traffic, for tests and allocation profiling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total checkouts served (hits + misses).
    pub checkouts: u64,
    /// Checkouts served from the free list (no fresh `Function` allocated).
    pub recycled: u64,
    /// Slots returned to the free list by [`FunctionPool::retire`].
    pub retired: u64,
    /// Poisoned slots dropped by [`FunctionPool::discard`].
    pub discarded: u64,
}

/// A checkout → build/translate → retire free list of [`Function`] storage.
///
/// See the [module docs](self) for the lifecycle. Pools are cheap to create
/// (empty, no allocation) and are typically per-worker: a slot checked out by
/// one worker is built, translated, consumed and retired on that worker, so
/// the pool needs no synchronization.
#[derive(Debug, Default)]
pub struct FunctionPool {
    free: Vec<Function>,
    stats: PoolStats,
}

impl FunctionPool {
    /// Creates an empty pool. No storage is allocated until the first
    /// checkout misses.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a function shell out of the pool.
    ///
    /// The returned function is empty (no blocks, instructions or values; a
    /// cleared name and zero parameters) but — when served from the free
    /// list — retains all heap capacity from its previous life. Build into it
    /// with `FunctionBuilder::reuse` or `generate_function_into`; both reset
    /// it again, so checkout order never affects build results.
    pub fn checkout(&mut self) -> Function {
        self.stats.checkouts += 1;
        match self.free.pop() {
            Some(func) => {
                self.stats.recycled += 1;
                func
            }
            None => Function::new("", 0),
        }
    }

    /// Checks out a slot holding an exact copy of `source`, built with the
    /// capacity-reusing `Function::clone_from` — the pristine-snapshot
    /// checkout of the retrying engines and service workers. Served from the
    /// free list, the snapshot reuses the slot's existing buffers, so warm
    /// steady-state snapshotting allocates nothing.
    pub fn checkout_clone_of(&mut self, source: &Function) -> Function {
        let mut slot = self.checkout();
        slot.clone_from(source);
        slot
    }

    /// Pre-populates the free list with `count` empty shells whose arenas
    /// are pre-reserved for roughly `est_insts` instructions, so the first
    /// streaming pass serves its checkouts from recycled storage instead of
    /// paying the warm-up allocations on the first requests. Values are
    /// reserved at the same estimate (translation defines about one value
    /// per instruction); sizing is a hint, not a cap — an underestimated
    /// shell simply grows like a cold one.
    pub fn prewarm(&mut self, count: usize, est_insts: usize) {
        self.free.reserve(count);
        for _ in 0..count {
            let mut func = Function::new("", 0);
            func.reserve_insts(est_insts);
            func.reserve_values(est_insts);
            self.free.push(func);
        }
    }

    /// Returns a slot to the free list, resetting it to the empty shell state
    /// while keeping its heap capacity for the next checkout.
    ///
    /// Only retire functions whose translation completed normally; a slot a
    /// failed translation touched must be [`FunctionPool::discard`]ed.
    pub fn retire(&mut self, mut func: Function) {
        func.reset("", 0);
        self.stats.retired += 1;
        self.free.push(func);
    }

    /// Drops a poisoned slot instead of recycling it.
    ///
    /// This is the pool half of the engine's quarantine contract: when an
    /// isolated translation fails, the per-worker analyses and scratch state
    /// are rebuilt from nothing, and the function the failed pass was
    /// rewriting is discarded here — it never re-enters the free list.
    pub fn discard(&mut self, func: Function) {
        self.stats.discarded += 1;
        drop(func);
    }

    /// Number of retired shells currently available for checkout.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Traffic totals since the pool was created.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn build_into(pool: &mut FunctionPool, imm: i64) -> Function {
        let slot = pool.checkout();
        let mut b = FunctionBuilder::reuse(slot, "f", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let v = b.iconst(imm);
        b.ret(Some(v));
        b.finish()
    }

    #[test]
    fn checkout_miss_then_recycle() {
        let mut pool = FunctionPool::new();
        let f = build_into(&mut pool, 1);
        assert_eq!(pool.stats().checkouts, 1);
        assert_eq!(pool.stats().recycled, 0);
        pool.retire(f);
        assert_eq!(pool.free_len(), 1);

        let g = build_into(&mut pool, 2);
        assert_eq!(pool.stats().checkouts, 2);
        assert_eq!(pool.stats().recycled, 1);
        assert_eq!(pool.free_len(), 0);
        pool.retire(g);
    }

    #[test]
    fn recycled_build_is_bit_identical() {
        let mut pool = FunctionPool::new();
        let fresh = build_into(&mut pool, 42);
        let again = build_into(&mut FunctionPool::new(), 42);
        assert_eq!(fresh, again);
        pool.retire(fresh);
        let recycled = build_into(&mut pool, 42);
        assert_eq!(recycled, again);
    }

    #[test]
    fn prewarm_serves_first_checkouts_from_the_free_list() {
        let mut pool = FunctionPool::new();
        pool.prewarm(3, 64);
        assert_eq!(pool.free_len(), 3);
        for expected_recycled in 1..=3 {
            let f = build_into(&mut pool, expected_recycled as i64);
            assert_eq!(pool.stats().recycled, expected_recycled);
            pool.retire(f);
        }
        // Prewarmed shells build bit-identically to fresh ones.
        let warm = build_into(&mut pool, 7);
        let fresh = build_into(&mut FunctionPool::new(), 7);
        assert_eq!(warm, fresh);
    }

    #[test]
    fn checkout_clone_of_matches_plain_clone_and_recycles() {
        let mut pool = FunctionPool::new();
        let original = build_into(&mut pool, 9);
        // Miss path: fresh snapshot equals a plain clone.
        let snap = pool.checkout_clone_of(&original);
        assert_eq!(snap, original);
        assert_eq!(snap, original.clone());
        pool.retire(snap);
        // Hit path: a recycled slot resnapshots bit-identically.
        let resnap = pool.checkout_clone_of(&original);
        assert_eq!(resnap, original);
        assert_eq!(pool.stats().recycled, 1);
        pool.retire(resnap);
        pool.retire(original);
    }

    #[test]
    fn discard_never_reenters_free_list() {
        let mut pool = FunctionPool::new();
        let f = build_into(&mut pool, 3);
        pool.discard(f);
        assert_eq!(pool.free_len(), 0);
        assert_eq!(pool.stats().discarded, 1);
        // The next checkout is a miss, not a recycled poisoned slot.
        let _ = pool.checkout();
        assert_eq!(pool.stats().recycled, 0);
    }
}
