//! Dominator tree, dominance frontiers and O(1) dominance queries.
//!
//! The dominator tree is computed with the Cooper–Harvey–Kennedy "engineered"
//! algorithm over the reverse post-order of the CFG. Constant-time
//! `dominates` queries use the pre/post DFS interval numbering of the
//! dominator tree — the same machinery the paper relies on for its pre-DFS
//! ordering of congruence classes (Section IV-B).

use crate::cfg::ControlFlowGraph;
use crate::entity::{Block, SecondaryMap};
use crate::function::Function;

/// Dominator tree of a function.
#[derive(Clone, Debug)]
pub struct DominatorTree {
    idom: SecondaryMap<Block, Option<Block>>,
    /// CSR storage of the dominator-tree children: the children of block `b`
    /// are `child_data[child_offsets[b] .. child_offsets[b + 1]]`, in the
    /// same per-parent RPO order the per-block `Vec` lists used to hold. Two
    /// flat buffers replace `num_blocks` heap lists, so recomputation over a
    /// corpus touches no allocator once the buffers have grown to the
    /// high-water mark.
    child_offsets: Vec<u32>,
    child_data: Vec<Block>,
    /// Per-parent write cursor scratch of the CSR fill, recycled.
    child_cursor: Vec<u32>,
    /// Pre-order visit number in a DFS of the dominator tree.
    pre: SecondaryMap<Block, u32>,
    /// Post-order visit number in a DFS of the dominator tree.
    post: SecondaryMap<Block, u32>,
    /// Blocks in dominator-tree pre-order (a valid "pre-DFS order ≺" for the
    /// linear interference test of the paper).
    preorder: Vec<Block>,
    entry: Block,
    rpo_index: SecondaryMap<Block, u32>,
    /// DFS scratch of the numbering pass, recycled across recomputations.
    stack: Vec<(Block, usize)>,
}

impl DominatorTree {
    /// Computes the dominator tree of `func` using `cfg`.
    pub fn compute(func: &Function, cfg: &ControlFlowGraph) -> Self {
        let mut this = Self {
            idom: SecondaryMap::new(),
            child_offsets: Vec::new(),
            child_data: Vec::new(),
            child_cursor: Vec::new(),
            pre: SecondaryMap::with_default(u32::MAX),
            post: SecondaryMap::with_default(u32::MAX),
            preorder: Vec::new(),
            entry: Block::from_index(0),
            rpo_index: SecondaryMap::with_default(u32::MAX),
            stack: Vec::new(),
        };
        this.recompute(func, cfg);
        this
    }

    /// Recomputes the dominator tree in place, reusing the per-block maps and
    /// child lists of a previous computation (possibly of a different
    /// function). Behaviourally identical to [`DominatorTree::compute`].
    pub fn recompute(&mut self, func: &Function, cfg: &ControlFlowGraph) {
        // Reset every materialized slot to its default: stale entries from a
        // previous (possibly larger) function must read as "unreachable".
        // Plain-data maps are truncated (their backing vector keeps its
        // capacity either way); the CSR child buffers are cleared, keeping
        // their capacity for the next fill.
        let num_blocks = func.num_blocks();
        self.idom.truncate(num_blocks);
        self.pre.truncate(num_blocks);
        self.post.truncate(num_blocks);
        self.rpo_index.truncate(num_blocks);
        for slot in self.idom.values_mut() {
            *slot = None;
        }
        for n in self.pre.values_mut() {
            *n = u32::MAX;
        }
        for n in self.post.values_mut() {
            *n = u32::MAX;
        }
        for n in self.rpo_index.values_mut() {
            *n = u32::MAX;
        }
        self.preorder.clear();
        self.preorder.reserve(cfg.reverse_post_order().len());

        let entry = func.entry();
        self.entry = entry;
        let rpo = cfg.reverse_post_order();
        self.rpo_index.resize(func.num_blocks());
        for (i, &b) in rpo.iter().enumerate() {
            self.rpo_index[b] = i as u32;
        }

        self.idom.resize(func.num_blocks());
        self.idom[entry] = Some(entry);

        // Cooper–Harvey–Kennedy iteration.
        let mut changed = true;
        while changed {
            changed = false;
            for &block in rpo.iter().skip(1) {
                let mut new_idom: Option<Block> = None;
                for &pred in cfg.preds(block) {
                    if self.rpo_index[pred] == u32::MAX || self.idom[pred].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => pred,
                        Some(current) => {
                            Self::intersect(&self.idom, &self.rpo_index, pred, current)
                        }
                    });
                }
                if let Some(new_idom) = new_idom {
                    if self.idom[block] != Some(new_idom) {
                        self.idom[block] = Some(new_idom);
                        changed = true;
                    }
                }
            }
        }

        // Children in CSR form (entry is its own idom; do not list it as a
        // child): a counting sort over the RPO keeps the per-parent child
        // order identical to the old per-block push lists.
        self.child_offsets.clear();
        self.child_offsets.resize(num_blocks + 1, 0);
        for &block in rpo {
            if block != entry {
                if let Some(parent) = self.idom[block] {
                    self.child_offsets[parent.index() + 1] += 1;
                }
            }
        }
        for i in 1..=num_blocks {
            self.child_offsets[i] += self.child_offsets[i - 1];
        }
        self.child_cursor.clear();
        self.child_cursor.extend_from_slice(&self.child_offsets[..num_blocks]);
        self.child_data.clear();
        self.child_data.resize(self.child_offsets[num_blocks] as usize, entry);
        for &block in rpo {
            if block != entry {
                if let Some(parent) = self.idom[block] {
                    let cursor = &mut self.child_cursor[parent.index()];
                    self.child_data[*cursor as usize] = block;
                    *cursor += 1;
                }
            }
        }

        // DFS numbering of the dominator tree.
        self.pre.resize(func.num_blocks());
        self.post.resize(func.num_blocks());
        let mut pre_counter = 1u32;
        let mut post_counter = 0u32;
        self.stack.clear();
        self.stack.push((entry, 0));
        self.pre[entry] = 0;
        self.preorder.push(entry);
        while let Some(&mut (block, ref mut next)) = self.stack.last_mut() {
            let kids = {
                let i = block.index();
                let (start, end) = (self.child_offsets[i], self.child_offsets[i + 1]);
                &self.child_data[start as usize..end as usize]
            };
            if *next < kids.len() {
                let child = kids[*next];
                *next += 1;
                self.pre[child] = pre_counter;
                pre_counter += 1;
                self.preorder.push(child);
                self.stack.push((child, 0));
            } else {
                self.post[block] = post_counter;
                post_counter += 1;
                self.stack.pop();
            }
        }
    }

    fn intersect(
        idom: &SecondaryMap<Block, Option<Block>>,
        rpo_index: &SecondaryMap<Block, u32>,
        mut a: Block,
        mut b: Block,
    ) -> Block {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].expect("intersect: missing idom");
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].expect("intersect: missing idom");
            }
        }
        a
    }

    /// The function entry block (root of the dominator tree).
    pub fn root(&self) -> Block {
        self.entry
    }

    /// Immediate dominator of `block` (`None` for the entry block or
    /// unreachable blocks).
    pub fn idom(&self, block: Block) -> Option<Block> {
        match self.idom[block] {
            Some(parent) if block != self.entry => Some(parent),
            _ => None,
        }
    }

    /// Children of `block` in the dominator tree (a slice into the CSR
    /// child buffer, ordered by reverse post-order of the CFG).
    pub fn children(&self, block: Block) -> &[Block] {
        let i = block.index();
        if i + 1 >= self.child_offsets.len() {
            return &[];
        }
        let (start, end) = (self.child_offsets[i], self.child_offsets[i + 1]);
        &self.child_data[start as usize..end as usize]
    }

    /// Returns `true` if `block` is reachable (has a dominator-tree position).
    pub fn is_reachable(&self, block: Block) -> bool {
        self.pre[block] != u32::MAX
    }

    /// Returns `true` if `a` dominates `b` (reflexively), in O(1).
    #[inline]
    pub fn dominates(&self, a: Block, b: Block) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        self.pre[a] <= self.pre[b] && self.post[b] <= self.post[a]
    }

    /// Returns `true` if `a` strictly dominates `b`.
    #[inline]
    pub fn strictly_dominates(&self, a: Block, b: Block) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Pre-order number of `block` in the dominator-tree DFS. Unreachable
    /// blocks return `u32::MAX`.
    pub fn preorder_number(&self, block: Block) -> u32 {
        self.pre[block]
    }

    /// Blocks in dominator-tree pre-order.
    pub fn preorder(&self) -> &[Block] {
        &self.preorder
    }

    /// Post-order number of `block` in the dominator-tree DFS. Unreachable
    /// blocks return `u32::MAX`. Together with [`Self::preorder_number`] this
    /// exposes the DFS interval, so dominance can be decided from two cached
    /// numbers without consulting the tree.
    pub fn postorder_number(&self, block: Block) -> u32 {
        self.post[block]
    }

    /// Returns `true` if the program point `(block_a, pos_a)` dominates the
    /// point `(block_b, pos_b)`, where `pos` is the instruction index within
    /// the block. Points in the same block compare by position.
    #[inline]
    pub fn dominates_point(&self, a: (Block, usize), b: (Block, usize)) -> bool {
        if a.0 == b.0 {
            a.1 <= b.1
        } else {
            self.strictly_dominates(a.0, b.0)
        }
    }

    /// Index of `block` in the reverse post-order used to build the tree.
    pub fn rpo_index(&self, block: Block) -> u32 {
        self.rpo_index[block]
    }
}

/// Dominance frontiers: for each block `b`, the set of blocks where the
/// dominance of `b` stops — the classic φ-placement tool of Cytron et al.
#[derive(Clone, Debug)]
pub struct DominanceFrontiers {
    frontiers: SecondaryMap<Block, Vec<Block>>,
}

impl DominanceFrontiers {
    /// Computes the dominance frontiers of every reachable block.
    pub fn compute(func: &Function, cfg: &ControlFlowGraph, domtree: &DominatorTree) -> Self {
        let mut this = Self { frontiers: SecondaryMap::new() };
        this.recompute(func, cfg, domtree);
        this
    }

    /// Recomputes the frontiers in place, reusing the per-block lists (their
    /// buffers are kept across functions — the per-slot reset is O(1) — so
    /// recomputation over a corpus does not reallocate them).
    pub fn recompute(&mut self, func: &Function, cfg: &ControlFlowGraph, domtree: &DominatorTree) {
        for list in self.frontiers.values_mut() {
            list.clear();
        }
        let frontiers = &mut self.frontiers;
        frontiers.resize(func.num_blocks());
        for &block in cfg.reverse_post_order() {
            let preds = cfg.preds(block);
            if preds.len() < 2 {
                continue;
            }
            let Some(idom) = domtree.idom(block) else { continue };
            for &pred in preds {
                if !domtree.is_reachable(pred) {
                    continue;
                }
                let mut runner = pred;
                while runner != idom {
                    let frontier = &mut frontiers[runner];
                    if !frontier.contains(&block) {
                        frontier.push(block);
                    }
                    match domtree.idom(runner) {
                        Some(next) => runner = next,
                        None => break,
                    }
                }
            }
        }
    }

    /// The dominance frontier of `block`.
    pub fn frontier(&self, block: Block) -> &[Block] {
        &self.frontiers[block]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    /// The classic CFG:
    /// ```text
    ///        entry
    ///        /    \
    ///      then   else
    ///        \    /
    ///         join
    ///          |
    ///        header <--+
    ///        /    \    |
    ///      body    |   |
    ///        \     |   |
    ///         +----+---+
    ///              |
    ///             exit
    /// ```
    fn build_cfg() -> (Function, Vec<Block>) {
        let mut b = FunctionBuilder::new("dom", 1);
        let entry = b.create_block();
        let then_bb = b.create_block();
        let else_bb = b.create_block();
        let join = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.branch(x, then_bb, else_bb);
        b.switch_to_block(then_bb);
        b.jump(join);
        b.switch_to_block(else_bb);
        b.jump(join);
        b.switch_to_block(join);
        b.jump(header);
        b.switch_to_block(header);
        b.branch(x, body, exit);
        b.switch_to_block(body);
        b.jump(header);
        b.switch_to_block(exit);
        b.ret(None);
        (b.finish(), vec![entry, then_bb, else_bb, join, header, body, exit])
    }

    fn analyses(f: &Function) -> (ControlFlowGraph, DominatorTree) {
        let cfg = ControlFlowGraph::compute(f);
        let dom = DominatorTree::compute(f, &cfg);
        (cfg, dom)
    }

    #[test]
    fn immediate_dominators() {
        let (f, blocks) = build_cfg();
        let (_, dom) = analyses(&f);
        let [entry, then_bb, else_bb, join, header, body, exit] = blocks[..] else { panic!() };
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(then_bb), Some(entry));
        assert_eq!(dom.idom(else_bb), Some(entry));
        assert_eq!(dom.idom(join), Some(entry));
        assert_eq!(dom.idom(header), Some(join));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
    }

    #[test]
    fn dominates_queries() {
        let (f, blocks) = build_cfg();
        let (_, dom) = analyses(&f);
        let [entry, then_bb, _else_bb, join, header, body, exit] = blocks[..] else { panic!() };
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(join, header));
        assert!(dom.dominates(header, body));
        assert!(!dom.dominates(then_bb, join));
        assert!(!dom.dominates(body, exit));
        assert!(dom.dominates(exit, exit));
        assert!(dom.strictly_dominates(entry, join));
        assert!(!dom.strictly_dominates(join, join));
    }

    #[test]
    fn dominates_matches_brute_force() {
        // Brute force: a dominates b iff removing a makes b unreachable.
        let (f, blocks) = build_cfg();
        let (cfg, dom) = analyses(&f);
        for &a in &blocks {
            for &b in &blocks {
                let brute = brute_force_dominates(&f, &cfg, a, b);
                assert_eq!(dom.dominates(a, b), brute, "dominates({a}, {b})");
            }
        }
    }

    fn brute_force_dominates(f: &Function, cfg: &ControlFlowGraph, a: Block, b: Block) -> bool {
        if !cfg.is_reachable(a) || !cfg.is_reachable(b) {
            return false;
        }
        if a == b {
            return true;
        }
        // BFS from entry avoiding `a`; `a` dominates `b` iff `b` is not reached.
        let entry = f.entry();
        if entry == a {
            return true;
        }
        let mut seen = vec![false; f.num_blocks()];
        let mut stack = vec![entry];
        seen[entry.index()] = true;
        while let Some(block) = stack.pop() {
            for &succ in cfg.succs(block) {
                if succ != a && !seen[succ.index()] {
                    seen[succ.index()] = true;
                    stack.push(succ);
                }
            }
        }
        !seen[b.index()]
    }

    #[test]
    fn preorder_is_topological_on_dominance() {
        let (f, _) = build_cfg();
        let (_, dom) = analyses(&f);
        let order = dom.preorder();
        for (i, &b) in order.iter().enumerate() {
            if let Some(parent) = dom.idom(b) {
                let parent_pos = order.iter().position(|&x| x == parent).unwrap();
                assert!(parent_pos < i, "parent must come before child in pre-order");
            }
        }
    }

    #[test]
    fn dominates_point_same_block_uses_position() {
        let (f, blocks) = build_cfg();
        let (_, dom) = analyses(&f);
        let entry = blocks[0];
        assert!(dom.dominates_point((entry, 0), (entry, 1)));
        assert!(dom.dominates_point((entry, 1), (entry, 1)));
        assert!(!dom.dominates_point((entry, 2), (entry, 1)));
        assert!(dom.dominates_point((entry, 5), (blocks[3], 0)));
        assert!(!dom.dominates_point((blocks[1], 0), (blocks[3], 0)));
    }

    #[test]
    fn dominance_frontiers_match_expectations() {
        let (f, blocks) = build_cfg();
        let cfg = ControlFlowGraph::compute(&f);
        let dom = DominatorTree::compute(&f, &cfg);
        let df = DominanceFrontiers::compute(&f, &cfg, &dom);
        let [_, then_bb, else_bb, join, header, body, _exit] = blocks[..] else { panic!() };
        assert_eq!(df.frontier(then_bb), &[join]);
        assert_eq!(df.frontier(else_bb), &[join]);
        assert_eq!(df.frontier(body), &[header]);
        // header is in its own frontier because of the back edge.
        assert_eq!(df.frontier(header), &[header]);
        // join strictly dominates header, so its frontier is empty.
        assert!(df.frontier(join).is_empty());
    }

    #[test]
    fn unreachable_blocks_are_not_reachable_in_tree() {
        let mut b = FunctionBuilder::new("unreach", 0);
        let entry = b.create_block();
        let dead = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        b.ret(None);
        b.switch_to_block(dead);
        b.ret(None);
        let f = b.finish();
        let (_, dom) = analyses(&f);
        assert!(dom.is_reachable(entry));
        assert!(!dom.is_reachable(dead));
        assert!(!dom.dominates(dead, entry));
        assert!(!dom.dominates(entry, dead));
    }
}
