//! Textual printer for functions.
//!
//! The format is line-oriented and stable, intended for test expectations,
//! debugging and the examples. It is not meant to be parsed back.

use std::fmt;

use crate::function::Function;
use crate::instruction::InstData;

/// Wrapper that implements [`fmt::Display`] for a function.
pub struct DisplayFunction<'a>(pub &'a Function);

impl fmt::Display for DisplayFunction<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let func = self.0;
        writeln!(f, "function {}({} params) {{", func.name, func.num_params)?;
        for block in func.blocks() {
            let entry_marker =
                if func.has_entry() && block == func.entry() { " (entry)" } else { "" };
            writeln!(f, "{block}{entry_marker}:")?;
            for &inst in func.block_insts(block) {
                writeln!(f, "    {}", display_inst(func, func.inst(inst)))?;
            }
        }
        write!(f, "}}")
    }
}

/// Renders one instruction as a line of text.
pub fn display_inst(func: &Function, data: &InstData) -> String {
    let pin = |v: crate::entity::Value| -> String {
        match func.pinned_reg(v) {
            Some(r) => format!("{v}[r{r}]"),
            None => format!("{v}"),
        }
    };
    match data {
        InstData::Param { dst, index } => format!("{} = param {index}", pin(*dst)),
        InstData::Const { dst, imm } => format!("{} = const {imm}", pin(*dst)),
        InstData::Unary { op, dst, arg } => {
            format!("{} = {} {}", pin(*dst), op.mnemonic(), pin(*arg))
        }
        InstData::Binary { op, dst, args } => {
            format!("{} = {} {}, {}", pin(*dst), op.mnemonic(), pin(args[0]), pin(args[1]))
        }
        InstData::Cmp { op, dst, args } => {
            format!("{} = cmp.{} {}, {}", pin(*dst), op.mnemonic(), pin(args[0]), pin(args[1]))
        }
        InstData::Copy { dst, src } => format!("{} = copy {}", pin(*dst), pin(*src)),
        InstData::ParallelCopy { copies } => {
            let moves: Vec<String> = func
                .copy_list(*copies)
                .iter()
                .map(|c| format!("{} <- {}", pin(c.dst), pin(c.src)))
                .collect();
            format!("parcopy [{}]", moves.join(", "))
        }
        InstData::Phi { dst, args } => {
            let inputs: Vec<String> = func
                .phi_list(*args)
                .iter()
                .map(|a| format!("[{}: {}]", a.block, pin(a.value)))
                .collect();
            format!("{} = phi {}", pin(*dst), inputs.join(", "))
        }
        InstData::Call { dst, callee, args } => {
            let args: Vec<String> = func.value_list(*args).iter().map(|&a| pin(a)).collect();
            match dst {
                Some(dst) => format!("{} = call fn{}({})", pin(*dst), callee, args.join(", ")),
                None => format!("call fn{}({})", callee, args.join(", ")),
            }
        }
        InstData::Load { dst, addr } => format!("{} = load {}", pin(*dst), pin(*addr)),
        InstData::Store { addr, value } => format!("store {}, {}", pin(*addr), pin(*value)),
        InstData::Jump { dest } => format!("jump {dest}"),
        InstData::Branch { cond, then_dest, else_dest } => {
            format!("br {}, {then_dest}, {else_dest}", pin(*cond))
        }
        InstData::BrDec { counter, dec, loop_dest, exit_dest } => {
            format!("{} = br_dec {}, {loop_dest}, {exit_dest}", pin(*dec), pin(*counter))
        }
        InstData::Return { value } => match value {
            Some(v) => format!("return {}", pin(*v)),
            None => "return".to_string(),
        },
    }
}

impl Function {
    /// Returns a displayable wrapper for this function.
    pub fn display(&self) -> DisplayFunction<'_> {
        DisplayFunction(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::instruction::{BinaryOp, CmpOp, CopyPair};

    #[test]
    fn printer_renders_all_instruction_kinds() {
        let mut b = FunctionBuilder::new("printer", 2);
        let entry = b.create_block();
        let next = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let y = b.param(1);
        let c = b.iconst(42);
        let sum = b.binary(BinaryOp::Add, x, y);
        let cond = b.cmp(CmpOp::Lt, sum, c);
        let copy = b.copy(sum);
        b.parallel_copy(vec![CopyPair { dst: copy, src: sum }]);
        let r = b.call(3, vec![sum, c]);
        b.store(x, r);
        let loaded = b.load(x);
        b.branch(cond, next, exit);
        b.switch_to_block(next);
        let p = b.phi(vec![(entry, loaded)]);
        b.br_dec(p, next, exit);
        b.switch_to_block(exit);
        b.ret(Some(c));
        let mut f = b.finish();
        f.pin_value(x, 0);

        let text = f.display().to_string();
        assert!(text.contains("function printer(2 params)"));
        assert!(text.contains("(entry)"));
        assert!(text.contains("v0[r0] = param 0"));
        assert!(text.contains("= const 42"));
        assert!(text.contains("= add "));
        assert!(text.contains("cmp.lt"));
        assert!(text.contains("parcopy ["));
        assert!(text.contains("call fn3("));
        assert!(text.contains("store "));
        assert!(text.contains("= load "));
        assert!(text.contains("br "));
        assert!(text.contains("= phi ["));
        assert!(text.contains("br_dec"));
        assert!(text.contains("return v2"));
    }

    #[test]
    fn printer_handles_void_return_and_jump() {
        let mut b = FunctionBuilder::new("void", 0);
        let entry = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        b.jump(exit);
        b.switch_to_block(exit);
        b.ret(None);
        let f = b.finish();
        let text = f.display().to_string();
        assert!(text.contains("jump bb1"));
        assert!(text.ends_with("}"));
        assert!(text.contains("    return\n"));
    }
}
