//! Dense entity references and entity-keyed maps.
//!
//! The IR uses small integer newtypes ([`Value`], [`Block`], [`Inst`]) to
//! reference program entities, in the style of Cranelift's `entity` crate.
//! Entities are allocated by a [`PrimaryMap`] and auxiliary data is attached
//! with [`SecondaryMap`] (dense, default-filled) or [`EntitySet`] (bit set).

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// A type that can be used as a dense entity reference.
///
/// Implementors are thin wrappers around a `u32` index.
pub trait EntityRef: Copy + Eq + Hash {
    /// Creates an entity reference from an index.
    fn new(index: usize) -> Self;
    /// Returns the index of this entity reference.
    fn index(self) -> usize;
}

/// Declares a new entity reference newtype.
#[macro_export]
macro_rules! entity_ref {
    ($(#[$attr:meta])* $vis:vis struct $name:ident, $display:expr) => {
        $(#[$attr])*
        #[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        $vis struct $name(u32);

        impl $crate::entity::EntityRef for $name {
            #[inline]
            fn new(index: usize) -> Self {
                debug_assert!(index < u32::MAX as usize);
                $name(index as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl $name {
            /// Creates a reference from a raw index.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                <$name as $crate::entity::EntityRef>::new(index)
            }
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($display, "{}"), self.0)
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($display, "{}"), self.0)
            }
        }
    };
}

entity_ref! {
    /// An SSA value (or, before SSA construction, a virtual variable).
    pub struct Value, "v"
}

entity_ref! {
    /// A basic block.
    pub struct Block, "bb"
}

entity_ref! {
    /// An instruction.
    pub struct Inst, "inst"
}

/// A map that allocates entity references densely and owns the primary
/// definition of each entity.
#[derive(PartialEq, Eq)]
pub struct PrimaryMap<K: EntityRef, V> {
    elems: Vec<V>,
    _marker: PhantomData<K>,
}

impl<K: EntityRef, V: Clone> Clone for PrimaryMap<K, V> {
    fn clone(&self) -> Self {
        Self { elems: self.elems.clone(), _marker: PhantomData }
    }

    /// Capacity-reusing clone: delegates to `Vec::clone_from`, so repeatedly
    /// snapshotting into the same map allocates nothing once the backing
    /// storage (and each element's own heap storage, element-wise) suffices.
    fn clone_from(&mut self, source: &Self) {
        self.elems.clone_from(&source.elems);
    }
}

impl<K: EntityRef, V> PrimaryMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self { elems: Vec::new(), _marker: PhantomData }
    }

    /// Creates an empty map with capacity for `cap` entities.
    pub fn with_capacity(cap: usize) -> Self {
        Self { elems: Vec::with_capacity(cap), _marker: PhantomData }
    }

    /// Allocates a new entity holding `value` and returns its reference.
    pub fn push(&mut self, value: V) -> K {
        let key = K::new(self.elems.len());
        self.elems.push(value);
        key
    }

    /// Number of entities allocated so far.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Returns `true` if no entity has been allocated.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Returns `true` if `key` refers to an allocated entity.
    pub fn contains(&self, key: K) -> bool {
        key.index() < self.elems.len()
    }

    /// Returns the entity data if `key` is valid.
    pub fn get(&self, key: K) -> Option<&V> {
        self.elems.get(key.index())
    }

    /// Returns a mutable reference to the entity data if `key` is valid.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.elems.get_mut(key.index())
    }

    /// Iterates over `(key, &value)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.elems.iter().enumerate().map(|(i, v)| (K::new(i), v))
    }

    /// Iterates over the keys in allocation order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        (0..self.elems.len()).map(K::new)
    }

    /// Iterates over the values in allocation order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.elems.iter()
    }

    /// The key that the next call to [`PrimaryMap::push`] will return.
    pub fn next_key(&self) -> K {
        K::new(self.elems.len())
    }

    /// Iterates mutably over the values in allocation order (the reset walk
    /// of the recycling paths).
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.elems.iter_mut()
    }

    /// Drops every entity while keeping the backing capacity — the
    /// per-function reset of the `truncate` discipline.
    pub fn clear(&mut self) {
        self.elems.clear();
    }

    /// Reserves capacity for at least `additional` more entities.
    ///
    /// Used by the translation's up-front reservation pre-pass: growing the
    /// map once from a size estimate replaces the amortized doubling that
    /// would otherwise happen mid-translation.
    pub fn reserve(&mut self, additional: usize) {
        self.elems.reserve(additional);
    }
}

impl<K: EntityRef, V> Default for PrimaryMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityRef, V> Index<K> for PrimaryMap<K, V> {
    type Output = V;
    fn index(&self, key: K) -> &V {
        &self.elems[key.index()]
    }
}

impl<K: EntityRef, V> IndexMut<K> for PrimaryMap<K, V> {
    fn index_mut(&mut self, key: K) -> &mut V {
        &mut self.elems[key.index()]
    }
}

impl<K: EntityRef, V: fmt::Debug> fmt::Debug for PrimaryMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.elems.iter().enumerate()).finish()
    }
}

/// A dense, default-filled auxiliary map keyed by an entity reference.
#[derive(PartialEq, Eq)]
pub struct SecondaryMap<K: EntityRef, V: Clone> {
    elems: Vec<V>,
    default: V,
    _marker: PhantomData<K>,
}

impl<K: EntityRef, V: Clone> Clone for SecondaryMap<K, V> {
    fn clone(&self) -> Self {
        Self { elems: self.elems.clone(), default: self.default.clone(), _marker: PhantomData }
    }

    /// Capacity-reusing clone (see [`PrimaryMap::clone_from`]).
    fn clone_from(&mut self, source: &Self) {
        self.elems.clone_from(&source.elems);
        self.default.clone_from(&source.default);
    }
}

impl<K: EntityRef, V: Clone + Default> SecondaryMap<K, V> {
    /// Creates an empty map whose missing entries read as `V::default()`.
    pub fn new() -> Self {
        Self::with_default(V::default())
    }

    /// Creates a map sized for `len` entities.
    pub fn with_capacity(len: usize) -> Self {
        let mut map = Self::new();
        map.resize(len);
        map
    }
}

impl<K: EntityRef, V: Clone + Default> Default for SecondaryMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityRef, V: Clone> SecondaryMap<K, V> {
    /// Creates an empty map whose missing entries read as `default`.
    pub fn with_default(default: V) -> Self {
        Self { elems: Vec::new(), default, _marker: PhantomData }
    }

    /// Ensures the map covers at least `len` entities.
    pub fn resize(&mut self, len: usize) {
        if self.elems.len() < len {
            self.elems.resize(len, self.default.clone());
        }
    }

    /// Number of slots currently materialized.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Returns `true` if no slot is materialized.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Returns the value for `key`, or the default if it was never written.
    #[inline]
    pub fn get(&self, key: K) -> &V {
        self.elems.get(key.index()).unwrap_or(&self.default)
    }

    /// Iterates over materialized `(key, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.elems.iter().enumerate().map(|(i, v)| (K::new(i), v))
    }

    /// Iterates mutably over every materialized slot — the reset walk of the
    /// analysis-recycling paths, which must restore default-equivalent state
    /// without dropping the per-slot heap allocations (e.g. clearing a
    /// `Vec` slot instead of replacing it).
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.elems.iter_mut()
    }

    /// Drops every materialized slot past `len`, keeping the backing
    /// capacity. Combined with a reset walk over the surviving slots this
    /// bounds the per-function cost of the recycling resets by the *current*
    /// function, not the largest one the map ever covered; callers whose
    /// slots own heap allocations should reclaim those slots (e.g. into a
    /// pool) before truncating.
    pub fn truncate(&mut self, len: usize) {
        self.elems.truncate(len);
    }
}

impl<K: EntityRef, V: Clone> Index<K> for SecondaryMap<K, V> {
    type Output = V;
    #[inline]
    fn index(&self, key: K) -> &V {
        self.get(key)
    }
}

impl<K: EntityRef, V: Clone> IndexMut<K> for SecondaryMap<K, V> {
    #[inline]
    fn index_mut(&mut self, key: K) -> &mut V {
        if key.index() >= self.elems.len() {
            self.elems.resize(key.index() + 1, self.default.clone());
        }
        &mut self.elems[key.index()]
    }
}

impl<K: EntityRef, V: Clone + fmt::Debug> fmt::Debug for SecondaryMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.elems.iter().enumerate()).finish()
    }
}

/// A set of entities backed by a bit vector.
#[derive(PartialEq, Eq)]
pub struct EntitySet<K: EntityRef> {
    words: Vec<u64>,
    len: usize,
    _marker: PhantomData<K>,
}

impl<K: EntityRef> Clone for EntitySet<K> {
    fn clone(&self) -> Self {
        Self { words: self.words.clone(), len: self.len, _marker: PhantomData }
    }

    /// Capacity-reusing clone; equivalent to [`EntitySet::clone_from_set`].
    fn clone_from(&mut self, source: &Self) {
        self.clone_from_set(source);
    }
}

impl<K: EntityRef> Default for EntitySet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityRef> EntitySet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self { words: Vec::new(), len: 0, _marker: PhantomData }
    }

    /// Creates an empty set able to hold entities with index `< capacity`
    /// without reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { words: vec![0; capacity.div_ceil(64)], len: 0, _marker: PhantomData }
    }

    /// Number of entities in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `key`; returns `true` if it was not already present.
    pub fn insert(&mut self, key: K) -> bool {
        let (word, bit) = (key.index() / 64, key.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.words[word] & mask == 0 {
            self.words[word] |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: K) -> bool {
        let (word, bit) = (key.index() / 64, key.index() % 64);
        if word >= self.words.len() {
            return false;
        }
        let mask = 1u64 << bit;
        if self.words[word] & mask != 0 {
            self.words[word] &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Returns `true` if `key` is in the set.
    #[inline]
    pub fn contains(&self, key: K) -> bool {
        let (word, bit) = (key.index() / 64, key.index() % 64);
        self.words.get(word).is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Removes all entities.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Removes all entities *and* forgets the word-vector length while
    /// keeping its capacity. A subsequent repopulation grows the vector
    /// exactly as a freshly constructed set would, so recycled and fresh
    /// sets end up with identical [`EntitySet::footprint_bytes`] — the
    /// invariant the analysis-recycling paths need to stay bit-identical
    /// in their memory statistics.
    pub fn reset(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Iterates over the entities in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(K::new(wi * 64 + bit))
                }
            })
        })
    }

    /// Makes `self` an exact copy of `other`, reusing `self`'s existing
    /// word storage (no allocation when capacity suffices).
    pub fn clone_from_set(&mut self, other: &Self) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// Adds every entity of `other & !minus` to `self` in one word-level
    /// pass: the data-flow transfer `live_in ∪= live_out \ kill` without
    /// per-bit iteration. Returns `true` if `self` grew.
    pub fn union_with_andnot(&mut self, other: &Self, minus: &Self) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        let mut len = 0usize;
        for (i, word) in self.words.iter_mut().enumerate() {
            let incoming = other.words.get(i).copied().unwrap_or(0)
                & !minus.words.get(i).copied().unwrap_or(0);
            let merged = *word | incoming;
            if merged != *word {
                changed = true;
                *word = merged;
            }
            len += merged.count_ones() as usize;
        }
        self.len = len;
        changed
    }

    /// Keeps only the entities also in `other` (set intersection); returns
    /// `true` if `self` shrank. The word-level pass of the must-define
    /// data-flow transfer `in[b] = ∩ preds out[p]`.
    pub fn intersect_with(&mut self, other: &Self) -> bool {
        let mut len = 0usize;
        for (i, word) in self.words.iter_mut().enumerate() {
            *word &= other.words.get(i).copied().unwrap_or(0);
            len += word.count_ones() as usize;
        }
        let changed = len != self.len;
        self.len = len;
        changed
    }

    /// Adds every entity of `other` to `self`; returns `true` if `self` grew.
    pub fn union_with(&mut self, other: &Self) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        let mut len = 0usize;
        for (i, word) in self.words.iter_mut().enumerate() {
            let merged = *word | other.words.get(i).copied().unwrap_or(0);
            if merged != *word {
                changed = true;
                *word = merged;
            }
            len += word.count_ones() as usize;
        }
        self.len = len;
        changed
    }

    /// Heap footprint in bytes of the stored words (used by the memory
    /// experiments). Based on the stored length, not the capacity, so the
    /// reported footprint is a function of the analyzed CFG alone — storage
    /// recycled from a larger function reports the same bytes as a fresh
    /// computation.
    pub fn footprint_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

impl<K: EntityRef + fmt::Debug> fmt::Debug for EntitySet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<K: EntityRef> FromIterator<K> for EntitySet<K> {
    fn from_iter<T: IntoIterator<Item = K>>(iter: T) -> Self {
        let mut set = Self::new();
        for key in iter {
            set.insert(key);
        }
        set
    }
}

impl<K: EntityRef> Extend<K> for EntitySet<K> {
    fn extend<T: IntoIterator<Item = K>>(&mut self, iter: T) {
        for key in iter {
            self.insert(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_map_push_and_index() {
        let mut map: PrimaryMap<Value, &str> = PrimaryMap::new();
        let a = map.push("a");
        let b = map.push("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(map[a], "a");
        assert_eq!(map[b], "b");
        assert_eq!(map.len(), 2);
        assert!(map.contains(a));
        assert!(!map.contains(Value::from_index(7)));
    }

    #[test]
    fn primary_map_iteration_order() {
        let mut map: PrimaryMap<Block, u32> = PrimaryMap::new();
        for i in 0..5 {
            map.push(i * 10);
        }
        let collected: Vec<_> = map.iter().map(|(k, &v)| (k.index(), v)).collect();
        assert_eq!(collected, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
    }

    #[test]
    fn secondary_map_defaults_and_writes() {
        let mut map: SecondaryMap<Value, u32> = SecondaryMap::new();
        let v9 = Value::from_index(9);
        assert_eq!(map[v9], 0);
        map[v9] = 42;
        assert_eq!(map[v9], 42);
        assert_eq!(map[Value::from_index(3)], 0);
        assert!(map.len() >= 10);
    }

    #[test]
    fn secondary_map_custom_default() {
        let mut map: SecondaryMap<Value, i64> = SecondaryMap::with_default(-1);
        assert_eq!(map[Value::from_index(100)], -1);
        map[Value::from_index(2)] = 7;
        assert_eq!(map[Value::from_index(2)], 7);
    }

    #[test]
    fn secondary_map_truncate_drops_slots_and_reads_defaults() {
        let mut map: SecondaryMap<Value, u32> = SecondaryMap::new();
        map[Value::from_index(9)] = 42;
        map[Value::from_index(3)] = 7;
        map.truncate(4);
        assert_eq!(map.len(), 4);
        // Truncated slots read as the default again; survivors keep values.
        assert_eq!(map[Value::from_index(9)], 0);
        assert_eq!(map[Value::from_index(3)], 7);
        // Growing the map back materializes defaults, not stale values.
        map.resize(12);
        assert_eq!(map[Value::from_index(9)], 0);
        // Truncating beyond the materialized length is a no-op.
        map.truncate(100);
        assert_eq!(map.len(), 12);
    }

    #[test]
    fn entity_set_insert_remove_contains() {
        let mut set: EntitySet<Value> = EntitySet::new();
        let v1 = Value::from_index(1);
        let v70 = Value::from_index(70);
        assert!(set.insert(v1));
        assert!(!set.insert(v1));
        assert!(set.insert(v70));
        assert!(set.contains(v1));
        assert!(set.contains(v70));
        assert!(!set.contains(Value::from_index(2)));
        assert_eq!(set.len(), 2);
        assert!(set.remove(v1));
        assert!(!set.remove(v1));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn entity_set_iter_sorted() {
        let mut set: EntitySet<Value> = EntitySet::new();
        for i in [5usize, 1, 200, 63, 64] {
            set.insert(Value::from_index(i));
        }
        let indices: Vec<_> = set.iter().map(|v| v.index()).collect();
        assert_eq!(indices, vec![1, 5, 63, 64, 200]);
    }

    #[test]
    fn entity_set_union() {
        let mut a: EntitySet<Value> =
            [0usize, 1, 2].iter().map(|&i| Value::from_index(i)).collect();
        let b: EntitySet<Value> = [2usize, 100].iter().map(|&i| Value::from_index(i)).collect();
        assert!(a.union_with(&b));
        assert_eq!(a.len(), 4);
        assert!(!a.union_with(&b));
    }

    #[test]
    fn entity_set_intersect_with_matches_per_bit() {
        let mut a: EntitySet<Value> =
            [0usize, 1, 63, 64, 200].iter().map(|&i| Value::from_index(i)).collect();
        let b: EntitySet<Value> = [1usize, 64, 300].iter().map(|&i| Value::from_index(i)).collect();
        assert!(a.intersect_with(&b));
        let indices: Vec<_> = a.iter().map(|v| v.index()).collect();
        assert_eq!(indices, vec![1, 64]);
        assert_eq!(a.len(), 2);
        // Intersecting again changes nothing.
        assert!(!a.intersect_with(&b));
        // A wider `other` never resurrects bits beyond `self`'s words.
        let wide: EntitySet<Value> = [1usize, 500].iter().map(|&i| Value::from_index(i)).collect();
        assert!(a.intersect_with(&wide));
        assert_eq!(a.iter().map(|v| v.index()).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn entity_set_clone_from_set_reuses_storage() {
        let mut a: EntitySet<Value> =
            [0usize, 1, 200].iter().map(|&i| Value::from_index(i)).collect();
        let b: EntitySet<Value> = [5usize, 64].iter().map(|&i| Value::from_index(i)).collect();
        a.clone_from_set(&b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        let indices: Vec<_> = a.iter().map(|v| v.index()).collect();
        assert_eq!(indices, vec![5, 64]);
    }

    #[test]
    fn entity_set_union_with_andnot_matches_per_bit() {
        let other: EntitySet<Value> =
            [1usize, 2, 3, 70, 128].iter().map(|&i| Value::from_index(i)).collect();
        let minus: EntitySet<Value> = [2usize, 128].iter().map(|&i| Value::from_index(i)).collect();
        let mut fast: EntitySet<Value> =
            [0usize, 3].iter().map(|&i| Value::from_index(i)).collect();
        let mut slow = fast.clone();
        assert!(fast.union_with_andnot(&other, &minus));
        for v in other.iter() {
            if !minus.contains(v) {
                slow.insert(v);
            }
        }
        // Compare contents (word-vector lengths may differ by trailing zeros).
        assert_eq!(fast.len(), slow.len());
        assert_eq!(fast.iter().collect::<Vec<_>>(), slow.iter().collect::<Vec<_>>());
        // Second application is a fixpoint.
        assert!(!fast.union_with_andnot(&other, &minus));
    }

    #[test]
    fn entity_display() {
        assert_eq!(Value::from_index(3).to_string(), "v3");
        assert_eq!(Block::from_index(0).to_string(), "bb0");
        assert_eq!(Inst::from_index(12).to_string(), "inst12");
    }
}
