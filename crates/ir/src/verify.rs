//! IR verifier.
//!
//! Two levels of checking are provided:
//!
//! * [`verify_cfg`] — structural checks that hold for both pre-SSA and SSA
//!   code (every block ends with a terminator, φ arguments match the
//!   predecessors, parameters only in the entry block, …);
//! * [`verify_ssa`] — the SSA invariants on top of the structural checks:
//!   unique definitions and every use dominated by its definition (φ uses
//!   are checked at the end of the corresponding predecessor, matching the
//!   parallel-copy semantics of φ-functions).

use std::fmt;

use crate::cfg::ControlFlowGraph;
use crate::dominance::DominatorTree;
use crate::entity::{Block, Inst, SecondaryMap, Value};
use crate::function::Function;
use crate::instruction::InstData;

/// A verifier diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifierError {
    /// Block where the problem was found, if attributable to one.
    pub block: Option<Block>,
    /// Instruction where the problem was found, if attributable to one.
    pub inst: Option<Inst>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.block, self.inst) {
            (Some(block), Some(inst)) => write!(f, "{block}/{inst}: {}", self.message),
            (Some(block), None) => write!(f, "{block}: {}", self.message),
            _ => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for VerifierError {}

/// A list of verifier diagnostics; empty means the function verified.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifierErrors(pub Vec<VerifierError>);

impl VerifierErrors {
    fn report(&mut self, block: Option<Block>, inst: Option<Inst>, message: impl Into<String>) {
        self.0.push(VerifierError { block, inst, message: message.into() });
    }

    /// Returns `true` if no error was reported.
    pub fn is_ok(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into a `Result`, keeping the diagnostics in the error case.
    pub fn into_result(self) -> Result<(), VerifierErrors> {
        if self.is_ok() {
            Ok(())
        } else {
            Err(self)
        }
    }
}

impl fmt::Display for VerifierErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, err) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{err}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifierErrors {}

/// Runs the structural (non-SSA) checks on `func`.
///
/// # Errors
/// Returns every structural violation found.
pub fn verify_cfg(func: &Function) -> Result<(), VerifierErrors> {
    let mut errors = VerifierErrors::default();
    structural_checks(func, &mut errors);
    errors.into_result()
}

/// Runs the structural checks plus the SSA invariants on `func`.
///
/// # Errors
/// Returns every violation found.
pub fn verify_ssa(func: &Function) -> Result<(), VerifierErrors> {
    let mut errors = VerifierErrors::default();
    structural_checks(func, &mut errors);
    if errors.is_ok() {
        ssa_checks(func, &mut errors);
    }
    errors.into_result()
}

fn structural_checks(func: &Function, errors: &mut VerifierErrors) {
    if !func.has_entry() {
        errors.report(None, None, "function has no entry block");
        return;
    }

    let preds = func.predecessors();
    let mut scratch: Vec<Value> = Vec::new();

    for block in func.blocks() {
        let insts = func.block_insts(block);
        if insts.is_empty() {
            errors.report(Some(block), None, "block is empty (no terminator)");
            continue;
        }
        let last = *insts.last().expect("non-empty");
        if !func.inst(last).is_terminator() {
            errors.report(Some(block), Some(last), "block does not end with a terminator");
        }
        for (pos, &inst) in insts.iter().enumerate() {
            let data = func.inst(inst);
            if data.is_terminator() && pos + 1 != insts.len() {
                errors.report(Some(block), Some(inst), "terminator in the middle of a block");
            }
            if data.is_phi() && pos >= func.first_non_phi(block) {
                errors.report(
                    Some(block),
                    Some(inst),
                    "phi instruction outside the leading phi group",
                );
            }
            if let InstData::Param { index, .. } = data {
                if block != func.entry() {
                    errors.report(
                        Some(block),
                        Some(inst),
                        "parameter instruction outside the entry block",
                    );
                }
                if *index >= func.num_params {
                    errors.report(
                        Some(block),
                        Some(inst),
                        format!("parameter index {index} out of range"),
                    );
                }
            }
            // All referenced values must have been allocated.
            scratch.clear();
            data.collect_defs(func.pools(), &mut scratch);
            data.collect_uses(func.pools(), &mut scratch);
            for &value in &scratch {
                if value.index() >= func.num_values() {
                    errors.report(
                        Some(block),
                        Some(inst),
                        format!("reference to unallocated value {value}"),
                    );
                }
            }
            // Successors must be existing blocks.
            for succ in data.successors_iter() {
                if succ.index() >= func.num_blocks() {
                    errors.report(
                        Some(block),
                        Some(inst),
                        format!("branch to unallocated block {succ}"),
                    );
                }
            }
        }

        // φ arguments must match the predecessor set exactly.
        for inst in func.phis(block) {
            let Some(args) = func.inst_phi_args(inst) else { continue };
            let mut seen: Vec<Block> = Vec::new();
            for arg in args {
                if seen.contains(&arg.block) {
                    errors.report(
                        Some(block),
                        Some(inst),
                        format!("duplicate phi argument for predecessor {}", arg.block),
                    );
                }
                seen.push(arg.block);
                if !preds[block].contains(&arg.block) {
                    errors.report(
                        Some(block),
                        Some(inst),
                        format!("phi argument from non-predecessor {}", arg.block),
                    );
                }
            }
            for &pred in &preds[block] {
                if !seen.contains(&pred) {
                    errors.report(
                        Some(block),
                        Some(inst),
                        format!("phi is missing an argument for predecessor {pred}"),
                    );
                }
            }
        }
    }
}

fn ssa_checks(func: &Function, errors: &mut VerifierErrors) {
    let cfg = ControlFlowGraph::compute(func);
    let domtree = DominatorTree::compute(func, &cfg);

    // Unique definitions.
    let counts = func.def_counts();
    for value in func.values() {
        if counts[value] > 1 {
            errors.report(None, None, format!("value {value} has {} definitions", counts[value]));
        }
    }

    let defs = func.def_sites();
    let mut def_reachable: SecondaryMap<Value, bool> = SecondaryMap::new();
    def_reachable.resize(func.num_values());
    for value in func.values() {
        if let Some(site) = defs[value] {
            def_reachable[value] = cfg.is_reachable(site.block);
        }
    }

    // Every use must be dominated by its definition.
    let mut scratch: Vec<Value> = Vec::new();
    for &block in cfg.reverse_post_order() {
        for (pos, &inst) in func.block_insts(block).iter().enumerate() {
            let data = func.inst(inst);
            if let Some(args) = data.phi_args(func.pools()) {
                // φ uses happen at the end of the predecessor block.
                for arg in args {
                    let Some(site) = defs[arg.value] else {
                        errors.report(
                            Some(block),
                            Some(inst),
                            format!("phi uses undefined value {}", arg.value),
                        );
                        continue;
                    };
                    if !cfg.is_reachable(arg.block) {
                        continue;
                    }
                    let pred_end = func.block_len(arg.block);
                    if !domtree.dominates_point((site.block, site.pos), (arg.block, pred_end)) {
                        errors.report(
                            Some(block),
                            Some(inst),
                            format!(
                                "phi argument {} (from {}) is not dominated by its definition",
                                arg.value, arg.block
                            ),
                        );
                    }
                }
            } else {
                scratch.clear();
                data.collect_uses(func.pools(), &mut scratch);
                for &value in &scratch {
                    let Some(site) = defs[value] else {
                        errors.report(
                            Some(block),
                            Some(inst),
                            format!("use of undefined value {value}"),
                        );
                        continue;
                    };
                    if !def_reachable[value] {
                        errors.report(
                            Some(block),
                            Some(inst),
                            format!("use of value {value} defined in unreachable code"),
                        );
                        continue;
                    }
                    // The definition must come strictly before the use, except
                    // that an instruction may not use its own definition.
                    if !domtree.dominates_point((site.block, site.pos), (block, pos))
                        || (site.block == block && site.pos == pos)
                    {
                        errors.report(
                            Some(block),
                            Some(inst),
                            format!("use of {value} is not dominated by its definition"),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::{BinaryOp, PhiArg};

    fn valid_ssa_function() -> Function {
        let mut b = FunctionBuilder::new("ok", 1);
        let entry = b.create_block();
        let then_bb = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let one = b.iconst(1);
        b.branch(x, then_bb, join);
        b.switch_to_block(then_bb);
        let y = b.binary(BinaryOp::Add, x, one);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(entry, one), (then_bb, y)]);
        b.ret(Some(m));
        b.finish()
    }

    #[test]
    fn valid_function_passes() {
        let f = valid_ssa_function();
        assert!(verify_cfg(&f).is_ok());
        assert!(verify_ssa(&f).is_ok());
    }

    #[test]
    fn missing_terminator_is_reported() {
        let mut f = Function::new("bad", 0);
        let entry = f.add_block();
        f.set_entry(entry);
        let v = f.new_value();
        f.append_inst(entry, InstData::Const { dst: v, imm: 1 });
        let err = verify_cfg(&f).unwrap_err();
        assert!(err.0.iter().any(|e| e.message.contains("terminator")));
    }

    #[test]
    fn empty_block_is_reported() {
        let mut f = Function::new("bad", 0);
        let entry = f.add_block();
        f.set_entry(entry);
        f.append_inst(entry, InstData::Return { value: None });
        let dead = f.add_block();
        let _ = dead;
        let err = verify_cfg(&f).unwrap_err();
        assert!(err.0.iter().any(|e| e.message.contains("empty")));
    }

    #[test]
    fn double_definition_is_reported() {
        let mut f = Function::new("bad", 0);
        let entry = f.add_block();
        f.set_entry(entry);
        let v = f.new_value();
        f.append_inst(entry, InstData::Const { dst: v, imm: 1 });
        f.append_inst(entry, InstData::Const { dst: v, imm: 2 });
        f.append_inst(entry, InstData::Return { value: Some(v) });
        assert!(verify_cfg(&f).is_ok());
        let err = verify_ssa(&f).unwrap_err();
        assert!(err.0.iter().any(|e| e.message.contains("definitions")));
    }

    #[test]
    fn use_not_dominated_by_def_is_reported() {
        let mut b = FunctionBuilder::new("bad", 1);
        let entry = b.create_block();
        let left = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.branch(x, left, join);
        b.switch_to_block(left);
        let y = b.iconst(5);
        b.jump(join);
        b.switch_to_block(join);
        // Uses y which is only defined on one path.
        b.ret(Some(y));
        let f = b.finish();
        let err = verify_ssa(&f).unwrap_err();
        assert!(err.0.iter().any(|e| e.message.contains("not dominated")));
    }

    #[test]
    fn phi_argument_mismatch_is_reported() {
        let mut f = valid_ssa_function();
        // Damage the phi: point one argument at a non-predecessor.
        let join = f.blocks().nth(2).unwrap();
        let phi = f.phis(join)[0];
        let args = f.phi_args_mut(phi);
        args[0] = PhiArg { block: Block::from_index(1), value: args[0].value };
        let err = verify_cfg(&f).unwrap_err();
        assert!(!err.0.is_empty());
    }

    #[test]
    fn phi_missing_argument_is_reported() {
        let mut f = valid_ssa_function();
        let join = f.blocks().nth(2).unwrap();
        let phi = f.phis(join)[0];
        let InstData::Phi { args, .. } = f.inst_mut(phi) else { panic!() };
        let mut list = *args;
        let shorter = list.len() - 1;
        f.pools_mut().phis.truncate(&mut list, shorter);
        let InstData::Phi { args, .. } = f.inst_mut(phi) else { panic!() };
        *args = list;
        let err = verify_cfg(&f).unwrap_err();
        assert!(err.0.iter().any(|e| e.message.contains("missing an argument")));
    }

    #[test]
    fn param_outside_entry_is_reported() {
        let mut b = FunctionBuilder::new("bad", 1);
        let entry = b.create_block();
        let other = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        b.jump(other);
        b.switch_to_block(other);
        let p = b.param(0);
        b.ret(Some(p));
        let f = b.finish();
        let err = verify_cfg(&f).unwrap_err();
        assert!(err.0.iter().any(|e| e.message.contains("entry block")));
    }

    #[test]
    fn use_of_undefined_value_is_reported() {
        let mut f = Function::new("bad", 0);
        let entry = f.add_block();
        f.set_entry(entry);
        let ghost = f.new_value();
        f.append_inst(entry, InstData::Return { value: Some(ghost) });
        let err = verify_ssa(&f).unwrap_err();
        assert!(err.0.iter().any(|e| e.message.contains("undefined")));
    }

    #[test]
    fn error_display_mentions_location() {
        let err = VerifierError {
            block: Some(Block::from_index(2)),
            inst: Some(Inst::from_index(7)),
            message: "boom".into(),
        };
        assert_eq!(err.to_string(), "bb2/inst7: boom");
    }
}
