//! Natural-loop analysis and static block-frequency estimation.
//!
//! The out-of-SSA coalescer of the paper weighs copies by the execution
//! frequency of the block they would be placed in ("we use classic profile
//! information to get basic block frequencies", Section III-B). Without a
//! profile, the standard static estimate is used: a block nested in `d`
//! loops gets weight `LOOP_WEIGHT^d`.

use crate::cfg::ControlFlowGraph;
use crate::dominance::DominatorTree;
use crate::entity::{Block, EntitySet, SecondaryMap};
use crate::function::Function;

/// Multiplicative weight given to each level of loop nesting when estimating
/// block frequencies statically.
pub const LOOP_WEIGHT: f64 = 10.0;

/// Natural loops of a function, discovered from back edges
/// (`latch -> header` where `header` dominates `latch`).
#[derive(Clone, Debug, Default)]
pub struct LoopAnalysis {
    /// Loop nesting depth of each block (0 = not in any loop).
    depth: SecondaryMap<Block, u32>,
    /// Header blocks of discovered loops, deduplicated.
    headers: Vec<Block>,
    /// Blocks belonging to each loop, parallel to `headers`.
    bodies: Vec<EntitySet<Block>>,
    /// Retired body sets, recycled by the next recomputation.
    spare_bodies: Vec<EntitySet<Block>>,
    /// Backward-walk scratch of the body collection.
    stack: Vec<Block>,
}

/// Collects the body of the natural loop with header `header` and latch
/// `latch` into `body` (classic backward walk from the latch). Collecting
/// into an already-populated body merges loops sharing a header: a block
/// already in the body stops the walk exactly where the earlier walk
/// continued it.
fn collect_loop_body(
    body: &mut EntitySet<Block>,
    cfg: &ControlFlowGraph,
    header: Block,
    latch: Block,
    stack: &mut Vec<Block>,
) {
    body.insert(header);
    stack.clear();
    stack.push(latch);
    while let Some(block) = stack.pop() {
        if body.insert(block) {
            for &pred in cfg.preds(block) {
                stack.push(pred);
            }
        }
    }
}

impl LoopAnalysis {
    /// Discovers natural loops and nesting depths.
    pub fn compute(func: &Function, cfg: &ControlFlowGraph, domtree: &DominatorTree) -> Self {
        let mut this = Self::default();
        this.recompute(func, cfg, domtree);
        this
    }

    /// Recomputes the analysis in place, reusing the per-block depth map and
    /// the loop body sets of a previous computation (possibly of a different
    /// function). Behaviourally identical to [`LoopAnalysis::compute`]; only
    /// the heap traffic differs — this is what lets
    /// [`crate::AnalysisManager`] recycle the analysis across the functions
    /// of a corpus like every other CFG-level analysis.
    pub fn recompute(&mut self, func: &Function, cfg: &ControlFlowGraph, domtree: &DominatorTree) {
        while let Some(mut body) = self.bodies.pop() {
            body.reset();
            self.spare_bodies.push(body);
        }
        self.headers.clear();

        for &block in cfg.reverse_post_order() {
            for &succ in cfg.succs(block) {
                if domtree.dominates(succ, block) {
                    // Back edge block -> succ; succ is a loop header.
                    match self.headers.iter().position(|&h| h == succ) {
                        Some(idx) => collect_loop_body(
                            &mut self.bodies[idx],
                            cfg,
                            succ,
                            block,
                            &mut self.stack,
                        ),
                        None => {
                            let mut body = self.spare_bodies.pop().unwrap_or_default();
                            collect_loop_body(&mut body, cfg, succ, block, &mut self.stack);
                            self.headers.push(succ);
                            self.bodies.push(body);
                        }
                    }
                }
            }
        }

        self.depth.truncate(func.num_blocks());
        for slot in self.depth.values_mut() {
            *slot = 0;
        }
        self.depth.resize(func.num_blocks());
        for body in &self.bodies {
            for block in body.iter() {
                self.depth[block] += 1;
            }
        }
    }

    /// Loop nesting depth of `block` (0 when outside all loops).
    pub fn depth(&self, block: Block) -> u32 {
        self.depth[block]
    }

    /// Number of distinct loop headers found.
    pub fn num_loops(&self) -> usize {
        self.headers.len()
    }

    /// Returns `true` if `block` is a loop header.
    pub fn is_header(&self, block: Block) -> bool {
        self.headers.contains(&block)
    }

    /// Returns `true` if `block` belongs to the loop with header `header`.
    pub fn loop_contains(&self, header: Block, block: Block) -> bool {
        self.headers
            .iter()
            .position(|&h| h == header)
            .is_some_and(|idx| self.bodies[idx].contains(block))
    }
}

/// Static block-frequency estimate used as copy weights by the coalescer.
#[derive(Clone, Debug)]
pub struct BlockFrequencies {
    freq: SecondaryMap<Block, f64>,
}

impl Default for BlockFrequencies {
    fn default() -> Self {
        Self { freq: SecondaryMap::with_default(1.0) }
    }
}

impl BlockFrequencies {
    /// Estimates frequencies from loop nesting depth: `LOOP_WEIGHT^depth`.
    pub fn from_loop_depths(func: &Function, loops: &LoopAnalysis) -> Self {
        let mut this = Self::default();
        this.recompute_from_loop_depths(func, loops);
        this
    }

    /// Recomputes the estimate in place, reusing the per-block map of a
    /// previous (possibly different) function — identical to
    /// [`BlockFrequencies::from_loop_depths`] except for the heap traffic.
    pub fn recompute_from_loop_depths(&mut self, func: &Function, loops: &LoopAnalysis) {
        self.freq.truncate(func.num_blocks());
        for slot in self.freq.values_mut() {
            *slot = 1.0;
        }
        self.freq.resize(func.num_blocks());
        for block in func.blocks() {
            self.freq[block] = LOOP_WEIGHT.powi(loops.depth(block) as i32);
        }
    }

    /// Computes loop analysis and frequencies for `func` in one call.
    pub fn compute(func: &Function) -> Self {
        let cfg = ControlFlowGraph::compute(func);
        let domtree = DominatorTree::compute(func, &cfg);
        let loops = LoopAnalysis::compute(func, &cfg, &domtree);
        Self::from_loop_depths(func, &loops)
    }

    /// Estimated execution frequency of `block`.
    pub fn frequency(&self, block: Block) -> f64 {
        self.freq[block]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    /// entry -> outer_header -> inner_header -> inner_body -> inner_header
    ///          outer_header <- outer_latch <- inner_header ; exit
    fn nested_loops() -> (Function, Vec<Block>) {
        let mut b = FunctionBuilder::new("nested", 1);
        let entry = b.create_block();
        let outer = b.create_block();
        let inner = b.create_block();
        let inner_body = b.create_block();
        let outer_latch = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.jump(outer);
        b.switch_to_block(outer);
        b.branch(x, inner, exit);
        b.switch_to_block(inner);
        b.branch(x, inner_body, outer_latch);
        b.switch_to_block(inner_body);
        b.jump(inner);
        b.switch_to_block(outer_latch);
        b.jump(outer);
        b.switch_to_block(exit);
        b.ret(None);
        (b.finish(), vec![entry, outer, inner, inner_body, outer_latch, exit])
    }

    fn run(f: &Function) -> (ControlFlowGraph, DominatorTree, LoopAnalysis) {
        let cfg = ControlFlowGraph::compute(f);
        let dom = DominatorTree::compute(f, &cfg);
        let loops = LoopAnalysis::compute(f, &cfg, &dom);
        (cfg, dom, loops)
    }

    #[test]
    fn loop_depths_of_nested_loops() {
        let (f, blocks) = nested_loops();
        let (_, _, loops) = run(&f);
        let [entry, outer, inner, inner_body, outer_latch, exit] = blocks[..] else { panic!() };
        assert_eq!(loops.depth(entry), 0);
        assert_eq!(loops.depth(exit), 0);
        assert_eq!(loops.depth(outer), 1);
        assert_eq!(loops.depth(outer_latch), 1);
        assert_eq!(loops.depth(inner), 2);
        assert_eq!(loops.depth(inner_body), 2);
        assert_eq!(loops.num_loops(), 2);
        assert!(loops.is_header(outer));
        assert!(loops.is_header(inner));
        assert!(!loops.is_header(inner_body));
    }

    #[test]
    fn loop_membership() {
        let (f, blocks) = nested_loops();
        let (_, _, loops) = run(&f);
        let [_, outer, inner, inner_body, outer_latch, exit] = blocks[..] else { panic!() };
        assert!(loops.loop_contains(outer, inner));
        assert!(loops.loop_contains(outer, outer_latch));
        assert!(loops.loop_contains(inner, inner_body));
        assert!(!loops.loop_contains(inner, outer_latch));
        assert!(!loops.loop_contains(outer, exit));
    }

    #[test]
    fn frequencies_follow_nesting() {
        let (f, blocks) = nested_loops();
        let freqs = BlockFrequencies::compute(&f);
        let [entry, outer, inner, ..] = blocks[..] else { panic!() };
        assert_eq!(freqs.frequency(entry), 1.0);
        assert_eq!(freqs.frequency(outer), LOOP_WEIGHT);
        assert_eq!(freqs.frequency(inner), LOOP_WEIGHT * LOOP_WEIGHT);
    }

    #[test]
    fn function_without_loops_has_unit_frequencies() {
        let mut b = FunctionBuilder::new("flat", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        b.ret(None);
        let f = b.finish();
        let (_, _, loops) = run(&f);
        assert_eq!(loops.num_loops(), 0);
        let freqs = BlockFrequencies::compute(&f);
        assert_eq!(freqs.frequency(entry), 1.0);
    }

    #[test]
    fn self_loop_is_detected() {
        let mut b = FunctionBuilder::new("selfloop", 1);
        let entry = b.create_block();
        let looping = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.jump(looping);
        b.switch_to_block(looping);
        b.branch(x, looping, exit);
        b.switch_to_block(exit);
        b.ret(None);
        let f = b.finish();
        let (_, _, loops) = run(&f);
        assert_eq!(loops.depth(looping), 1);
        assert_eq!(loops.depth(entry), 0);
        assert!(loops.is_header(looping));
    }
}
