//! Natural-loop analysis and static block-frequency estimation.
//!
//! The out-of-SSA coalescer of the paper weighs copies by the execution
//! frequency of the block they would be placed in ("we use classic profile
//! information to get basic block frequencies", Section III-B). Without a
//! profile, the standard static estimate is used: a block nested in `d`
//! loops gets weight `LOOP_WEIGHT^d`.

use crate::cfg::ControlFlowGraph;
use crate::dominance::DominatorTree;
use crate::entity::{Block, EntitySet, SecondaryMap};
use crate::function::Function;

/// Multiplicative weight given to each level of loop nesting when estimating
/// block frequencies statically.
pub const LOOP_WEIGHT: f64 = 10.0;

/// Natural loops of a function, discovered from back edges
/// (`latch -> header` where `header` dominates `latch`).
#[derive(Clone, Debug)]
pub struct LoopAnalysis {
    /// Loop nesting depth of each block (0 = not in any loop).
    depth: SecondaryMap<Block, u32>,
    /// Header blocks of discovered loops, deduplicated.
    headers: Vec<Block>,
    /// Blocks belonging to each loop, parallel to `headers`.
    bodies: Vec<EntitySet<Block>>,
}

impl LoopAnalysis {
    /// Discovers natural loops and nesting depths.
    pub fn compute(func: &Function, cfg: &ControlFlowGraph, domtree: &DominatorTree) -> Self {
        let mut headers: Vec<Block> = Vec::new();
        let mut bodies: Vec<EntitySet<Block>> = Vec::new();

        for &block in cfg.reverse_post_order() {
            for &succ in cfg.succs(block) {
                if domtree.dominates(succ, block) {
                    // Back edge block -> succ; succ is a loop header.
                    let body = Self::natural_loop_body(func, cfg, succ, block);
                    if let Some(idx) = headers.iter().position(|&h| h == succ) {
                        let merged = &mut bodies[idx];
                        for b in body.iter() {
                            merged.insert(b);
                        }
                    } else {
                        headers.push(succ);
                        bodies.push(body);
                    }
                }
            }
        }

        let mut depth: SecondaryMap<Block, u32> = SecondaryMap::new();
        depth.resize(func.num_blocks());
        for body in &bodies {
            for block in body.iter() {
                depth[block] += 1;
            }
        }

        Self { depth, headers, bodies }
    }

    /// Collects the body of the natural loop with header `header` and latch
    /// `latch` (classic backward walk from the latch).
    fn natural_loop_body(
        func: &Function,
        cfg: &ControlFlowGraph,
        header: Block,
        latch: Block,
    ) -> EntitySet<Block> {
        let mut body = EntitySet::with_capacity(func.num_blocks());
        body.insert(header);
        let mut stack = vec![latch];
        while let Some(block) = stack.pop() {
            if body.insert(block) {
                for &pred in cfg.preds(block) {
                    stack.push(pred);
                }
            }
        }
        body
    }

    /// Loop nesting depth of `block` (0 when outside all loops).
    pub fn depth(&self, block: Block) -> u32 {
        self.depth[block]
    }

    /// Number of distinct loop headers found.
    pub fn num_loops(&self) -> usize {
        self.headers.len()
    }

    /// Returns `true` if `block` is a loop header.
    pub fn is_header(&self, block: Block) -> bool {
        self.headers.contains(&block)
    }

    /// Returns `true` if `block` belongs to the loop with header `header`.
    pub fn loop_contains(&self, header: Block, block: Block) -> bool {
        self.headers
            .iter()
            .position(|&h| h == header)
            .is_some_and(|idx| self.bodies[idx].contains(block))
    }
}

/// Static block-frequency estimate used as copy weights by the coalescer.
#[derive(Clone, Debug)]
pub struct BlockFrequencies {
    freq: SecondaryMap<Block, f64>,
}

impl BlockFrequencies {
    /// Estimates frequencies from loop nesting depth: `LOOP_WEIGHT^depth`.
    pub fn from_loop_depths(func: &Function, loops: &LoopAnalysis) -> Self {
        let mut freq: SecondaryMap<Block, f64> = SecondaryMap::with_default(1.0);
        freq.resize(func.num_blocks());
        for block in func.blocks() {
            freq[block] = LOOP_WEIGHT.powi(loops.depth(block) as i32);
        }
        Self { freq }
    }

    /// Computes loop analysis and frequencies for `func` in one call.
    pub fn compute(func: &Function) -> Self {
        let cfg = ControlFlowGraph::compute(func);
        let domtree = DominatorTree::compute(func, &cfg);
        let loops = LoopAnalysis::compute(func, &cfg, &domtree);
        Self::from_loop_depths(func, &loops)
    }

    /// Estimated execution frequency of `block`.
    pub fn frequency(&self, block: Block) -> f64 {
        self.freq[block]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    /// entry -> outer_header -> inner_header -> inner_body -> inner_header
    ///          outer_header <- outer_latch <- inner_header ; exit
    fn nested_loops() -> (Function, Vec<Block>) {
        let mut b = FunctionBuilder::new("nested", 1);
        let entry = b.create_block();
        let outer = b.create_block();
        let inner = b.create_block();
        let inner_body = b.create_block();
        let outer_latch = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.jump(outer);
        b.switch_to_block(outer);
        b.branch(x, inner, exit);
        b.switch_to_block(inner);
        b.branch(x, inner_body, outer_latch);
        b.switch_to_block(inner_body);
        b.jump(inner);
        b.switch_to_block(outer_latch);
        b.jump(outer);
        b.switch_to_block(exit);
        b.ret(None);
        (b.finish(), vec![entry, outer, inner, inner_body, outer_latch, exit])
    }

    fn run(f: &Function) -> (ControlFlowGraph, DominatorTree, LoopAnalysis) {
        let cfg = ControlFlowGraph::compute(f);
        let dom = DominatorTree::compute(f, &cfg);
        let loops = LoopAnalysis::compute(f, &cfg, &dom);
        (cfg, dom, loops)
    }

    #[test]
    fn loop_depths_of_nested_loops() {
        let (f, blocks) = nested_loops();
        let (_, _, loops) = run(&f);
        let [entry, outer, inner, inner_body, outer_latch, exit] = blocks[..] else { panic!() };
        assert_eq!(loops.depth(entry), 0);
        assert_eq!(loops.depth(exit), 0);
        assert_eq!(loops.depth(outer), 1);
        assert_eq!(loops.depth(outer_latch), 1);
        assert_eq!(loops.depth(inner), 2);
        assert_eq!(loops.depth(inner_body), 2);
        assert_eq!(loops.num_loops(), 2);
        assert!(loops.is_header(outer));
        assert!(loops.is_header(inner));
        assert!(!loops.is_header(inner_body));
    }

    #[test]
    fn loop_membership() {
        let (f, blocks) = nested_loops();
        let (_, _, loops) = run(&f);
        let [_, outer, inner, inner_body, outer_latch, exit] = blocks[..] else { panic!() };
        assert!(loops.loop_contains(outer, inner));
        assert!(loops.loop_contains(outer, outer_latch));
        assert!(loops.loop_contains(inner, inner_body));
        assert!(!loops.loop_contains(inner, outer_latch));
        assert!(!loops.loop_contains(outer, exit));
    }

    #[test]
    fn frequencies_follow_nesting() {
        let (f, blocks) = nested_loops();
        let freqs = BlockFrequencies::compute(&f);
        let [entry, outer, inner, ..] = blocks[..] else { panic!() };
        assert_eq!(freqs.frequency(entry), 1.0);
        assert_eq!(freqs.frequency(outer), LOOP_WEIGHT);
        assert_eq!(freqs.frequency(inner), LOOP_WEIGHT * LOOP_WEIGHT);
    }

    #[test]
    fn function_without_loops_has_unit_frequencies() {
        let mut b = FunctionBuilder::new("flat", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        b.ret(None);
        let f = b.finish();
        let (_, _, loops) = run(&f);
        assert_eq!(loops.num_loops(), 0);
        let freqs = BlockFrequencies::compute(&f);
        assert_eq!(freqs.frequency(entry), 1.0);
    }

    #[test]
    fn self_loop_is_detected() {
        let mut b = FunctionBuilder::new("selfloop", 1);
        let entry = b.create_block();
        let looping = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.jump(looping);
        b.switch_to_block(looping);
        b.branch(x, looping, exit);
        b.switch_to_block(exit);
        b.ret(None);
        let f = b.finish();
        let (_, _, loops) = run(&f);
        assert_eq!(loops.depth(looping), 1);
        assert_eq!(loops.depth(entry), 0);
        assert!(loops.is_header(looping));
    }
}
