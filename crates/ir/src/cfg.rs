//! Control-flow graph: cached predecessor/successor lists and traversal
//! orders.
//!
//! Edge lists are stored in compressed sparse-row form (one flat edge array
//! plus per-block offsets, per direction), so recomputing the CFG into
//! recycled storage performs no per-block allocation: the four backing
//! vectors amortize to the corpus high-water mark.

use crate::dominance::DominatorTree;
use crate::entity::{Block, EntityRef, EntitySet};
use crate::function::Function;

/// Compressed sparse-row adjacency: `edges[offsets[b] .. offsets[b + 1]]`
/// are the neighbours of block `b`.
#[derive(Clone, Debug, Default)]
struct Adjacency {
    offsets: Vec<u32>,
    edges: Vec<Block>,
}

impl Adjacency {
    #[inline]
    fn of(&self, block: Block) -> &[Block] {
        let i = block.index();
        match (self.offsets.get(i), self.offsets.get(i + 1)) {
            (Some(&lo), Some(&hi)) => &self.edges[lo as usize..hi as usize],
            _ => &[],
        }
    }
}

/// Cached predecessor and successor lists of a function's CFG, plus reverse
/// post-order.
#[derive(Clone, Debug, Default)]
pub struct ControlFlowGraph {
    succs: Adjacency,
    preds: Adjacency,
    rpo: Vec<Block>,
    /// Position of each reachable block in `rpo` (`u32::MAX` for
    /// unreachable blocks), for O(1) retreating-edge classification.
    rpo_number: Vec<u32>,
    reachable: EntitySet<Block>,
    /// DFS scratch of the traversal-order computation.
    stack: Vec<(Block, u32)>,
}

impl ControlFlowGraph {
    /// Computes the CFG of `func`.
    pub fn compute(func: &Function) -> Self {
        let mut this = Self::default();
        this.recompute(func);
        this
    }

    /// Recomputes the CFG of `func` in place, reusing the edge storage and
    /// the traversal order of a previous computation (possibly of a
    /// *different* function). The result is indistinguishable from
    /// [`ControlFlowGraph::compute`]; only the heap traffic differs — this
    /// is what lets an analysis cache recycle its storage across the
    /// functions of a corpus.
    pub fn recompute(&mut self, func: &Function) {
        let num_blocks = func.num_blocks();

        // Successor CSR: blocks emit their (at most two) successors in
        // index order, so one forward pass fills both arrays.
        self.succs.offsets.clear();
        self.succs.edges.clear();
        self.succs.offsets.reserve(num_blocks + 1);
        self.succs.offsets.push(0);
        for bi in 0..num_blocks {
            let block = Block::new(bi);
            for succ in func.successors_iter(block) {
                self.succs.edges.push(succ);
            }
            self.succs.offsets.push(self.succs.edges.len() as u32);
        }

        // Predecessor CSR: count → prefix-sum → cursor fill → shift, the
        // same in-offsets discipline as the use-site index.
        let offsets = &mut self.preds.offsets;
        offsets.clear();
        offsets.resize(num_blocks + 1, 0);
        for &succ in &self.succs.edges {
            offsets[succ.index() + 1] += 1;
        }
        for i in 0..num_blocks {
            offsets[i + 1] += offsets[i];
        }
        let total = offsets[num_blocks] as usize;
        self.preds.edges.clear();
        self.preds.edges.resize(total, Block::new(0));
        for bi in 0..num_blocks {
            let block = Block::new(bi);
            let (lo, hi) = (self.succs.offsets[bi] as usize, self.succs.offsets[bi + 1] as usize);
            for &succ in &self.succs.edges[lo..hi] {
                let slot = offsets[succ.index()];
                offsets[succ.index()] += 1;
                self.preds.edges[slot as usize] = block;
            }
        }
        for i in (1..=num_blocks).rev() {
            offsets[i] = offsets[i - 1];
        }
        offsets[0] = 0;

        // Post-order DFS from the entry block, accumulated into `rpo` and
        // reversed in place.
        self.rpo.clear();
        self.rpo.reserve(num_blocks);
        self.reachable.reset();
        if func.has_entry() {
            let entry = func.entry();
            // Iterative DFS with an explicit stack of (block, next-successor).
            self.stack.clear();
            self.stack.push((entry, 0));
            self.reachable.insert(entry);
            while let Some(&mut (block, ref mut next)) = self.stack.last_mut() {
                let succs = self.succs.of(block);
                if (*next as usize) < succs.len() {
                    let succ = succs[*next as usize];
                    *next += 1;
                    if self.reachable.insert(succ) {
                        self.stack.push((succ, 0));
                    }
                } else {
                    self.rpo.push(block);
                    self.stack.pop();
                }
            }
        }
        self.rpo.reverse();

        // Invert the order into per-block positions, into recycled storage.
        self.rpo_number.clear();
        self.rpo_number.resize(num_blocks, u32::MAX);
        for (i, &block) in self.rpo.iter().enumerate() {
            self.rpo_number[block.index()] = i as u32;
        }
    }

    /// Successors of `block`.
    #[inline]
    pub fn succs(&self, block: Block) -> &[Block] {
        self.succs.of(block)
    }

    /// Predecessors of `block`.
    #[inline]
    pub fn preds(&self, block: Block) -> &[Block] {
        self.preds.of(block)
    }

    /// Blocks reachable from the entry, in reverse post-order.
    pub fn reverse_post_order(&self) -> &[Block] {
        &self.rpo
    }

    /// Blocks reachable from the entry, in post-order.
    pub fn post_order(&self) -> impl Iterator<Item = Block> + '_ {
        self.rpo.iter().rev().copied()
    }

    /// Returns `true` if `block` is reachable from the entry block.
    pub fn is_reachable(&self, block: Block) -> bool {
        self.reachable.contains(block)
    }

    /// Number of reachable blocks.
    pub fn num_reachable(&self) -> usize {
        self.rpo.len()
    }

    /// Returns `true` if the edge `pred -> succ` is critical, i.e. `pred` has
    /// several successors and `succ` has several predecessors.
    pub fn is_critical_edge(&self, pred: Block, succ: Block) -> bool {
        self.succs(pred).len() > 1 && self.preds(succ).len() > 1
    }

    /// Iterates over all edges `(pred, succ)` of reachable blocks.
    pub fn edges(&self) -> impl Iterator<Item = (Block, Block)> + '_ {
        self.rpo.iter().flat_map(move |&b| self.succs(b).iter().map(move |&s| (b, s)))
    }

    /// Position of `block` in the reverse post-order, or `None` if it is
    /// unreachable.
    #[inline]
    pub fn rpo_number(&self, block: Block) -> Option<u32> {
        match self.rpo_number.get(block.index()) {
            Some(&n) if n != u32::MAX => Some(n),
            _ => None,
        }
    }

    /// Returns `true` if the reachable CFG is reducible: every *retreating*
    /// edge `s -> t` (one going against the reverse post-order, i.e.
    /// `rpo_number(t) <= rpo_number(s)`) is a genuine *back* edge whose
    /// target dominates its source. On a reducible CFG the two notions
    /// coincide; a retreating edge into a multi-entry cycle — whose target
    /// does *not* dominate its source — is exactly what breaks the acyclic
    /// "reduced graph" assumption of the fast liveness checker, so callers
    /// use this test to fall back to the data-flow liveness sets.
    ///
    /// Runs in O(edges) with no allocation (`DominatorTree::dominates` is
    /// O(1)); `domtree` must belong to the same CFG.
    pub fn is_reducible(&self, domtree: &DominatorTree) -> bool {
        self.edges().all(|(s, t)| {
            self.rpo_number[t.index()] > self.rpo_number[s.index()] || domtree.dominates(t, s)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::CmpOp;

    /// entry -> {then, else} -> join -> exit ; plus an unreachable block.
    fn diamond() -> (Function, Vec<Block>) {
        let mut b = FunctionBuilder::new("diamond", 1);
        let entry = b.create_block();
        let then_bb = b.create_block();
        let else_bb = b.create_block();
        let join = b.create_block();
        let dead = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        b.branch(c, then_bb, else_bb);
        b.switch_to_block(then_bb);
        b.jump(join);
        b.switch_to_block(else_bb);
        b.jump(join);
        b.switch_to_block(join);
        b.ret(None);
        b.switch_to_block(dead);
        b.ret(None);
        (b.finish(), vec![entry, then_bb, else_bb, join, dead])
    }

    #[test]
    fn preds_and_succs() {
        let (f, blocks) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        assert_eq!(cfg.succs(blocks[0]), &[blocks[1], blocks[2]]);
        assert_eq!(cfg.preds(blocks[3]), &[blocks[1], blocks[2]]);
        assert!(cfg.preds(blocks[0]).is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_skips_unreachable() {
        let (f, blocks) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], blocks[0]);
        assert_eq!(rpo.len(), 4);
        assert!(!rpo.contains(&blocks[4]));
        assert!(cfg.is_reachable(blocks[3]));
        assert!(!cfg.is_reachable(blocks[4]));
        // RPO property: every block appears after at least one predecessor
        // (except the entry and loop headers; there are no loops here).
        for (i, &b) in rpo.iter().enumerate().skip(1) {
            assert!(cfg.preds(b).iter().any(|p| rpo[..i].contains(p)));
        }
    }

    #[test]
    fn critical_edge_detection() {
        // entry branches to {a, join}; a jumps to join. The edge entry->join
        // is critical.
        let mut b = FunctionBuilder::new("crit", 1);
        let entry = b.create_block();
        let a = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.branch(x, a, join);
        b.switch_to_block(a);
        b.jump(join);
        b.switch_to_block(join);
        b.ret(None);
        let f = b.finish();
        let cfg = ControlFlowGraph::compute(&f);
        assert!(cfg.is_critical_edge(entry, join));
        assert!(!cfg.is_critical_edge(entry, a));
        assert!(!cfg.is_critical_edge(a, join));
    }

    #[test]
    fn edges_iterator_counts() {
        let (f, _) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        assert_eq!(cfg.edges().count(), 4);
    }

    #[test]
    fn rpo_numbers_invert_the_order() {
        let (f, blocks) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        for (i, &b) in cfg.reverse_post_order().iter().enumerate() {
            assert_eq!(cfg.rpo_number(b), Some(i as u32));
        }
        assert_eq!(cfg.rpo_number(blocks[4]), None);
    }

    #[test]
    fn reducible_shapes_are_detected() {
        // A diamond (acyclic) and a natural loop are both reducible.
        let (f, _) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        let domtree = DominatorTree::compute(&f, &cfg);
        assert!(cfg.is_reducible(&domtree));

        let mut b = FunctionBuilder::new("loop", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        b.jump(header);
        b.switch_to_block(header);
        b.branch(n, body, exit);
        b.switch_to_block(body);
        b.jump(header);
        b.switch_to_block(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = ControlFlowGraph::compute(&f);
        let domtree = DominatorTree::compute(&f, &cfg);
        assert!(cfg.is_reducible(&domtree));
    }

    #[test]
    fn multi_entry_cycle_is_irreducible() {
        // entry branches into both halves of the cycle a <-> b: whichever of
        // the two the DFS visits second is the target of a retreating edge
        // whose source it does not dominate.
        let mut bld = FunctionBuilder::new("irred", 1);
        let entry = bld.create_block();
        let a = bld.create_block();
        let b = bld.create_block();
        bld.set_entry(entry);
        bld.switch_to_block(entry);
        let x = bld.param(0);
        bld.branch(x, a, b);
        bld.switch_to_block(a);
        bld.jump(b);
        bld.switch_to_block(b);
        bld.jump(a);
        let f = bld.finish();
        let cfg = ControlFlowGraph::compute(&f);
        let domtree = DominatorTree::compute(&f, &cfg);
        assert!(!cfg.is_reducible(&domtree));
    }

    #[test]
    fn loop_rpo_contains_all_blocks_once() {
        let mut b = FunctionBuilder::new("loop", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        b.jump(header);
        b.switch_to_block(header);
        b.branch(n, body, exit);
        b.switch_to_block(body);
        b.jump(header);
        b.switch_to_block(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = ControlFlowGraph::compute(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], entry);
        let mut sorted: Vec<_> = rpo.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }
}
