//! Control-flow graph: cached predecessor/successor lists and traversal
//! orders.

use crate::entity::{Block, EntitySet, SecondaryMap};
use crate::function::Function;

/// Cached predecessor and successor lists of a function's CFG, plus reverse
/// post-order.
#[derive(Clone, Debug)]
pub struct ControlFlowGraph {
    succs: SecondaryMap<Block, Vec<Block>>,
    preds: SecondaryMap<Block, Vec<Block>>,
    rpo: Vec<Block>,
    reachable: EntitySet<Block>,
}

impl ControlFlowGraph {
    /// Computes the CFG of `func`.
    pub fn compute(func: &Function) -> Self {
        let mut this = Self {
            succs: SecondaryMap::new(),
            preds: SecondaryMap::new(),
            rpo: Vec::new(),
            reachable: EntitySet::new(),
        };
        this.recompute(func);
        this
    }

    /// Recomputes the CFG of `func` in place, reusing the per-block edge
    /// lists, the traversal order and the reachability set of a previous
    /// computation (possibly of a *different* function). The result is
    /// indistinguishable from [`ControlFlowGraph::compute`]; only the heap
    /// traffic differs — this is what lets an analysis cache recycle its
    /// storage across the functions of a corpus.
    pub fn recompute(&mut self, func: &Function) {
        // Truncate before the reset walk so the per-function reset cost is
        // O(current function), not O(largest function ever seen).
        self.succs.truncate(func.num_blocks());
        self.preds.truncate(func.num_blocks());
        for list in self.succs.values_mut() {
            list.clear();
        }
        for list in self.preds.values_mut() {
            list.clear();
        }
        self.succs.resize(func.num_blocks());
        self.preds.resize(func.num_blocks());
        for block in func.blocks() {
            let s = func.successors(block);
            for &succ in &s {
                self.preds[succ].push(block);
            }
            // Reuse the recycled buffer when there is one; otherwise move the
            // freshly built list in (one allocation, as a fresh compute).
            if self.succs[block].capacity() == 0 {
                self.succs[block] = s;
            } else {
                self.succs[block].extend_from_slice(&s);
            }
        }

        // Post-order DFS from the entry block, accumulated into `rpo` and
        // reversed in place.
        self.rpo.clear();
        self.rpo.reserve(func.num_blocks());
        self.reachable.reset();
        if func.has_entry() {
            let entry = func.entry();
            // Iterative DFS with an explicit stack of (block, next-successor).
            let mut stack: Vec<(Block, usize)> = vec![(entry, 0)];
            self.reachable.insert(entry);
            while let Some(&mut (block, ref mut next)) = stack.last_mut() {
                if *next < self.succs[block].len() {
                    let succ = self.succs[block][*next];
                    *next += 1;
                    if self.reachable.insert(succ) {
                        stack.push((succ, 0));
                    }
                } else {
                    self.rpo.push(block);
                    stack.pop();
                }
            }
        }
        self.rpo.reverse();
    }

    /// Successors of `block`.
    pub fn succs(&self, block: Block) -> &[Block] {
        &self.succs[block]
    }

    /// Predecessors of `block`.
    pub fn preds(&self, block: Block) -> &[Block] {
        &self.preds[block]
    }

    /// Blocks reachable from the entry, in reverse post-order.
    pub fn reverse_post_order(&self) -> &[Block] {
        &self.rpo
    }

    /// Blocks reachable from the entry, in post-order.
    pub fn post_order(&self) -> impl Iterator<Item = Block> + '_ {
        self.rpo.iter().rev().copied()
    }

    /// Returns `true` if `block` is reachable from the entry block.
    pub fn is_reachable(&self, block: Block) -> bool {
        self.reachable.contains(block)
    }

    /// Number of reachable blocks.
    pub fn num_reachable(&self) -> usize {
        self.rpo.len()
    }

    /// Returns `true` if the edge `pred -> succ` is critical, i.e. `pred` has
    /// several successors and `succ` has several predecessors.
    pub fn is_critical_edge(&self, pred: Block, succ: Block) -> bool {
        self.succs(pred).len() > 1 && self.preds(succ).len() > 1
    }

    /// Iterates over all edges `(pred, succ)` of reachable blocks.
    pub fn edges(&self) -> impl Iterator<Item = (Block, Block)> + '_ {
        self.rpo.iter().flat_map(move |&b| self.succs(b).iter().map(move |&s| (b, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::CmpOp;

    /// entry -> {then, else} -> join -> exit ; plus an unreachable block.
    fn diamond() -> (Function, Vec<Block>) {
        let mut b = FunctionBuilder::new("diamond", 1);
        let entry = b.create_block();
        let then_bb = b.create_block();
        let else_bb = b.create_block();
        let join = b.create_block();
        let dead = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        b.branch(c, then_bb, else_bb);
        b.switch_to_block(then_bb);
        b.jump(join);
        b.switch_to_block(else_bb);
        b.jump(join);
        b.switch_to_block(join);
        b.ret(None);
        b.switch_to_block(dead);
        b.ret(None);
        (b.finish(), vec![entry, then_bb, else_bb, join, dead])
    }

    #[test]
    fn preds_and_succs() {
        let (f, blocks) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        assert_eq!(cfg.succs(blocks[0]), &[blocks[1], blocks[2]]);
        assert_eq!(cfg.preds(blocks[3]), &[blocks[1], blocks[2]]);
        assert!(cfg.preds(blocks[0]).is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_skips_unreachable() {
        let (f, blocks) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], blocks[0]);
        assert_eq!(rpo.len(), 4);
        assert!(!rpo.contains(&blocks[4]));
        assert!(cfg.is_reachable(blocks[3]));
        assert!(!cfg.is_reachable(blocks[4]));
        // RPO property: every block appears after at least one predecessor
        // (except the entry and loop headers; there are no loops here).
        for (i, &b) in rpo.iter().enumerate().skip(1) {
            assert!(cfg.preds(b).iter().any(|p| rpo[..i].contains(p)));
        }
    }

    #[test]
    fn critical_edge_detection() {
        // entry branches to {a, join}; a jumps to join. The edge entry->join
        // is critical.
        let mut b = FunctionBuilder::new("crit", 1);
        let entry = b.create_block();
        let a = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.branch(x, a, join);
        b.switch_to_block(a);
        b.jump(join);
        b.switch_to_block(join);
        b.ret(None);
        let f = b.finish();
        let cfg = ControlFlowGraph::compute(&f);
        assert!(cfg.is_critical_edge(entry, join));
        assert!(!cfg.is_critical_edge(entry, a));
        assert!(!cfg.is_critical_edge(a, join));
    }

    #[test]
    fn edges_iterator_counts() {
        let (f, _) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        assert_eq!(cfg.edges().count(), 4);
    }

    #[test]
    fn loop_rpo_contains_all_blocks_once() {
        let mut b = FunctionBuilder::new("loop", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        b.jump(header);
        b.switch_to_block(header);
        b.branch(n, body, exit);
        b.switch_to_block(body);
        b.jump(header);
        b.switch_to_block(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = ControlFlowGraph::compute(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], entry);
        let mut sorted: Vec<_> = rpo.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }
}
