//! Control-flow graph: cached predecessor/successor lists and traversal
//! orders.

use crate::entity::{Block, EntitySet, SecondaryMap};
use crate::function::Function;

/// Cached predecessor and successor lists of a function's CFG, plus reverse
/// post-order.
#[derive(Clone, Debug)]
pub struct ControlFlowGraph {
    succs: SecondaryMap<Block, Vec<Block>>,
    preds: SecondaryMap<Block, Vec<Block>>,
    rpo: Vec<Block>,
    reachable: EntitySet<Block>,
}

impl ControlFlowGraph {
    /// Computes the CFG of `func`.
    pub fn compute(func: &Function) -> Self {
        let mut succs: SecondaryMap<Block, Vec<Block>> = SecondaryMap::new();
        let mut preds: SecondaryMap<Block, Vec<Block>> = SecondaryMap::new();
        succs.resize(func.num_blocks());
        preds.resize(func.num_blocks());
        for block in func.blocks() {
            let s = func.successors(block);
            for &succ in &s {
                preds[succ].push(block);
            }
            succs[block] = s;
        }

        // Post-order DFS from the entry block.
        let mut post = Vec::with_capacity(func.num_blocks());
        let mut reachable = EntitySet::with_capacity(func.num_blocks());
        if func.has_entry() {
            let entry = func.entry();
            // Iterative DFS with an explicit stack of (block, next-successor).
            let mut visited = EntitySet::with_capacity(func.num_blocks());
            let mut stack: Vec<(Block, usize)> = vec![(entry, 0)];
            visited.insert(entry);
            while let Some(&mut (block, ref mut next)) = stack.last_mut() {
                if *next < succs[block].len() {
                    let succ = succs[block][*next];
                    *next += 1;
                    if visited.insert(succ) {
                        stack.push((succ, 0));
                    }
                } else {
                    post.push(block);
                    stack.pop();
                }
            }
            reachable = visited;
        }
        let rpo: Vec<Block> = post.into_iter().rev().collect();

        Self { succs, preds, rpo, reachable }
    }

    /// Successors of `block`.
    pub fn succs(&self, block: Block) -> &[Block] {
        &self.succs[block]
    }

    /// Predecessors of `block`.
    pub fn preds(&self, block: Block) -> &[Block] {
        &self.preds[block]
    }

    /// Blocks reachable from the entry, in reverse post-order.
    pub fn reverse_post_order(&self) -> &[Block] {
        &self.rpo
    }

    /// Blocks reachable from the entry, in post-order.
    pub fn post_order(&self) -> impl Iterator<Item = Block> + '_ {
        self.rpo.iter().rev().copied()
    }

    /// Returns `true` if `block` is reachable from the entry block.
    pub fn is_reachable(&self, block: Block) -> bool {
        self.reachable.contains(block)
    }

    /// Number of reachable blocks.
    pub fn num_reachable(&self) -> usize {
        self.rpo.len()
    }

    /// Returns `true` if the edge `pred -> succ` is critical, i.e. `pred` has
    /// several successors and `succ` has several predecessors.
    pub fn is_critical_edge(&self, pred: Block, succ: Block) -> bool {
        self.succs(pred).len() > 1 && self.preds(succ).len() > 1
    }

    /// Iterates over all edges `(pred, succ)` of reachable blocks.
    pub fn edges(&self) -> impl Iterator<Item = (Block, Block)> + '_ {
        self.rpo.iter().flat_map(move |&b| self.succs(b).iter().map(move |&s| (b, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::CmpOp;

    /// entry -> {then, else} -> join -> exit ; plus an unreachable block.
    fn diamond() -> (Function, Vec<Block>) {
        let mut b = FunctionBuilder::new("diamond", 1);
        let entry = b.create_block();
        let then_bb = b.create_block();
        let else_bb = b.create_block();
        let join = b.create_block();
        let dead = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        b.branch(c, then_bb, else_bb);
        b.switch_to_block(then_bb);
        b.jump(join);
        b.switch_to_block(else_bb);
        b.jump(join);
        b.switch_to_block(join);
        b.ret(None);
        b.switch_to_block(dead);
        b.ret(None);
        (b.finish(), vec![entry, then_bb, else_bb, join, dead])
    }

    #[test]
    fn preds_and_succs() {
        let (f, blocks) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        assert_eq!(cfg.succs(blocks[0]), &[blocks[1], blocks[2]]);
        assert_eq!(cfg.preds(blocks[3]), &[blocks[1], blocks[2]]);
        assert!(cfg.preds(blocks[0]).is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_skips_unreachable() {
        let (f, blocks) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], blocks[0]);
        assert_eq!(rpo.len(), 4);
        assert!(!rpo.contains(&blocks[4]));
        assert!(cfg.is_reachable(blocks[3]));
        assert!(!cfg.is_reachable(blocks[4]));
        // RPO property: every block appears after at least one predecessor
        // (except the entry and loop headers; there are no loops here).
        for (i, &b) in rpo.iter().enumerate().skip(1) {
            assert!(cfg.preds(b).iter().any(|p| rpo[..i].contains(p)));
        }
    }

    #[test]
    fn critical_edge_detection() {
        // entry branches to {a, join}; a jumps to join. The edge entry->join
        // is critical.
        let mut b = FunctionBuilder::new("crit", 1);
        let entry = b.create_block();
        let a = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.branch(x, a, join);
        b.switch_to_block(a);
        b.jump(join);
        b.switch_to_block(join);
        b.ret(None);
        let f = b.finish();
        let cfg = ControlFlowGraph::compute(&f);
        assert!(cfg.is_critical_edge(entry, join));
        assert!(!cfg.is_critical_edge(entry, a));
        assert!(!cfg.is_critical_edge(a, join));
    }

    #[test]
    fn edges_iterator_counts() {
        let (f, _) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        assert_eq!(cfg.edges().count(), 4);
    }

    #[test]
    fn loop_rpo_contains_all_blocks_once() {
        let mut b = FunctionBuilder::new("loop", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        b.jump(header);
        b.switch_to_block(header);
        b.branch(n, body, exit);
        b.switch_to_block(body);
        b.jump(header);
        b.switch_to_block(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = ControlFlowGraph::compute(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], entry);
        let mut sorted: Vec<_> = rpo.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }
}
