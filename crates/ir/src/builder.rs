//! A convenience builder for constructing functions instruction by
//! instruction.
//!
//! The builder keeps track of a *current block* and offers one method per
//! opcode, returning the defined [`Value`] where applicable.

use crate::entity::{Block, Inst, Value};
use crate::function::Function;
use crate::instruction::{BinaryOp, CmpOp, CopyPair, InstData, PhiArg, UnaryOp};

/// Builder over a borrowed [`Function`].
///
/// # Examples
///
/// ```
/// use ossa_ir::builder::FunctionBuilder;
///
/// let mut builder = FunctionBuilder::new("double", 1);
/// let entry = builder.create_block();
/// builder.switch_to_block(entry);
/// builder.set_entry(entry);
/// let x = builder.param(0);
/// let two = builder.iconst(2);
/// let doubled = builder.binary(ossa_ir::BinaryOp::Mul, x, two);
/// builder.ret(Some(doubled));
/// let func = builder.finish();
/// assert_eq!(func.num_blocks(), 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: Option<Block>,
}

impl FunctionBuilder {
    /// Creates a builder for a fresh function.
    pub fn new(name: impl Into<String>, num_params: u32) -> Self {
        Self { func: Function::new(name, num_params), current: None }
    }

    /// Wraps an existing function for further editing.
    pub fn from_function(func: Function) -> Self {
        Self { func, current: None }
    }

    /// Recycles `func`'s storage (blocks, instructions, values, operand
    /// arenas) for a fresh build: the function is [`Function::reset`] and the
    /// builder starts from the empty state, reusing every heap allocation.
    pub fn reuse(mut func: Function, name: impl AsRef<str>, num_params: u32) -> Self {
        func.reset(name, num_params);
        Self { func, current: None }
    }

    /// Consumes the builder and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Read-only access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Mutable access to the function under construction.
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Creates a new block.
    pub fn create_block(&mut self) -> Block {
        self.func.add_block()
    }

    /// Marks `block` as the function entry.
    pub fn set_entry(&mut self, block: Block) {
        self.func.set_entry(block);
    }

    /// Makes `block` the insertion point for subsequent instructions.
    pub fn switch_to_block(&mut self, block: Block) {
        self.current = Some(block);
    }

    /// The current insertion block.
    ///
    /// # Panics
    /// Panics if no block has been selected with [`FunctionBuilder::switch_to_block`].
    pub fn current_block(&self) -> Block {
        self.current.expect("no current block selected")
    }

    fn emit(&mut self, data: InstData) -> Inst {
        let block = self.current_block();
        self.func.append_inst(block, data)
    }

    /// Creates a fresh value without defining it (useful for pre-SSA code).
    pub fn declare_value(&mut self) -> Value {
        self.func.new_value()
    }

    // ----- value-producing instructions -----------------------------------

    /// Emits `dst = param index` and returns `dst`.
    pub fn param(&mut self, index: u32) -> Value {
        let dst = self.func.new_value();
        self.emit(InstData::Param { dst, index });
        dst
    }

    /// Emits `dst = imm` and returns `dst`.
    pub fn iconst(&mut self, imm: i64) -> Value {
        let dst = self.func.new_value();
        self.emit(InstData::Const { dst, imm });
        dst
    }

    /// Emits a unary operation and returns its result.
    pub fn unary(&mut self, op: UnaryOp, arg: Value) -> Value {
        let dst = self.func.new_value();
        self.emit(InstData::Unary { op, dst, arg });
        dst
    }

    /// Emits a binary operation and returns its result.
    pub fn binary(&mut self, op: BinaryOp, lhs: Value, rhs: Value) -> Value {
        let dst = self.func.new_value();
        self.emit(InstData::Binary { op, dst, args: [lhs, rhs] });
        dst
    }

    /// Emits a comparison and returns its 0/1 result.
    pub fn cmp(&mut self, op: CmpOp, lhs: Value, rhs: Value) -> Value {
        let dst = self.func.new_value();
        self.emit(InstData::Cmp { op, dst, args: [lhs, rhs] });
        dst
    }

    /// Emits `dst = src` with a fresh destination and returns it.
    pub fn copy(&mut self, src: Value) -> Value {
        let dst = self.func.new_value();
        self.emit(InstData::Copy { dst, src });
        dst
    }

    /// Emits a copy into an existing destination value (pre-SSA style).
    pub fn copy_to(&mut self, dst: Value, src: Value) -> Inst {
        self.emit(InstData::Copy { dst, src })
    }

    /// Emits a parallel copy.
    pub fn parallel_copy(&mut self, copies: Vec<CopyPair>) -> Inst {
        let copies = self.func.make_copy_list(&copies);
        self.emit(InstData::ParallelCopy { copies })
    }

    /// Emits a binary operation writing into an existing destination
    /// (pre-SSA style).
    pub fn binary_to(&mut self, op: BinaryOp, dst: Value, lhs: Value, rhs: Value) -> Inst {
        self.emit(InstData::Binary { op, dst, args: [lhs, rhs] })
    }

    /// Emits a constant into an existing destination (pre-SSA style).
    pub fn iconst_to(&mut self, dst: Value, imm: i64) -> Inst {
        self.emit(InstData::Const { dst, imm })
    }

    /// Emits a φ-function with the given `(predecessor, value)` arguments and
    /// returns its result.
    pub fn phi(&mut self, args: Vec<(Block, Value)>) -> Value {
        let dst = self.func.new_value();
        self.phi_to(dst, args);
        dst
    }

    /// Emits a φ-function defining an existing value.
    pub fn phi_to(&mut self, dst: Value, args: Vec<(Block, Value)>) -> Inst {
        let args: Vec<PhiArg> =
            args.into_iter().map(|(block, value)| PhiArg { block, value }).collect();
        let args = self.func.make_phi_list(&args);
        let block = self.current_block();
        let pos = self.func.first_non_phi(block);
        self.func.insert_inst(block, pos, InstData::Phi { dst, args })
    }

    /// Emits an opaque call and returns its result value.
    pub fn call(&mut self, callee: u32, args: Vec<Value>) -> Value {
        let dst = self.func.new_value();
        let args = self.func.make_value_list(&args);
        self.emit(InstData::Call { dst: Some(dst), callee, args });
        dst
    }

    /// Emits a call whose result is discarded.
    pub fn call_void(&mut self, callee: u32, args: Vec<Value>) -> Inst {
        let args = self.func.make_value_list(&args);
        self.emit(InstData::Call { dst: None, callee, args })
    }

    /// Emits `dst = load addr` and returns `dst`.
    pub fn load(&mut self, addr: Value) -> Value {
        let dst = self.func.new_value();
        self.emit(InstData::Load { dst, addr });
        dst
    }

    /// Emits `store addr, value`.
    pub fn store(&mut self, addr: Value, value: Value) -> Inst {
        self.emit(InstData::Store { addr, value })
    }

    // ----- terminators ----------------------------------------------------

    /// Emits an unconditional jump.
    pub fn jump(&mut self, dest: Block) -> Inst {
        self.emit(InstData::Jump { dest })
    }

    /// Emits a conditional branch.
    pub fn branch(&mut self, cond: Value, then_dest: Block, else_dest: Block) -> Inst {
        self.emit(InstData::Branch { cond, then_dest, else_dest })
    }

    /// Emits a branch-with-decrement. Returns the decremented counter value
    /// defined by the terminator.
    pub fn br_dec(&mut self, counter: Value, loop_dest: Block, exit_dest: Block) -> Value {
        let dec = self.func.new_value();
        self.emit(InstData::BrDec { counter, dec, loop_dest, exit_dest });
        dec
    }

    /// Emits a return.
    pub fn ret(&mut self, value: Option<Value>) -> Inst {
        self.emit(InstData::Return { value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_straightline_function() {
        let mut b = FunctionBuilder::new("f", 2);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let y = b.param(1);
        let sum = b.binary(BinaryOp::Add, x, y);
        let doubled = b.binary(BinaryOp::Add, sum, sum);
        b.ret(Some(doubled));
        let f = b.finish();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.block_len(entry), 5);
        assert_eq!(f.num_values(), 4);
        assert!(matches!(f.inst(f.terminator(entry).unwrap()), InstData::Return { .. }));
    }

    #[test]
    fn builder_constructs_diamond_with_phi() {
        let mut b = FunctionBuilder::new("diamond", 1);
        let entry = b.create_block();
        let then_bb = b.create_block();
        let else_bb = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);

        b.switch_to_block(entry);
        let x = b.param(0);
        let zero = b.iconst(0);
        let cond = b.cmp(CmpOp::Gt, x, zero);
        b.branch(cond, then_bb, else_bb);

        b.switch_to_block(then_bb);
        let one = b.iconst(1);
        b.jump(join);

        b.switch_to_block(else_bb);
        let minus = b.iconst(-1);
        b.jump(join);

        b.switch_to_block(join);
        let merged = b.phi(vec![(then_bb, one), (else_bb, minus)]);
        b.ret(Some(merged));

        let f = b.finish();
        assert_eq!(f.count_phis(), 1);
        assert_eq!(f.successors(entry), vec![then_bb, else_bb]);
        assert_eq!(f.phi_inputs_from(join, then_bb)[0].1, one);
    }

    #[test]
    fn phi_emitted_in_leading_group() {
        let mut b = FunctionBuilder::new("phis", 0);
        let entry = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let c = b.iconst(3);
        b.jump(join);
        b.switch_to_block(join);
        let t = b.iconst(7); // non-phi emitted first
        let p = b.phi(vec![(entry, c)]);
        b.ret(Some(t));
        let f = b.finish();
        // The phi must still be in the leading phi group.
        assert_eq!(f.first_non_phi(join), 1);
        let phis = f.phis(join);
        assert_eq!(phis.len(), 1);
        assert_eq!(f.inst(phis[0]).defs(f.pools()), vec![p]);
    }

    #[test]
    fn br_dec_defines_counter() {
        let mut b = FunctionBuilder::new("loop", 1);
        let entry = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        b.jump(body);
        b.switch_to_block(body);
        let dec = b.br_dec(n, body, exit);
        b.switch_to_block(exit);
        b.ret(None);
        let f = b.finish();
        let term = f.terminator(body).unwrap();
        assert_eq!(f.inst(term).defs(f.pools()), vec![dec]);
        assert_eq!(f.inst(term).uses(f.pools()), vec![n]);
    }
}
