//! Instruction set of the IR.
//!
//! The instruction set is deliberately small but covers everything the
//! out-of-SSA translation of Boissinot et al. has to deal with:
//!
//! * ordinary value-producing instructions (constants, unary/binary ops,
//!   loads, calls),
//! * [`InstData::Copy`] and [`InstData::ParallelCopy`] (parallel copies are
//!   the semantics of φ-functions and are what the translation inserts),
//! * [`InstData::Phi`] functions,
//! * terminators, including [`InstData::Branch`] which *uses* a value after
//!   the copy-insertion point (the Figure 1 subtlety of the paper) and
//!   [`InstData::BrDec`] which *defines* a value in the terminator itself
//!   (the DSP hardware-loop branch of Figure 2).
//!
//! Variable-length payloads (parallel-copy moves, φ arguments, call
//! arguments) are stored as [`crate::pool::PoolList`] handles into the
//! function-owned arenas ([`crate::pool::IrPools`]), so constructing or
//! editing an instruction performs no per-instruction heap allocation.
//! Accessors that resolve those payloads take the pools as an argument; the
//! [`crate::Function`] wrappers pass them automatically.

use crate::entity::{Block, Value};
use crate::pool::{IrPools, PoolList};

/// The model's calling convention, shared by the workload generator (which
/// pins call operands) and the out-of-SSA isolation phase (which splits the
/// pinned live ranges per call site). Keeping both sides on these constants
/// is what guarantees every pin the generator creates is isolated somewhere.
pub mod callconv {
    /// Register holding a call's return value.
    pub const RETURN_REG: u32 = 0;
    /// Number of leading call arguments passed in registers.
    pub const NUM_ARG_REGS: usize = 2;

    /// Register holding call argument `index`, when `index < NUM_ARG_REGS`.
    pub const fn arg_reg(index: usize) -> u32 {
        1 + index as u32
    }
}

/// Binary integer operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (defined as 0 when the divisor is 0, so the interpreter is total).
    Div,
    /// Remainder (defined as 0 when the divisor is 0).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (modulo 64).
    Shl,
    /// Arithmetic right shift (modulo 64).
    Shr,
}

impl BinaryOp {
    /// All binary operations, for use by generators and exhaustive tests.
    pub const ALL: [BinaryOp; 10] = [
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Rem,
        BinaryOp::And,
        BinaryOp::Or,
        BinaryOp::Xor,
        BinaryOp::Shl,
        BinaryOp::Shr,
    ];

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinaryOp::Add => "add",
            BinaryOp::Sub => "sub",
            BinaryOp::Mul => "mul",
            BinaryOp::Div => "div",
            BinaryOp::Rem => "rem",
            BinaryOp::And => "and",
            BinaryOp::Or => "or",
            BinaryOp::Xor => "xor",
            BinaryOp::Shl => "shl",
            BinaryOp::Shr => "shr",
        }
    }

    /// Evaluates the operation on two `i64` operands with total semantics.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinaryOp::Add => a.wrapping_add(b),
            BinaryOp::Sub => a.wrapping_sub(b),
            BinaryOp::Mul => a.wrapping_mul(b),
            BinaryOp::Div => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a / b
                }
            }
            BinaryOp::Rem => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a % b
                }
            }
            BinaryOp::And => a & b,
            BinaryOp::Or => a | b,
            BinaryOp::Xor => a ^ b,
            BinaryOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinaryOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// Unary integer operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
}

impl UnaryOp {
    /// All unary operations.
    pub const ALL: [UnaryOp; 2] = [UnaryOp::Neg, UnaryOp::Not];

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Not => "not",
        }
    }

    /// Evaluates the operation.
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnaryOp::Neg => a.wrapping_neg(),
            UnaryOp::Not => !a,
        }
    }
}

/// Integer comparison predicates.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-than-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-than-or-equal.
    Ge,
}

impl CmpOp {
    /// All comparison predicates.
    pub const ALL: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Evaluates the predicate, returning 1 or 0.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let result = match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        };
        result as i64
    }
}

/// One move of a parallel copy: `dst` receives the old value of `src`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CopyPair {
    /// The destination value (written).
    pub dst: Value,
    /// The source value (read before any write of the parallel copy).
    pub src: Value,
}

/// One incoming edge of a φ-function: when control arrives from `block`, the
/// φ result takes the value of `value`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PhiArg {
    /// Predecessor block the value flows from.
    pub block: Block,
    /// Value selected when control comes from `block`.
    pub value: Value,
}

/// Handle to a call-argument list stored in the function's value pool.
pub type ValueList = PoolList<Value>;
/// Handle to a φ-argument list stored in the function's φ pool.
pub type PhiList = PoolList<PhiArg>;
/// Handle to a parallel-copy move list stored in the function's copy pool.
pub type CopyList = PoolList<CopyPair>;

/// Instruction payload.
///
/// Handle-bearing variants ([`InstData::ParallelCopy`], [`InstData::Phi`],
/// [`InstData::Call`]) resolve their lists through the owning function's
/// [`IrPools`]; `Clone` copies the handle, not the elements, so cloning an
/// instruction is only meaningful together with (a clone of) its pools. There
/// is deliberately no derived `PartialEq`: handle equality is identity, not
/// content — [`crate::Function`] compares instructions by resolved content.
#[derive(Clone, Debug)]
pub enum InstData {
    /// `dst = index-th function parameter`. Only allowed in the entry block.
    Param {
        /// Defined value.
        dst: Value,
        /// Parameter position.
        index: u32,
    },
    /// `dst = imm`.
    Const {
        /// Defined value.
        dst: Value,
        /// Constant payload.
        imm: i64,
    },
    /// `dst = op arg`.
    Unary {
        /// Operation.
        op: UnaryOp,
        /// Defined value.
        dst: Value,
        /// Operand.
        arg: Value,
    },
    /// `dst = lhs op rhs`.
    Binary {
        /// Operation.
        op: BinaryOp,
        /// Defined value.
        dst: Value,
        /// Operands.
        args: [Value; 2],
    },
    /// `dst = lhs cmp rhs` producing 0 or 1.
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Defined value.
        dst: Value,
        /// Operands.
        args: [Value; 2],
    },
    /// `dst = src` — a sequential copy.
    Copy {
        /// Defined value.
        dst: Value,
        /// Copied value.
        src: Value,
    },
    /// A parallel copy: all sources are read before any destination is
    /// written. This is the copy form inserted by the out-of-SSA translation
    /// and later sequentialized.
    ParallelCopy {
        /// The moves of the parallel copy (handle into the copy pool).
        copies: CopyList,
    },
    /// A φ-function. Must appear in the leading φ group of its block.
    Phi {
        /// Defined value.
        dst: Value,
        /// One argument per predecessor block (handle into the φ pool).
        args: PhiList,
    },
    /// `dst = call fn_id(args...)` — an opaque call, used to model
    /// calling-convention renaming constraints.
    Call {
        /// Returned value, if any.
        dst: Option<Value>,
        /// Opaque callee identifier.
        callee: u32,
        /// Call arguments (handle into the value pool).
        args: ValueList,
    },
    /// `dst = memory[addr]` on an abstract, function-local memory.
    Load {
        /// Defined value.
        dst: Value,
        /// Address operand.
        addr: Value,
    },
    /// `memory[addr] = value`.
    Store {
        /// Address operand.
        addr: Value,
        /// Stored value.
        value: Value,
    },
    /// Unconditional jump.
    Jump {
        /// Target block.
        dest: Block,
    },
    /// Conditional branch: goes to `then_dest` when `cond != 0`. The branch
    /// *uses* `cond`, which matters for the placement of φ copies (Figure 1
    /// of the paper).
    Branch {
        /// Condition value (used by the terminator).
        cond: Value,
        /// Target when the condition is non-zero.
        then_dest: Block,
        /// Target when the condition is zero.
        else_dest: Block,
    },
    /// Branch-with-decrement (hardware-loop style, Figure 2 of the paper):
    /// `dec = counter - 1; if dec != 0 goto loop_dest else goto exit_dest`.
    /// The terminator both uses `counter` and defines `dec`, so no copy can
    /// be inserted between the definition of `dec` and the end of the block.
    BrDec {
        /// Counter operand (used).
        counter: Value,
        /// Decremented counter (defined by the terminator itself).
        dec: Value,
        /// Target when the decremented counter is non-zero.
        loop_dest: Block,
        /// Target when the decremented counter reaches zero.
        exit_dest: Block,
    },
    /// Function return.
    Return {
        /// Returned value, if any.
        value: Option<Value>,
    },
}

/// Non-allocating iterator over a terminator's successor blocks (at most
/// two, deduplicated like the `Vec`-returning convenience).
#[derive(Copy, Clone, Debug)]
pub struct Successors {
    targets: [Block; 2],
    len: u8,
    next: u8,
}

impl Successors {
    /// The empty successor iterator (non-terminators, terminator-less
    /// blocks).
    pub(crate) fn none() -> Self {
        Self { targets: [Block::from_index(0); 2], len: 0, next: 0 }
    }

    fn one(a: Block) -> Self {
        Self { targets: [a, a], len: 1, next: 0 }
    }

    fn pair(a: Block, b: Block) -> Self {
        if a == b {
            Self::one(a)
        } else {
            Self { targets: [a, b], len: 2, next: 0 }
        }
    }
}

impl Iterator for Successors {
    type Item = Block;

    #[inline]
    fn next(&mut self) -> Option<Block> {
        if self.next < self.len {
            let block = self.targets[self.next as usize];
            self.next += 1;
            Some(block)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.len - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Successors {}

impl InstData {
    /// Returns `true` if this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstData::Jump { .. }
                | InstData::Branch { .. }
                | InstData::BrDec { .. }
                | InstData::Return { .. }
        )
    }

    /// Returns `true` if this instruction is a φ-function.
    pub fn is_phi(&self) -> bool {
        matches!(self, InstData::Phi { .. })
    }

    /// Returns `true` if this instruction is a sequential or parallel copy.
    pub fn is_copy_like(&self) -> bool {
        matches!(self, InstData::Copy { .. } | InstData::ParallelCopy { .. })
    }

    /// Returns `true` if the instruction may observe or mutate memory or have
    /// other side effects, and therefore must not be removed by dead-code
    /// elimination.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, InstData::Call { .. } | InstData::Store { .. } | InstData::Load { .. })
            || self.is_terminator()
    }

    /// Appends the values defined by this instruction to `out`.
    pub fn collect_defs(&self, pools: &IrPools, out: &mut Vec<Value>) {
        match self {
            InstData::Param { dst, .. }
            | InstData::Const { dst, .. }
            | InstData::Unary { dst, .. }
            | InstData::Binary { dst, .. }
            | InstData::Cmp { dst, .. }
            | InstData::Copy { dst, .. }
            | InstData::Phi { dst, .. }
            | InstData::Load { dst, .. } => out.push(*dst),
            InstData::ParallelCopy { copies } => {
                out.extend(pools.copies.get(*copies).iter().map(|c| c.dst))
            }
            InstData::Call { dst, .. } => out.extend(dst.iter().copied()),
            InstData::BrDec { dec, .. } => out.push(*dec),
            InstData::Store { .. }
            | InstData::Jump { .. }
            | InstData::Branch { .. }
            | InstData::Return { .. } => {}
        }
    }

    /// Returns the values defined by this instruction. Allocates; meant for
    /// tests and diagnostics — hot paths use [`InstData::collect_defs`].
    pub fn defs(&self, pools: &IrPools) -> Vec<Value> {
        let mut out = Vec::new();
        self.collect_defs(pools, &mut out);
        out
    }

    /// Appends the values used by this instruction to `out`. For φ-functions
    /// this returns every incoming argument; callers that care about the
    /// per-edge semantics must use [`InstData::phi_args`] instead.
    pub fn collect_uses(&self, pools: &IrPools, out: &mut Vec<Value>) {
        match self {
            InstData::Param { .. } | InstData::Const { .. } | InstData::Jump { .. } => {}
            InstData::Unary { arg, .. } => out.push(*arg),
            InstData::Binary { args, .. } | InstData::Cmp { args, .. } => out.extend(args),
            InstData::Copy { src, .. } => out.push(*src),
            InstData::ParallelCopy { copies } => {
                out.extend(pools.copies.get(*copies).iter().map(|c| c.src))
            }
            InstData::Phi { args, .. } => out.extend(pools.phis.get(*args).iter().map(|a| a.value)),
            InstData::Call { args, .. } => out.extend(pools.values.get(*args)),
            InstData::Load { addr, .. } => out.push(*addr),
            InstData::Store { addr, value } => out.extend([*addr, *value]),
            InstData::Branch { cond, .. } => out.push(*cond),
            InstData::BrDec { counter, .. } => out.push(*counter),
            InstData::Return { value } => out.extend(value.iter().copied()),
        }
    }

    /// Returns the values used by this instruction. Allocates; meant for
    /// tests and diagnostics — hot paths use [`InstData::collect_uses`].
    pub fn uses(&self, pools: &IrPools) -> Vec<Value> {
        let mut out = Vec::new();
        self.collect_uses(pools, &mut out);
        out
    }

    /// Returns the φ arguments if this is a φ-function.
    pub fn phi_args<'p>(&self, pools: &'p IrPools) -> Option<&'p [PhiArg]> {
        match self {
            InstData::Phi { args, .. } => Some(pools.phis.get(*args)),
            _ => None,
        }
    }

    /// Returns the parallel-copy moves if this is a parallel copy.
    pub fn copy_pairs<'p>(&self, pools: &'p IrPools) -> Option<&'p [CopyPair]> {
        match self {
            InstData::ParallelCopy { copies } => Some(pools.copies.get(*copies)),
            _ => None,
        }
    }

    /// Iterates over the successor blocks if this is a terminator (empty for
    /// non-terminators). Non-allocating; the hot-path form of
    /// [`InstData::successors`].
    #[inline]
    pub fn successors_iter(&self) -> Successors {
        match self {
            InstData::Jump { dest } => Successors::one(*dest),
            InstData::Branch { then_dest, else_dest, .. } => {
                Successors::pair(*then_dest, *else_dest)
            }
            InstData::BrDec { loop_dest, exit_dest, .. } => {
                Successors::pair(*loop_dest, *exit_dest)
            }
            _ => Successors::none(),
        }
    }

    /// Returns the successor blocks if this is a terminator. Allocates; meant
    /// for tests — hot paths use [`InstData::successors_iter`].
    pub fn successors(&self) -> Vec<Block> {
        self.successors_iter().collect()
    }

    /// Rewrites every successor block equal to `from` into `to`. Returns the
    /// number of rewritten edges.
    pub fn replace_successor(&mut self, from: Block, to: Block) -> usize {
        let mut count = 0;
        let mut replace = |b: &mut Block| {
            if *b == from {
                *b = to;
                count += 1;
            }
        };
        match self {
            InstData::Jump { dest } => replace(dest),
            InstData::Branch { then_dest, else_dest, .. } => {
                replace(then_dest);
                replace(else_dest);
            }
            InstData::BrDec { loop_dest, exit_dest, .. } => {
                replace(loop_dest);
                replace(exit_dest);
            }
            _ => {}
        }
        count
    }

    /// Applies `rewrite` to every used value (not to definitions).
    pub fn map_uses(&mut self, pools: &mut IrPools, mut rewrite: impl FnMut(Value) -> Value) {
        match self {
            InstData::Param { .. } | InstData::Const { .. } | InstData::Jump { .. } => {}
            InstData::Unary { arg, .. } => *arg = rewrite(*arg),
            InstData::Binary { args, .. } | InstData::Cmp { args, .. } => {
                args[0] = rewrite(args[0]);
                args[1] = rewrite(args[1]);
            }
            InstData::Copy { src, .. } => *src = rewrite(*src),
            InstData::ParallelCopy { copies } => {
                for copy in pools.copies.get_mut(*copies) {
                    copy.src = rewrite(copy.src);
                }
            }
            InstData::Phi { args, .. } => {
                for arg in pools.phis.get_mut(*args) {
                    arg.value = rewrite(arg.value);
                }
            }
            InstData::Call { args, .. } => {
                for arg in pools.values.get_mut(*args) {
                    *arg = rewrite(*arg);
                }
            }
            InstData::Load { addr, .. } => *addr = rewrite(*addr),
            InstData::Store { addr, value } => {
                *addr = rewrite(*addr);
                *value = rewrite(*value);
            }
            InstData::Branch { cond, .. } => *cond = rewrite(*cond),
            InstData::BrDec { counter, .. } => *counter = rewrite(*counter),
            InstData::Return { value } => {
                if let Some(v) = value {
                    *v = rewrite(*v);
                }
            }
        }
    }

    /// Applies `rewrite` to every defined value.
    pub fn map_defs(&mut self, pools: &mut IrPools, mut rewrite: impl FnMut(Value) -> Value) {
        match self {
            InstData::Param { dst, .. }
            | InstData::Const { dst, .. }
            | InstData::Unary { dst, .. }
            | InstData::Binary { dst, .. }
            | InstData::Cmp { dst, .. }
            | InstData::Copy { dst, .. }
            | InstData::Phi { dst, .. }
            | InstData::Load { dst, .. } => *dst = rewrite(*dst),
            InstData::ParallelCopy { copies } => {
                for copy in pools.copies.get_mut(*copies) {
                    copy.dst = rewrite(copy.dst);
                }
            }
            InstData::Call { dst, .. } => {
                if let Some(d) = dst {
                    *d = rewrite(*d);
                }
            }
            InstData::BrDec { dec, .. } => *dec = rewrite(*dec),
            InstData::Store { .. }
            | InstData::Jump { .. }
            | InstData::Branch { .. }
            | InstData::Return { .. } => {}
        }
    }

    /// Content equality of two instructions, resolving list handles through
    /// each side's pools. This is the equality [`crate::Function`]'s
    /// `PartialEq` is built on: two semantically identical functions compare
    /// equal even when their arenas are laid out differently.
    pub fn content_eq(&self, pools: &IrPools, other: &InstData, other_pools: &IrPools) -> bool {
        use InstData::*;
        match (self, other) {
            (Param { dst: a, index: i }, Param { dst: b, index: j }) => a == b && i == j,
            (Const { dst: a, imm: i }, Const { dst: b, imm: j }) => a == b && i == j,
            (Unary { op: o1, dst: a, arg: x }, Unary { op: o2, dst: b, arg: y }) => {
                o1 == o2 && a == b && x == y
            }
            (Binary { op: o1, dst: a, args: x }, Binary { op: o2, dst: b, args: y }) => {
                o1 == o2 && a == b && x == y
            }
            (Cmp { op: o1, dst: a, args: x }, Cmp { op: o2, dst: b, args: y }) => {
                o1 == o2 && a == b && x == y
            }
            (Copy { dst: a, src: x }, Copy { dst: b, src: y }) => a == b && x == y,
            (ParallelCopy { copies: a }, ParallelCopy { copies: b }) => {
                pools.copies.get(*a) == other_pools.copies.get(*b)
            }
            (Phi { dst: a, args: x }, Phi { dst: b, args: y }) => {
                a == b && pools.phis.get(*x) == other_pools.phis.get(*y)
            }
            (Call { dst: a, callee: f, args: x }, Call { dst: b, callee: g, args: y }) => {
                a == b && f == g && pools.values.get(*x) == other_pools.values.get(*y)
            }
            (Load { dst: a, addr: x }, Load { dst: b, addr: y }) => a == b && x == y,
            (Store { addr: a, value: x }, Store { addr: b, value: y }) => a == b && x == y,
            (Jump { dest: a }, Jump { dest: b }) => a == b,
            (
                Branch { cond: c1, then_dest: t1, else_dest: e1 },
                Branch { cond: c2, then_dest: t2, else_dest: e2 },
            ) => c1 == c2 && t1 == t2 && e1 == e2,
            (
                BrDec { counter: c1, dec: d1, loop_dest: l1, exit_dest: e1 },
                BrDec { counter: c2, dec: d2, loop_dest: l2, exit_dest: e2 },
            ) => c1 == c2 && d1 == d2 && l1 == l2 && e1 == e2,
            (Return { value: a }, Return { value: b }) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityRef;

    fn v(i: usize) -> Value {
        Value::new(i)
    }
    fn b(i: usize) -> Block {
        Block::new(i)
    }

    #[test]
    fn binary_op_eval_total() {
        assert_eq!(BinaryOp::Add.eval(2, 3), 5);
        assert_eq!(BinaryOp::Sub.eval(2, 3), -1);
        assert_eq!(BinaryOp::Div.eval(7, 0), 0);
        assert_eq!(BinaryOp::Div.eval(i64::MIN, -1), 0);
        assert_eq!(BinaryOp::Rem.eval(7, 0), 0);
        assert_eq!(BinaryOp::Shl.eval(1, 65), 2);
        assert_eq!(BinaryOp::Mul.eval(i64::MAX, 2), i64::MAX.wrapping_mul(2));
    }

    #[test]
    fn cmp_op_eval() {
        assert_eq!(CmpOp::Eq.eval(3, 3), 1);
        assert_eq!(CmpOp::Ne.eval(3, 3), 0);
        assert_eq!(CmpOp::Lt.eval(-1, 0), 1);
        assert_eq!(CmpOp::Ge.eval(-1, 0), 0);
    }

    #[test]
    fn unary_op_eval() {
        assert_eq!(UnaryOp::Neg.eval(5), -5);
        assert_eq!(UnaryOp::Not.eval(0), -1);
    }

    #[test]
    fn defs_and_uses_of_basic_instructions() {
        let pools = IrPools::new();
        let inst = InstData::Binary { op: BinaryOp::Add, dst: v(3), args: [v(1), v(2)] };
        assert_eq!(inst.defs(&pools), vec![v(3)]);
        assert_eq!(inst.uses(&pools), vec![v(1), v(2)]);
        assert!(!inst.is_terminator());
        assert!(!inst.is_phi());
    }

    #[test]
    fn defs_and_uses_of_parallel_copy() {
        let mut pools = IrPools::new();
        let copies = pools
            .copies
            .from_slice(&[CopyPair { dst: v(1), src: v(2) }, CopyPair { dst: v(3), src: v(4) }]);
        let inst = InstData::ParallelCopy { copies };
        assert_eq!(inst.defs(&pools), vec![v(1), v(3)]);
        assert_eq!(inst.uses(&pools), vec![v(2), v(4)]);
        assert!(inst.is_copy_like());
        assert_eq!(inst.copy_pairs(&pools).unwrap().len(), 2);
    }

    #[test]
    fn brdec_uses_and_defines() {
        let pools = IrPools::new();
        let inst = InstData::BrDec { counter: v(0), dec: v(1), loop_dest: b(1), exit_dest: b(2) };
        assert_eq!(inst.defs(&pools), vec![v(1)]);
        assert_eq!(inst.uses(&pools), vec![v(0)]);
        assert!(inst.is_terminator());
        assert_eq!(inst.successors(), vec![b(1), b(2)]);
    }

    #[test]
    fn branch_successors_deduplicated() {
        let inst = InstData::Branch { cond: v(0), then_dest: b(3), else_dest: b(3) };
        assert_eq!(inst.successors(), vec![b(3)]);
        assert_eq!(inst.successors_iter().len(), 1);
    }

    #[test]
    fn replace_successor_rewrites_edges() {
        let mut inst = InstData::Branch { cond: v(0), then_dest: b(1), else_dest: b(2) };
        assert_eq!(inst.replace_successor(b(2), b(5)), 1);
        assert_eq!(inst.successors(), vec![b(1), b(5)]);
        assert_eq!(inst.replace_successor(b(9), b(5)), 0);
    }

    #[test]
    fn map_uses_and_defs_rewrite_values() {
        let mut pools = IrPools::new();
        let args = pools.phis.from_slice(&[
            PhiArg { block: b(1), value: v(1) },
            PhiArg { block: b(2), value: v(2) },
        ]);
        let mut inst = InstData::Phi { dst: v(0), args };
        inst.map_uses(&mut pools, |val| v(val.index() + 10));
        inst.map_defs(&mut pools, |_| v(99));
        assert_eq!(inst.defs(&pools), vec![v(99)]);
        assert_eq!(inst.uses(&pools), vec![v(11), v(12)]);
    }

    #[test]
    fn phi_args_accessor() {
        let mut pools = IrPools::new();
        let args = pools.phis.from_slice(&[PhiArg { block: b(1), value: v(1) }]);
        let phi = InstData::Phi { dst: v(0), args };
        assert_eq!(phi.phi_args(&pools).unwrap().len(), 1);
        let copy = InstData::Copy { dst: v(0), src: v(1) };
        assert!(copy.phi_args(&pools).is_none());
        assert!(copy.is_copy_like());
    }

    #[test]
    fn side_effects_classification() {
        assert!(InstData::Store { addr: v(0), value: v(1) }.has_side_effects());
        assert!(InstData::Return { value: None }.has_side_effects());
        assert!(!InstData::Const { dst: v(0), imm: 3 }.has_side_effects());
    }

    #[test]
    fn content_eq_resolves_through_different_pool_layouts() {
        let mut pools_a = IrPools::new();
        // Warm pool A with a retired block so layouts diverge.
        let mut junk = pools_a.copies.from_slice(&[CopyPair { dst: v(9), src: v(9) }]);
        pools_a.copies.retire(&mut junk);
        let a = InstData::ParallelCopy {
            copies: pools_a.copies.from_slice(&[CopyPair { dst: v(1), src: v(2) }]),
        };
        let mut pools_b = IrPools::new();
        let b = InstData::ParallelCopy {
            copies: pools_b.copies.from_slice(&[CopyPair { dst: v(1), src: v(2) }]),
        };
        assert!(a.content_eq(&pools_a, &b, &pools_b));
        let c = InstData::ParallelCopy {
            copies: pools_b.copies.from_slice(&[CopyPair { dst: v(1), src: v(3) }]),
        };
        assert!(!a.content_eq(&pools_a, &c, &pools_b));
    }
}
