//! The [`Function`] container: blocks, instructions, values and layout.

use std::collections::HashMap;

use crate::entity::{Block, EntitySet, Inst, PrimaryMap, SecondaryMap, Value};
use crate::instruction::{CopyList, CopyPair, InstData, PhiArg, PhiList, ValueList};
use crate::pool::IrPools;

/// Data attached to each basic block: its instruction sequence.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct BlockData {
    insts: Vec<Inst>,
}

impl Clone for BlockData {
    fn clone(&self) -> Self {
        Self { insts: self.insts.clone() }
    }

    /// Capacity-reusing clone, so `Function::clone_from` reuses each block's
    /// instruction-list buffer.
    fn clone_from(&mut self, source: &Self) {
        self.insts.clone_from(&source.insts);
    }
}

/// Data attached to each value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValueInfo {
    /// Architectural register the value is pinned to (calling conventions,
    /// dedicated registers). `None` for ordinary values.
    pub pinned_reg: Option<u32>,
}

/// Location of the unique definition of an SSA value.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct DefSite {
    /// Block containing the definition.
    pub block: Block,
    /// Defining instruction.
    pub inst: Inst,
    /// Position of `inst` inside `block`.
    pub pos: usize,
}

/// A function: a control-flow graph of basic blocks over a single value
/// namespace.
///
/// The same container is used before SSA construction (values act as
/// mutable virtual registers and may have several definitions) and after
/// (every value has a unique definition and φ-functions appear at block
/// entries). The [`crate::verify`] module checks the SSA invariants.
///
/// Variable-length instruction payloads live in the function-owned
/// [`IrPools`] arenas; instructions store [`crate::pool::PoolList`] handles.
/// Equality ([`PartialEq`]) compares *resolved content*, so two functions
/// built through different histories (e.g. one through recycled arenas)
/// compare equal iff their attached code is identical.
#[derive(Debug)]
pub struct Function {
    /// Function name (used by printers and the benchmark harness).
    pub name: String,
    /// Number of formal parameters.
    pub num_params: u32,
    insts: PrimaryMap<Inst, InstData>,
    blocks: PrimaryMap<Block, BlockData>,
    values: PrimaryMap<Value, ValueInfo>,
    entry: Option<Block>,
    layout: Vec<Block>,
    pools: IrPools,
    /// Block data retired by [`Function::reset`], reused (with their
    /// instruction-list buffers) by [`Function::add_block`].
    spare_blocks: Vec<BlockData>,
}

impl Clone for Function {
    fn clone(&self) -> Self {
        Self {
            name: self.name.clone(),
            num_params: self.num_params,
            insts: self.insts.clone(),
            blocks: self.blocks.clone(),
            values: self.values.clone(),
            entry: self.entry,
            layout: self.layout.clone(),
            pools: self.pools.clone(),
            spare_blocks: self.spare_blocks.clone(),
        }
    }

    /// Capacity-reusing clone: every backing buffer (entity maps, layout,
    /// operand arenas, per-block instruction lists) is reused in place, so
    /// repeatedly snapshotting same-shaped functions into one slot — the
    /// pristine-copy discipline of the retrying engines and the service
    /// workers — settles to zero steady-state allocation.
    fn clone_from(&mut self, source: &Self) {
        self.name.clone_from(&source.name);
        self.num_params = source.num_params;
        self.insts.clone_from(&source.insts);
        self.blocks.clone_from(&source.blocks);
        self.values.clone_from(&source.values);
        self.entry = source.entry;
        self.layout.clone_from(&source.layout);
        self.pools.clone_from(&source.pools);
        self.spare_blocks.clone_from(&source.spare_blocks);
    }
}

impl PartialEq for Function {
    fn eq(&self, other: &Self) -> bool {
        if self.name != other.name
            || self.num_params != other.num_params
            || self.entry != other.entry
            || self.layout != other.layout
            || self.values != other.values
        {
            return false;
        }
        for &block in &self.layout {
            let a = &self.blocks[block].insts;
            let b = &other.blocks[block].insts;
            if a.len() != b.len() {
                return false;
            }
            for (&ia, &ib) in a.iter().zip(b) {
                if !self.insts[ia].content_eq(&self.pools, &other.insts[ib], &other.pools) {
                    return false;
                }
            }
        }
        true
    }
}

impl Eq for Function {}

impl Function {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>, num_params: u32) -> Self {
        Self {
            name: name.into(),
            num_params,
            insts: PrimaryMap::new(),
            blocks: PrimaryMap::new(),
            values: PrimaryMap::new(),
            entry: None,
            layout: Vec::new(),
            pools: IrPools::new(),
            spare_blocks: Vec::new(),
        }
    }

    /// Resets this function to the empty state of [`Function::new`] while
    /// keeping every heap allocation — block/instruction/value storage and
    /// the operand arenas — for the next build. The reset is O(current
    /// function) (the `truncate` discipline), and a rebuild through recycled
    /// storage is bit-identical to a fresh one: the cleared pools hand out
    /// the same offsets a fresh pool would.
    pub fn reset(&mut self, name: impl AsRef<str>, num_params: u32) {
        self.name.clear();
        self.name.push_str(name.as_ref());
        self.num_params = num_params;
        self.insts.clear();
        // Retire the block data (with their instruction-list buffers) into
        // the spare list so [`Function::add_block`] reuses them.
        for block in self.blocks.values_mut() {
            let mut data = std::mem::take(block);
            data.insts.clear();
            self.spare_blocks.push(data);
        }
        self.blocks.clear();
        self.values.clear();
        self.entry = None;
        self.layout.clear();
        self.pools.clear();
    }

    // ----- capacity reservation -------------------------------------------

    /// Reserves room for `additional` more instruction records. Part of the
    /// translation's up-front reservation pre-pass: paying for the predicted
    /// copy-insertion growth once instead of amortized doubling mid-pass.
    pub fn reserve_insts(&mut self, additional: usize) {
        self.insts.reserve(additional);
    }

    /// Reserves room for `additional` more value records.
    pub fn reserve_values(&mut self, additional: usize) {
        self.values.reserve(additional);
    }

    /// Reserves room for `additional` more instructions in `block`'s
    /// instruction list.
    pub fn reserve_block_insts(&mut self, block: Block, additional: usize) {
        self.blocks[block].insts.reserve(additional);
    }

    // ----- pools ----------------------------------------------------------

    /// The operand arenas (read side).
    #[inline]
    pub fn pools(&self) -> &IrPools {
        &self.pools
    }

    /// The operand arenas (write side). Mutating a list another instruction
    /// owns corrupts that instruction; prefer the typed helpers
    /// ([`Function::parallel_copy_push`], [`Function::set_parallel_copies`],
    /// [`Function::phi_args_mut`], ...).
    #[inline]
    pub fn pools_mut(&mut self) -> &mut IrPools {
        &mut self.pools
    }

    /// Builds a call-argument list in the value pool.
    pub fn make_value_list(&mut self, values: &[Value]) -> ValueList {
        self.pools.values.from_slice(values)
    }

    /// Builds a φ-argument list in the φ pool.
    pub fn make_phi_list(&mut self, args: &[PhiArg]) -> PhiList {
        self.pools.phis.from_slice(args)
    }

    /// Builds a parallel-copy move list in the copy pool.
    pub fn make_copy_list(&mut self, copies: &[CopyPair]) -> CopyList {
        self.pools.copies.from_slice(copies)
    }

    /// Resolves a call-argument list.
    #[inline]
    pub fn value_list(&self, list: ValueList) -> &[Value] {
        self.pools.values.get(list)
    }

    /// Resolves a φ-argument list.
    #[inline]
    pub fn phi_list(&self, list: PhiList) -> &[PhiArg] {
        self.pools.phis.get(list)
    }

    /// Resolves a parallel-copy move list.
    #[inline]
    pub fn copy_list(&self, list: CopyList) -> &[CopyPair] {
        self.pools.copies.get(list)
    }

    // ----- blocks ---------------------------------------------------------

    /// Creates a new, empty basic block and appends it to the layout.
    pub fn add_block(&mut self) -> Block {
        let data = self.spare_blocks.pop().unwrap_or_default();
        let block = self.blocks.push(data);
        self.layout.push(block);
        block
    }

    /// Sets the entry block.
    pub fn set_entry(&mut self, block: Block) {
        self.entry = Some(block);
    }

    /// Returns the entry block.
    ///
    /// # Panics
    /// Panics if no entry block has been set.
    pub fn entry(&self) -> Block {
        self.entry.expect("function has no entry block")
    }

    /// Returns `true` if an entry block has been set.
    pub fn has_entry(&self) -> bool {
        self.entry.is_some()
    }

    /// Number of blocks ever created (including empty ones).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks in layout order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        self.layout.iter().copied()
    }

    /// The layout order as a slice.
    pub fn layout(&self) -> &[Block] {
        &self.layout
    }

    // ----- values ---------------------------------------------------------

    /// Creates a fresh value.
    pub fn new_value(&mut self) -> Value {
        self.values.push(ValueInfo::default())
    }

    /// Number of values ever created.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// All values in creation order.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.values.keys()
    }

    /// Pins `value` to architectural register `reg`.
    pub fn pin_value(&mut self, value: Value, reg: u32) {
        self.values[value].pinned_reg = Some(reg);
    }

    /// Returns the architectural register `value` is pinned to, if any.
    pub fn pinned_reg(&self, value: Value) -> Option<u32> {
        self.values.get(value).and_then(|info| info.pinned_reg)
    }

    /// Removes the register pin of `value`, if any.
    pub fn clear_pin(&mut self, value: Value) {
        self.values[value].pinned_reg = None;
    }

    // ----- instructions ---------------------------------------------------

    /// Number of instructions ever created (including detached ones).
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Returns the payload of `inst`.
    #[inline]
    pub fn inst(&self, inst: Inst) -> &InstData {
        &self.insts[inst]
    }

    /// Returns a mutable reference to the payload of `inst`. List handles
    /// inside the payload must stay consistent with the pools; use the typed
    /// helpers for list edits.
    #[inline]
    pub fn inst_mut(&mut self, inst: Inst) -> &mut InstData {
        &mut self.insts[inst]
    }

    /// Appends `data` at the end of `block`.
    pub fn append_inst(&mut self, block: Block, data: InstData) -> Inst {
        let inst = self.insts.push(data);
        self.blocks[block].insts.push(inst);
        inst
    }

    /// Inserts `data` at position `pos` inside `block`.
    ///
    /// # Panics
    /// Panics if `pos > block length`.
    pub fn insert_inst(&mut self, block: Block, pos: usize, data: InstData) -> Inst {
        let inst = self.insts.push(data);
        self.blocks[block].insts.insert(pos, inst);
        inst
    }

    /// Removes `inst` from `block`. Returns `true` if it was present.
    ///
    /// The instruction's operand lists (if any) are retired into the pools'
    /// free lists for reuse by later insertions; the detached payload keeps
    /// an empty handle.
    pub fn remove_inst(&mut self, block: Block, inst: Inst) -> bool {
        let insts = &mut self.blocks[block].insts;
        if let Some(pos) = insts.iter().position(|&i| i == inst) {
            insts.remove(pos);
            match &mut self.insts[inst] {
                InstData::ParallelCopy { copies } => self.pools.copies.retire(copies),
                InstData::Phi { args, .. } => self.pools.phis.retire(args),
                InstData::Call { args, .. } => self.pools.values.retire(args),
                _ => {}
            }
            true
        } else {
            false
        }
    }

    /// The instruction sequence of `block`.
    #[inline]
    pub fn block_insts(&self, block: Block) -> &[Inst] {
        &self.blocks[block].insts
    }

    /// Number of instructions currently in `block`.
    pub fn block_len(&self, block: Block) -> usize {
        self.blocks[block].insts.len()
    }

    /// Position of `inst` within `block`, if attached there.
    pub fn position_in_block(&self, block: Block, inst: Inst) -> Option<usize> {
        self.blocks[block].insts.iter().position(|&i| i == inst)
    }

    /// The terminator of `block`, if the block ends with one.
    pub fn terminator(&self, block: Block) -> Option<Inst> {
        self.blocks[block].insts.last().copied().filter(|&inst| self.insts[inst].is_terminator())
    }

    /// Successor blocks of `block` (empty if it has no terminator),
    /// without allocating.
    #[inline]
    pub fn successors_iter(&self, block: Block) -> crate::instruction::Successors {
        match self.terminator(block) {
            Some(term) => self.insts[term].successors_iter(),
            None => crate::instruction::Successors::none(),
        }
    }

    /// Successor blocks of `block` (empty if it has no terminator).
    /// Allocates; meant for tests — hot paths use
    /// [`Function::successors_iter`].
    pub fn successors(&self, block: Block) -> Vec<Block> {
        self.successors_iter(block).collect()
    }

    /// The φ-functions at the start of `block`.
    pub fn phis(&self, block: Block) -> Vec<Inst> {
        self.blocks[block]
            .insts
            .iter()
            .copied()
            .take_while(|&inst| self.insts[inst].is_phi())
            .collect()
    }

    /// Position of the first non-φ instruction in `block`.
    pub fn first_non_phi(&self, block: Block) -> usize {
        self.blocks[block].insts.iter().take_while(|&&inst| self.insts[inst].is_phi()).count()
    }

    /// Total number of instructions attached to blocks.
    pub fn num_attached_insts(&self) -> usize {
        self.layout.iter().map(|&b| self.blocks[b].insts.len()).sum()
    }

    /// Counts the sequential copies and the moves inside parallel copies —
    /// the "number of copies" metric of the paper's Figure 5.
    pub fn count_copies(&self) -> usize {
        self.blocks()
            .flat_map(|b| self.block_insts(b).iter())
            .map(|&inst| match self.inst(inst) {
                InstData::Copy { .. } => 1,
                InstData::ParallelCopy { copies } => copies.len(),
                _ => 0,
            })
            .sum()
    }

    // ----- typed list edits ----------------------------------------------

    /// Appends one move to the parallel copy `inst`.
    ///
    /// # Panics
    /// Panics if `inst` is not a parallel copy.
    pub fn parallel_copy_push(&mut self, inst: Inst, pair: CopyPair) {
        let InstData::ParallelCopy { copies } = &mut self.insts[inst] else {
            panic!("parallel copy expected");
        };
        self.pools.copies.push(copies, pair);
    }

    /// Replaces the moves of the parallel copy `inst` with `pairs`, reusing
    /// the existing pool block when its capacity suffices (the coalescer's
    /// rewrite only ever shrinks, so in steady state this never allocates).
    ///
    /// # Panics
    /// Panics if `inst` is not a parallel copy.
    pub fn set_parallel_copies(&mut self, inst: Inst, pairs: &[CopyPair]) {
        let InstData::ParallelCopy { copies } = &mut self.insts[inst] else {
            panic!("parallel copy expected");
        };
        if pairs.len() <= copies.len() {
            self.pools.copies.truncate(copies, pairs.len());
            self.pools.copies.get_mut(*copies).copy_from_slice(pairs);
        } else {
            let mut list = *copies;
            self.pools.copies.truncate(&mut list, 0);
            for &pair in pairs {
                self.pools.copies.push(&mut list, pair);
            }
            *match &mut self.insts[inst] {
                InstData::ParallelCopy { copies } => copies,
                _ => unreachable!(),
            } = list;
        }
    }

    /// The φ arguments of `inst`, mutably (length fixed).
    ///
    /// # Panics
    /// Panics if `inst` is not a φ-function.
    pub fn phi_args_mut(&mut self, inst: Inst) -> &mut [PhiArg] {
        let InstData::Phi { args, .. } = &self.insts[inst] else {
            panic!("phi expected");
        };
        let list = *args;
        self.pools.phis.get_mut(list)
    }

    /// The call arguments of `inst`, mutably (length fixed).
    ///
    /// # Panics
    /// Panics if `inst` is not a call.
    pub fn call_args_mut(&mut self, inst: Inst) -> &mut [Value] {
        let InstData::Call { args, .. } = &self.insts[inst] else {
            panic!("call expected");
        };
        let list = *args;
        self.pools.values.get_mut(list)
    }

    /// Applies `rewrite` to every value used by `inst`.
    pub fn map_inst_uses(&mut self, inst: Inst, rewrite: impl FnMut(Value) -> Value) {
        let data = &mut self.insts[inst];
        data.map_uses(&mut self.pools, rewrite);
    }

    /// Applies `rewrite` to every value defined by `inst`.
    pub fn map_inst_defs(&mut self, inst: Inst, rewrite: impl FnMut(Value) -> Value) {
        let data = &mut self.insts[inst];
        data.map_defs(&mut self.pools, rewrite);
    }

    /// Appends the values defined by `inst` to `out`.
    #[inline]
    pub fn collect_inst_defs(&self, inst: Inst, out: &mut Vec<Value>) {
        self.insts[inst].collect_defs(&self.pools, out);
    }

    /// Appends the values used by `inst` to `out`.
    #[inline]
    pub fn collect_inst_uses(&self, inst: Inst, out: &mut Vec<Value>) {
        self.insts[inst].collect_uses(&self.pools, out);
    }

    /// The φ arguments of `inst`, if it is a φ-function.
    #[inline]
    pub fn inst_phi_args(&self, inst: Inst) -> Option<&[PhiArg]> {
        self.insts[inst].phi_args(&self.pools)
    }

    /// The parallel-copy moves of `inst`, if it is a parallel copy.
    #[inline]
    pub fn inst_copy_pairs(&self, inst: Inst) -> Option<&[CopyPair]> {
        self.insts[inst].copy_pairs(&self.pools)
    }

    // ----- whole-function queries ----------------------------------------

    /// Computes the definition site of every value. In SSA form each value
    /// has at most one definition; if a value has several (pre-SSA code),
    /// the first one in layout order is returned.
    pub fn def_sites(&self) -> SecondaryMap<Value, Option<DefSite>> {
        let mut defs: SecondaryMap<Value, Option<DefSite>> = SecondaryMap::new();
        let mut scratch = Vec::new();
        self.def_sites_into(&mut defs, &mut scratch);
        defs
    }

    /// Like [`Function::def_sites`], recomputing into a recycled map (the
    /// storage may come from a previous, possibly larger, function).
    /// `scratch` is the def-collection buffer, caller-owned so a recycled
    /// recomputation performs no allocation at all.
    pub fn def_sites_into(
        &self,
        defs: &mut SecondaryMap<Value, Option<DefSite>>,
        scratch: &mut Vec<Value>,
    ) {
        defs.truncate(self.num_values());
        for slot in defs.values_mut() {
            *slot = None;
        }
        defs.resize(self.num_values());
        for block in self.blocks() {
            for (pos, &inst) in self.block_insts(block).iter().enumerate() {
                scratch.clear();
                self.collect_inst_defs(inst, scratch);
                for &value in scratch.iter() {
                    if defs[value].is_none() {
                        defs[value] = Some(DefSite { block, inst, pos });
                    }
                }
            }
        }
    }

    /// Counts how many definitions each value has (useful pre-SSA and for the
    /// verifier).
    pub fn def_counts(&self) -> SecondaryMap<Value, u32> {
        let mut counts: SecondaryMap<Value, u32> = SecondaryMap::new();
        counts.resize(self.num_values());
        let mut scratch = Vec::new();
        for block in self.blocks() {
            for &inst in self.block_insts(block) {
                scratch.clear();
                self.collect_inst_defs(inst, &mut scratch);
                for &value in &scratch {
                    counts[value] += 1;
                }
            }
        }
        counts
    }

    /// The set of values that appear (as def or use) anywhere in the function.
    pub fn referenced_values(&self) -> EntitySet<Value> {
        let mut set = EntitySet::with_capacity(self.num_values());
        let mut scratch = Vec::new();
        for block in self.blocks() {
            for &inst in self.block_insts(block) {
                scratch.clear();
                self.collect_inst_defs(inst, &mut scratch);
                self.collect_inst_uses(inst, &mut scratch);
                set.extend(scratch.iter().copied());
            }
        }
        set
    }

    /// Predecessor blocks of every block, in deterministic layout order.
    pub fn predecessors(&self) -> SecondaryMap<Block, Vec<Block>> {
        let mut preds: SecondaryMap<Block, Vec<Block>> = SecondaryMap::new();
        preds.resize(self.num_blocks());
        for block in self.blocks() {
            for succ in self.successors_iter(block) {
                preds[succ].push(block);
            }
        }
        preds
    }

    /// Rewrites, in the φ-functions of `block`, every argument coming from
    /// `old_pred` so that it now comes from `new_pred`. Used when splitting
    /// critical edges.
    pub fn redirect_phi_inputs(&mut self, block: Block, old_pred: Block, new_pred: Block) {
        for inst in self.phis(block) {
            for arg in self.phi_args_mut(inst) {
                if arg.block == old_pred {
                    arg.block = new_pred;
                }
            }
        }
    }

    /// Returns, for each φ of `block`, the incoming value along the edge from
    /// `pred`.
    pub fn phi_inputs_from(&self, block: Block, pred: Block) -> Vec<(Inst, Value)> {
        self.phis(block)
            .into_iter()
            .filter_map(|inst| {
                self.inst_phi_args(inst)
                    .and_then(|args| args.iter().find(|a| a.block == pred))
                    .map(|arg| (inst, arg.value))
            })
            .collect()
    }

    /// Counts the φ-functions of the whole function.
    pub fn count_phis(&self) -> usize {
        self.blocks().map(|b| self.first_non_phi(b)).sum()
    }

    /// Builds a map from value to the blocks where it is used (φ uses are
    /// attributed to the predecessor block, matching liveness semantics).
    pub fn use_blocks(&self) -> HashMap<Value, Vec<Block>> {
        let mut uses: HashMap<Value, Vec<Block>> = HashMap::new();
        let mut scratch = Vec::new();
        for block in self.blocks() {
            for &inst in self.block_insts(block) {
                match self.inst_phi_args(inst) {
                    Some(args) => {
                        for PhiArg { block: pred, value } in args {
                            uses.entry(*value).or_default().push(*pred);
                        }
                    }
                    None => {
                        scratch.clear();
                        self.collect_inst_uses(inst, &mut scratch);
                        for &value in &scratch {
                            uses.entry(value).or_default().push(block);
                        }
                    }
                }
            }
        }
        uses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::BinaryOp;

    fn sample_function() -> (Function, Block, Block, Block) {
        // bb0: v0 = param 0; v1 = const 1; br v0, bb1, bb2
        // bb1: v2 = add v0, v1; jump bb2
        // bb2: v3 = phi [(bb0, v1), (bb1, v2)]; return v3
        let mut f = Function::new("sample", 1);
        let bb0 = f.add_block();
        let bb1 = f.add_block();
        let bb2 = f.add_block();
        f.set_entry(bb0);
        let v0 = f.new_value();
        let v1 = f.new_value();
        let v2 = f.new_value();
        let v3 = f.new_value();
        f.append_inst(bb0, InstData::Param { dst: v0, index: 0 });
        f.append_inst(bb0, InstData::Const { dst: v1, imm: 1 });
        f.append_inst(bb0, InstData::Branch { cond: v0, then_dest: bb1, else_dest: bb2 });
        f.append_inst(bb1, InstData::Binary { op: BinaryOp::Add, dst: v2, args: [v0, v1] });
        f.append_inst(bb1, InstData::Jump { dest: bb2 });
        let args =
            f.make_phi_list(&[PhiArg { block: bb0, value: v1 }, PhiArg { block: bb1, value: v2 }]);
        f.append_inst(bb2, InstData::Phi { dst: v3, args });
        f.append_inst(bb2, InstData::Return { value: Some(v3) });
        (f, bb0, bb1, bb2)
    }

    #[test]
    fn block_layout_and_entry() {
        let (f, bb0, bb1, bb2) = sample_function();
        assert_eq!(f.entry(), bb0);
        assert_eq!(f.blocks().collect::<Vec<_>>(), vec![bb0, bb1, bb2]);
        assert_eq!(f.num_blocks(), 3);
    }

    #[test]
    fn successors_and_predecessors() {
        let (f, bb0, bb1, bb2) = sample_function();
        assert_eq!(f.successors(bb0), vec![bb1, bb2]);
        assert_eq!(f.successors(bb1), vec![bb2]);
        assert!(f.successors(bb2).is_empty());
        let preds = f.predecessors();
        assert_eq!(preds[bb2], vec![bb0, bb1]);
        assert_eq!(preds[bb1], vec![bb0]);
        assert!(preds[bb0].is_empty());
    }

    #[test]
    fn phis_and_first_non_phi() {
        let (f, bb0, _, bb2) = sample_function();
        assert_eq!(f.phis(bb2).len(), 1);
        assert_eq!(f.first_non_phi(bb2), 1);
        assert_eq!(f.first_non_phi(bb0), 0);
        assert_eq!(f.count_phis(), 1);
    }

    #[test]
    fn def_sites_and_counts() {
        let (f, bb0, bb1, bb2) = sample_function();
        let defs = f.def_sites();
        let v2 = Value::from_index(2);
        let v3 = Value::from_index(3);
        assert_eq!(defs[v2].unwrap().block, bb1);
        assert_eq!(defs[v3].unwrap().block, bb2);
        assert_eq!(defs[Value::from_index(0)].unwrap().block, bb0);
        let counts = f.def_counts();
        assert!(f.values().all(|v| counts[v] == 1));
    }

    #[test]
    fn insert_and_remove_inst() {
        let (mut f, bb0, _, _) = sample_function();
        let v = f.new_value();
        let inst = f.insert_inst(bb0, 2, InstData::Const { dst: v, imm: 9 });
        assert_eq!(f.position_in_block(bb0, inst), Some(2));
        assert_eq!(f.block_len(bb0), 4);
        assert!(f.remove_inst(bb0, inst));
        assert!(!f.remove_inst(bb0, inst));
        assert_eq!(f.block_len(bb0), 3);
    }

    #[test]
    fn terminator_lookup() {
        let (f, bb0, _, bb2) = sample_function();
        assert!(matches!(f.inst(f.terminator(bb0).unwrap()), InstData::Branch { .. }));
        assert!(matches!(f.inst(f.terminator(bb2).unwrap()), InstData::Return { .. }));
    }

    #[test]
    fn copy_counting() {
        let (mut f, bb0, _, _) = sample_function();
        let a = f.new_value();
        let b = f.new_value();
        f.insert_inst(bb0, 2, InstData::Copy { dst: a, src: b });
        let copies = f.make_copy_list(&[CopyPair { dst: a, src: b }, CopyPair { dst: b, src: a }]);
        f.insert_inst(bb0, 2, InstData::ParallelCopy { copies });
        assert_eq!(f.count_copies(), 3);
    }

    #[test]
    fn pinning() {
        let (mut f, ..) = sample_function();
        let v0 = Value::from_index(0);
        assert_eq!(f.pinned_reg(v0), None);
        f.pin_value(v0, 4);
        assert_eq!(f.pinned_reg(v0), Some(4));
    }

    #[test]
    fn phi_inputs_from_predecessor() {
        let (f, bb0, bb1, bb2) = sample_function();
        let from_bb0 = f.phi_inputs_from(bb2, bb0);
        assert_eq!(from_bb0.len(), 1);
        assert_eq!(from_bb0[0].1, Value::from_index(1));
        let from_bb1 = f.phi_inputs_from(bb2, bb1);
        assert_eq!(from_bb1[0].1, Value::from_index(2));
    }

    #[test]
    fn redirect_phi_inputs_rewrites_edges() {
        let (mut f, bb0, _, bb2) = sample_function();
        let new_block = f.add_block();
        f.redirect_phi_inputs(bb2, bb0, new_block);
        assert!(f.phi_inputs_from(bb2, bb0).is_empty());
        assert_eq!(f.phi_inputs_from(bb2, new_block).len(), 1);
    }

    #[test]
    fn use_blocks_attributes_phi_uses_to_predecessors() {
        let (f, bb0, bb1, _) = sample_function();
        let uses = f.use_blocks();
        // v2 is used by the phi in bb2, attributed to bb1.
        let v2_uses = &uses[&Value::from_index(2)];
        assert_eq!(v2_uses, &vec![bb1]);
        // v0 is used by the add in bb1 and by the branch in bb0.
        let v0_uses = &uses[&Value::from_index(0)];
        assert!(v0_uses.contains(&bb0) && v0_uses.contains(&bb1));
    }

    #[test]
    fn set_parallel_copies_shrinks_in_place() {
        let mut f = Function::new("pc", 0);
        let bb = f.add_block();
        f.set_entry(bb);
        let a = f.new_value();
        let b = f.new_value();
        let c = f.new_value();
        let copies = f.make_copy_list(&[
            CopyPair { dst: a, src: b },
            CopyPair { dst: b, src: c },
            CopyPair { dst: c, src: a },
        ]);
        let pc = f.append_inst(bb, InstData::ParallelCopy { copies });
        let pool_len = f.pools().copies.len();
        f.set_parallel_copies(pc, &[CopyPair { dst: b, src: c }]);
        assert_eq!(f.inst_copy_pairs(pc).unwrap(), &[CopyPair { dst: b, src: c }]);
        assert_eq!(f.pools().copies.len(), pool_len, "shrink reuses the block in place");
        f.parallel_copy_push(pc, CopyPair { dst: c, src: a });
        assert_eq!(f.inst_copy_pairs(pc).unwrap().len(), 2);
        assert_eq!(f.pools().copies.len(), pool_len, "regrowth within capacity");
    }

    #[test]
    fn reset_then_rebuild_is_equal_to_fresh() {
        let (mut f, ..) = sample_function();
        // Mutate the recycled function a bit so its pools see retire traffic.
        let bb2 = f.blocks().nth(2).unwrap();
        let phi = f.phis(bb2)[0];
        f.remove_inst(bb2, phi);
        f.reset("sample", 1);
        // Rebuild the identical function into the recycled storage.
        let rebuilt = {
            let bb0 = f.add_block();
            let bb1 = f.add_block();
            let bb2 = f.add_block();
            f.set_entry(bb0);
            let v0 = f.new_value();
            let v1 = f.new_value();
            let v2 = f.new_value();
            let v3 = f.new_value();
            f.append_inst(bb0, InstData::Param { dst: v0, index: 0 });
            f.append_inst(bb0, InstData::Const { dst: v1, imm: 1 });
            f.append_inst(bb0, InstData::Branch { cond: v0, then_dest: bb1, else_dest: bb2 });
            f.append_inst(bb1, InstData::Binary { op: BinaryOp::Add, dst: v2, args: [v0, v1] });
            f.append_inst(bb1, InstData::Jump { dest: bb2 });
            let args = f.make_phi_list(&[
                PhiArg { block: bb0, value: v1 },
                PhiArg { block: bb1, value: v2 },
            ]);
            f.append_inst(bb2, InstData::Phi { dst: v3, args });
            f.append_inst(bb2, InstData::Return { value: Some(v3) });
            f
        };
        let (fresh, ..) = sample_function();
        assert_eq!(rebuilt, fresh);
        assert_eq!(rebuilt.display().to_string(), fresh.display().to_string());
    }
}
