//! The [`Function`] container: blocks, instructions, values and layout.

use std::collections::HashMap;

use crate::entity::{Block, EntitySet, Inst, PrimaryMap, SecondaryMap, Value};
use crate::instruction::{InstData, PhiArg};

/// Data attached to each basic block: its instruction sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockData {
    insts: Vec<Inst>,
}

/// Data attached to each value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValueInfo {
    /// Architectural register the value is pinned to (calling conventions,
    /// dedicated registers). `None` for ordinary values.
    pub pinned_reg: Option<u32>,
}

/// Location of the unique definition of an SSA value.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct DefSite {
    /// Block containing the definition.
    pub block: Block,
    /// Defining instruction.
    pub inst: Inst,
    /// Position of `inst` inside `block`.
    pub pos: usize,
}

/// A function: a control-flow graph of basic blocks over a single value
/// namespace.
///
/// The same container is used before SSA construction (values act as
/// mutable virtual registers and may have several definitions) and after
/// (every value has a unique definition and φ-functions appear at block
/// entries). The [`crate::verify`] module checks the SSA invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Function name (used by printers and the benchmark harness).
    pub name: String,
    /// Number of formal parameters.
    pub num_params: u32,
    insts: PrimaryMap<Inst, InstData>,
    blocks: PrimaryMap<Block, BlockData>,
    values: PrimaryMap<Value, ValueInfo>,
    entry: Option<Block>,
    layout: Vec<Block>,
}

impl Function {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>, num_params: u32) -> Self {
        Self {
            name: name.into(),
            num_params,
            insts: PrimaryMap::new(),
            blocks: PrimaryMap::new(),
            values: PrimaryMap::new(),
            entry: None,
            layout: Vec::new(),
        }
    }

    // ----- blocks ---------------------------------------------------------

    /// Creates a new, empty basic block and appends it to the layout.
    pub fn add_block(&mut self) -> Block {
        let block = self.blocks.push(BlockData::default());
        self.layout.push(block);
        block
    }

    /// Sets the entry block.
    pub fn set_entry(&mut self, block: Block) {
        self.entry = Some(block);
    }

    /// Returns the entry block.
    ///
    /// # Panics
    /// Panics if no entry block has been set.
    pub fn entry(&self) -> Block {
        self.entry.expect("function has no entry block")
    }

    /// Returns `true` if an entry block has been set.
    pub fn has_entry(&self) -> bool {
        self.entry.is_some()
    }

    /// Number of blocks ever created (including empty ones).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks in layout order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        self.layout.iter().copied()
    }

    /// The layout order as a slice.
    pub fn layout(&self) -> &[Block] {
        &self.layout
    }

    // ----- values ---------------------------------------------------------

    /// Creates a fresh value.
    pub fn new_value(&mut self) -> Value {
        self.values.push(ValueInfo::default())
    }

    /// Number of values ever created.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// All values in creation order.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.values.keys()
    }

    /// Pins `value` to architectural register `reg`.
    pub fn pin_value(&mut self, value: Value, reg: u32) {
        self.values[value].pinned_reg = Some(reg);
    }

    /// Returns the architectural register `value` is pinned to, if any.
    pub fn pinned_reg(&self, value: Value) -> Option<u32> {
        self.values.get(value).and_then(|info| info.pinned_reg)
    }

    /// Removes the register pin of `value`, if any.
    pub fn clear_pin(&mut self, value: Value) {
        self.values[value].pinned_reg = None;
    }

    // ----- instructions ---------------------------------------------------

    /// Number of instructions ever created (including detached ones).
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Returns the payload of `inst`.
    pub fn inst(&self, inst: Inst) -> &InstData {
        &self.insts[inst]
    }

    /// Returns a mutable reference to the payload of `inst`.
    pub fn inst_mut(&mut self, inst: Inst) -> &mut InstData {
        &mut self.insts[inst]
    }

    /// Appends `data` at the end of `block`.
    pub fn append_inst(&mut self, block: Block, data: InstData) -> Inst {
        let inst = self.insts.push(data);
        self.blocks[block].insts.push(inst);
        inst
    }

    /// Inserts `data` at position `pos` inside `block`.
    ///
    /// # Panics
    /// Panics if `pos > block length`.
    pub fn insert_inst(&mut self, block: Block, pos: usize, data: InstData) -> Inst {
        let inst = self.insts.push(data);
        self.blocks[block].insts.insert(pos, inst);
        inst
    }

    /// Removes `inst` from `block`. Returns `true` if it was present.
    pub fn remove_inst(&mut self, block: Block, inst: Inst) -> bool {
        let insts = &mut self.blocks[block].insts;
        if let Some(pos) = insts.iter().position(|&i| i == inst) {
            insts.remove(pos);
            true
        } else {
            false
        }
    }

    /// The instruction sequence of `block`.
    pub fn block_insts(&self, block: Block) -> &[Inst] {
        &self.blocks[block].insts
    }

    /// Number of instructions currently in `block`.
    pub fn block_len(&self, block: Block) -> usize {
        self.blocks[block].insts.len()
    }

    /// Position of `inst` within `block`, if attached there.
    pub fn position_in_block(&self, block: Block, inst: Inst) -> Option<usize> {
        self.blocks[block].insts.iter().position(|&i| i == inst)
    }

    /// The terminator of `block`, if the block ends with one.
    pub fn terminator(&self, block: Block) -> Option<Inst> {
        self.blocks[block].insts.last().copied().filter(|&inst| self.insts[inst].is_terminator())
    }

    /// Successor blocks of `block` (empty if it has no terminator).
    pub fn successors(&self, block: Block) -> Vec<Block> {
        self.terminator(block).map(|t| self.insts[t].successors()).unwrap_or_default()
    }

    /// The φ-functions at the start of `block`.
    pub fn phis(&self, block: Block) -> Vec<Inst> {
        self.blocks[block]
            .insts
            .iter()
            .copied()
            .take_while(|&inst| self.insts[inst].is_phi())
            .collect()
    }

    /// Position of the first non-φ instruction in `block`.
    pub fn first_non_phi(&self, block: Block) -> usize {
        self.blocks[block].insts.iter().take_while(|&&inst| self.insts[inst].is_phi()).count()
    }

    /// Total number of instructions attached to blocks.
    pub fn num_attached_insts(&self) -> usize {
        self.layout.iter().map(|&b| self.blocks[b].insts.len()).sum()
    }

    /// Counts the sequential copies and the moves inside parallel copies —
    /// the "number of copies" metric of the paper's Figure 5.
    pub fn count_copies(&self) -> usize {
        self.blocks()
            .flat_map(|b| self.block_insts(b).iter())
            .map(|&inst| match self.inst(inst) {
                InstData::Copy { .. } => 1,
                InstData::ParallelCopy { copies } => copies.len(),
                _ => 0,
            })
            .sum()
    }

    // ----- whole-function queries ----------------------------------------

    /// Computes the definition site of every value. In SSA form each value
    /// has at most one definition; if a value has several (pre-SSA code),
    /// the first one in layout order is returned.
    pub fn def_sites(&self) -> SecondaryMap<Value, Option<DefSite>> {
        let mut defs: SecondaryMap<Value, Option<DefSite>> = SecondaryMap::new();
        let mut scratch = Vec::new();
        self.def_sites_into(&mut defs, &mut scratch);
        defs
    }

    /// Like [`Function::def_sites`], recomputing into a recycled map (the
    /// storage may come from a previous, possibly larger, function).
    /// `scratch` is the def-collection buffer, caller-owned so a recycled
    /// recomputation performs no allocation at all.
    pub fn def_sites_into(
        &self,
        defs: &mut SecondaryMap<Value, Option<DefSite>>,
        scratch: &mut Vec<Value>,
    ) {
        defs.truncate(self.num_values());
        for slot in defs.values_mut() {
            *slot = None;
        }
        defs.resize(self.num_values());
        for block in self.blocks() {
            for (pos, &inst) in self.block_insts(block).iter().enumerate() {
                scratch.clear();
                self.inst(inst).collect_defs(scratch);
                for &value in scratch.iter() {
                    if defs[value].is_none() {
                        defs[value] = Some(DefSite { block, inst, pos });
                    }
                }
            }
        }
    }

    /// Counts how many definitions each value has (useful pre-SSA and for the
    /// verifier).
    pub fn def_counts(&self) -> SecondaryMap<Value, u32> {
        let mut counts: SecondaryMap<Value, u32> = SecondaryMap::new();
        counts.resize(self.num_values());
        let mut scratch = Vec::new();
        for block in self.blocks() {
            for &inst in self.block_insts(block) {
                scratch.clear();
                self.inst(inst).collect_defs(&mut scratch);
                for &value in &scratch {
                    counts[value] += 1;
                }
            }
        }
        counts
    }

    /// The set of values that appear (as def or use) anywhere in the function.
    pub fn referenced_values(&self) -> EntitySet<Value> {
        let mut set = EntitySet::with_capacity(self.num_values());
        let mut scratch = Vec::new();
        for block in self.blocks() {
            for &inst in self.block_insts(block) {
                scratch.clear();
                self.inst(inst).collect_defs(&mut scratch);
                self.inst(inst).collect_uses(&mut scratch);
                set.extend(scratch.iter().copied());
            }
        }
        set
    }

    /// Predecessor blocks of every block, in deterministic layout order.
    pub fn predecessors(&self) -> SecondaryMap<Block, Vec<Block>> {
        let mut preds: SecondaryMap<Block, Vec<Block>> = SecondaryMap::new();
        preds.resize(self.num_blocks());
        for block in self.blocks() {
            for succ in self.successors(block) {
                preds[succ].push(block);
            }
        }
        preds
    }

    /// Rewrites, in the φ-functions of `block`, every argument coming from
    /// `old_pred` so that it now comes from `new_pred`. Used when splitting
    /// critical edges.
    pub fn redirect_phi_inputs(&mut self, block: Block, old_pred: Block, new_pred: Block) {
        for inst in self.phis(block) {
            if let InstData::Phi { args, .. } = self.inst_mut(inst) {
                for arg in args {
                    if arg.block == old_pred {
                        arg.block = new_pred;
                    }
                }
            }
        }
    }

    /// Returns, for each φ of `block`, the incoming value along the edge from
    /// `pred`.
    pub fn phi_inputs_from(&self, block: Block, pred: Block) -> Vec<(Inst, Value)> {
        self.phis(block)
            .into_iter()
            .filter_map(|inst| {
                self.inst(inst)
                    .phi_args()
                    .and_then(|args| args.iter().find(|a| a.block == pred))
                    .map(|arg| (inst, arg.value))
            })
            .collect()
    }

    /// Replaces every φ-function by nothing and every `ParallelCopy` by a
    /// sequence of `Copy` instructions in the given order. This is a plain
    /// structural helper used by tests; the real sequentialization lives in
    /// the `ossa-destruct` crate.
    pub fn count_phis(&self) -> usize {
        self.blocks().map(|b| self.phis(b).len()).sum()
    }

    /// Builds a map from value to the blocks where it is used (φ uses are
    /// attributed to the predecessor block, matching liveness semantics).
    pub fn use_blocks(&self) -> HashMap<Value, Vec<Block>> {
        let mut uses: HashMap<Value, Vec<Block>> = HashMap::new();
        for block in self.blocks() {
            for &inst in self.block_insts(block) {
                match self.inst(inst) {
                    InstData::Phi { args, .. } => {
                        for PhiArg { block: pred, value } in args {
                            uses.entry(*value).or_default().push(*pred);
                        }
                    }
                    data => {
                        for value in data.uses() {
                            uses.entry(value).or_default().push(block);
                        }
                    }
                }
            }
        }
        uses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{BinaryOp, CopyPair};

    fn sample_function() -> (Function, Block, Block, Block) {
        // bb0: v0 = param 0; v1 = const 1; br v0, bb1, bb2
        // bb1: v2 = add v0, v1; jump bb2
        // bb2: v3 = phi [(bb0, v1), (bb1, v2)]; return v3
        let mut f = Function::new("sample", 1);
        let bb0 = f.add_block();
        let bb1 = f.add_block();
        let bb2 = f.add_block();
        f.set_entry(bb0);
        let v0 = f.new_value();
        let v1 = f.new_value();
        let v2 = f.new_value();
        let v3 = f.new_value();
        f.append_inst(bb0, InstData::Param { dst: v0, index: 0 });
        f.append_inst(bb0, InstData::Const { dst: v1, imm: 1 });
        f.append_inst(bb0, InstData::Branch { cond: v0, then_dest: bb1, else_dest: bb2 });
        f.append_inst(bb1, InstData::Binary { op: BinaryOp::Add, dst: v2, args: [v0, v1] });
        f.append_inst(bb1, InstData::Jump { dest: bb2 });
        f.append_inst(
            bb2,
            InstData::Phi {
                dst: v3,
                args: vec![PhiArg { block: bb0, value: v1 }, PhiArg { block: bb1, value: v2 }],
            },
        );
        f.append_inst(bb2, InstData::Return { value: Some(v3) });
        (f, bb0, bb1, bb2)
    }

    #[test]
    fn block_layout_and_entry() {
        let (f, bb0, bb1, bb2) = sample_function();
        assert_eq!(f.entry(), bb0);
        assert_eq!(f.blocks().collect::<Vec<_>>(), vec![bb0, bb1, bb2]);
        assert_eq!(f.num_blocks(), 3);
    }

    #[test]
    fn successors_and_predecessors() {
        let (f, bb0, bb1, bb2) = sample_function();
        assert_eq!(f.successors(bb0), vec![bb1, bb2]);
        assert_eq!(f.successors(bb1), vec![bb2]);
        assert!(f.successors(bb2).is_empty());
        let preds = f.predecessors();
        assert_eq!(preds[bb2], vec![bb0, bb1]);
        assert_eq!(preds[bb1], vec![bb0]);
        assert!(preds[bb0].is_empty());
    }

    #[test]
    fn phis_and_first_non_phi() {
        let (f, bb0, _, bb2) = sample_function();
        assert_eq!(f.phis(bb2).len(), 1);
        assert_eq!(f.first_non_phi(bb2), 1);
        assert_eq!(f.first_non_phi(bb0), 0);
        assert_eq!(f.count_phis(), 1);
    }

    #[test]
    fn def_sites_and_counts() {
        let (f, bb0, bb1, bb2) = sample_function();
        let defs = f.def_sites();
        let v2 = Value::from_index(2);
        let v3 = Value::from_index(3);
        assert_eq!(defs[v2].unwrap().block, bb1);
        assert_eq!(defs[v3].unwrap().block, bb2);
        assert_eq!(defs[Value::from_index(0)].unwrap().block, bb0);
        let counts = f.def_counts();
        assert!(f.values().all(|v| counts[v] == 1));
    }

    #[test]
    fn insert_and_remove_inst() {
        let (mut f, bb0, _, _) = sample_function();
        let v = f.new_value();
        let inst = f.insert_inst(bb0, 2, InstData::Const { dst: v, imm: 9 });
        assert_eq!(f.position_in_block(bb0, inst), Some(2));
        assert_eq!(f.block_len(bb0), 4);
        assert!(f.remove_inst(bb0, inst));
        assert!(!f.remove_inst(bb0, inst));
        assert_eq!(f.block_len(bb0), 3);
    }

    #[test]
    fn terminator_lookup() {
        let (f, bb0, _, bb2) = sample_function();
        assert!(matches!(f.inst(f.terminator(bb0).unwrap()), InstData::Branch { .. }));
        assert!(matches!(f.inst(f.terminator(bb2).unwrap()), InstData::Return { .. }));
    }

    #[test]
    fn copy_counting() {
        let (mut f, bb0, _, _) = sample_function();
        let a = f.new_value();
        let b = f.new_value();
        f.insert_inst(bb0, 2, InstData::Copy { dst: a, src: b });
        f.insert_inst(
            bb0,
            2,
            InstData::ParallelCopy {
                copies: vec![CopyPair { dst: a, src: b }, CopyPair { dst: b, src: a }],
            },
        );
        assert_eq!(f.count_copies(), 3);
    }

    #[test]
    fn pinning() {
        let (mut f, ..) = sample_function();
        let v0 = Value::from_index(0);
        assert_eq!(f.pinned_reg(v0), None);
        f.pin_value(v0, 4);
        assert_eq!(f.pinned_reg(v0), Some(4));
    }

    #[test]
    fn phi_inputs_from_predecessor() {
        let (f, bb0, bb1, bb2) = sample_function();
        let from_bb0 = f.phi_inputs_from(bb2, bb0);
        assert_eq!(from_bb0.len(), 1);
        assert_eq!(from_bb0[0].1, Value::from_index(1));
        let from_bb1 = f.phi_inputs_from(bb2, bb1);
        assert_eq!(from_bb1[0].1, Value::from_index(2));
    }

    #[test]
    fn redirect_phi_inputs_rewrites_edges() {
        let (mut f, bb0, _, bb2) = sample_function();
        let new_block = f.add_block();
        f.redirect_phi_inputs(bb2, bb0, new_block);
        assert!(f.phi_inputs_from(bb2, bb0).is_empty());
        assert_eq!(f.phi_inputs_from(bb2, new_block).len(), 1);
    }

    #[test]
    fn use_blocks_attributes_phi_uses_to_predecessors() {
        let (f, bb0, bb1, _) = sample_function();
        let uses = f.use_blocks();
        // v2 is used by the phi in bb2, attributed to bb1.
        let v2_uses = &uses[&Value::from_index(2)];
        assert_eq!(v2_uses, &vec![bb1]);
        // v0 is used by the add in bb1 and by the branch in bb0.
        let v0_uses = &uses[&Value::from_index(0)];
        assert!(v0_uses.contains(&bb0) && v0_uses.contains(&bb1));
    }
}
