//! Arena-backed list storage for instruction operands.
//!
//! Every variable-length instruction payload — parallel-copy move lists,
//! φ-argument lists, call-argument lists — lives in a function-owned
//! [`ListPool`] instead of a per-instruction `Vec`, in the style of
//! Cranelift's `EntityList`/value-list arenas. An instruction stores only a
//! small [`PoolList`] handle (offset, length, capacity); the elements live in
//! one flat vector per element type, grouped in [`IrPools`].
//!
//! The pools recycle storage at two granularities:
//!
//! * **per list** — blocks are allocated in power-of-two size classes with a
//!   free list per class, so a list retired by `remove_inst`, the coalescer's
//!   rewrite or sequentialization is reused by the next allocation (the
//!   parallel-copy churn of copy insertion runs allocation-free in steady
//!   state once the pool has warmed up);
//! * **per function** — [`ListPool::clear`] (via [`IrPools::clear`]) drops
//!   every list while keeping the flat vector's capacity, following the same
//!   `truncate` discipline as the recycled analyses, so a [`crate::Function`]
//!   recycled across the corpus engines resets in O(current function) and
//!   rebuilds with deterministic offsets (a recycled build is bit-identical
//!   to a fresh one).

use std::fmt;
use std::marker::PhantomData;

use crate::entity::{EntityRef, Value};
use crate::instruction::{CopyPair, PhiArg};

/// An element type storable in a [`ListPool`]. `nil()` is the placeholder
/// written into capacity slots past a list's length; its value is never
/// read. The free-link codec threads the per-class free lists *through the
/// retired blocks themselves* (the first slot of a retired block stores the
/// offset-plus-one of the next retired block of its class), so retiring and
/// reusing lists never touches the heap.
pub trait PoolElem: Copy {
    /// The placeholder element.
    fn nil() -> Self;
    /// Encodes a free-list link (an offset + 1, or 0 for "end of list").
    fn from_free_link(link: u32) -> Self;
    /// Decodes the free-list link stored by [`PoolElem::from_free_link`].
    fn free_link(self) -> u32;
}

impl PoolElem for Value {
    fn nil() -> Self {
        Value::new(0)
    }
    fn from_free_link(link: u32) -> Self {
        Value::new(link as usize)
    }
    fn free_link(self) -> u32 {
        self.index() as u32
    }
}

impl PoolElem for PhiArg {
    fn nil() -> Self {
        PhiArg { block: crate::entity::Block::new(0), value: Value::new(0) }
    }
    fn from_free_link(link: u32) -> Self {
        PhiArg { block: crate::entity::Block::new(link as usize), value: Value::new(0) }
    }
    fn free_link(self) -> u32 {
        self.block.index() as u32
    }
}

impl PoolElem for CopyPair {
    fn nil() -> Self {
        CopyPair { dst: Value::new(0), src: Value::new(0) }
    }
    fn from_free_link(link: u32) -> Self {
        CopyPair { dst: Value::new(link as usize), src: Value::new(0) }
    }
    fn free_link(self) -> u32 {
        self.dst.index() as u32
    }
}

/// Handle to a list stored in a [`ListPool`]: a range plus its capacity.
/// `Default` is the empty list, which owns no pool block.
///
/// Handle equality is *identity* (same pool range), not content equality —
/// which is why [`crate::Function`] implements its equality by resolving
/// handles through the pools.
pub struct PoolList<T> {
    offset: u32,
    len: u32,
    cap: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for PoolList<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PoolList<T> {}
impl<T> PartialEq for PoolList<T> {
    fn eq(&self, other: &Self) -> bool {
        self.offset == other.offset && self.len == other.len && self.cap == other.cap
    }
}
impl<T> Eq for PoolList<T> {}

impl<T> Default for PoolList<T> {
    fn default() -> Self {
        Self { offset: 0, len: 0, cap: 0, _marker: PhantomData }
    }
}

impl<T> fmt::Debug for PoolList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PoolList[{}..+{} cap {}]", self.offset, self.len, self.cap)
    }
}

impl<T> PoolList<T> {
    /// Number of elements in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The list's offset into the pool's flat storage (diagnostics and the
    /// pool-invariant tests; empty lists report 0).
    pub fn offset(&self) -> usize {
        self.offset as usize
    }

    /// The list's block capacity in the pool's flat storage (diagnostics and
    /// the pool-invariant tests; empty lists report 0).
    pub fn capacity(&self) -> usize {
        self.cap as usize
    }
}

/// Smallest block capacity handed out (power of two).
const MIN_CAP: u32 = 2;

/// Number of size classes (`MIN_CAP << k`, k in 0..NUM_CLASSES) — covers
/// lists of up to 2³¹ elements.
const NUM_CLASSES: usize = 31;

/// Arena of lists of `T` with size-class free lists threaded through the
/// retired blocks (no side allocation: retiring and reusing lists never
/// touches the heap).
#[derive(Debug)]
pub struct ListPool<T: PoolElem> {
    data: Vec<T>,
    /// Head of the free list of each size class, encoded as offset + 1
    /// (0 = empty). The next link of a retired block lives in its first
    /// element slot.
    free_heads: [u32; NUM_CLASSES],
}

impl<T: PoolElem> Clone for ListPool<T> {
    fn clone(&self) -> Self {
        Self { data: self.data.clone(), free_heads: self.free_heads }
    }

    /// Capacity-reusing clone: the flat arena is copied in place, so
    /// repeatedly snapshotting into the same pool allocates nothing once the
    /// arena capacity suffices.
    fn clone_from(&mut self, source: &Self) {
        self.data.clone_from(&source.data);
        self.free_heads = source.free_heads;
    }
}

impl<T: PoolElem> Default for ListPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

fn class_of(cap: u32) -> usize {
    debug_assert!(cap.is_power_of_two() && cap >= MIN_CAP);
    (cap / MIN_CAP).trailing_zeros() as usize
}

impl<T: PoolElem> ListPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self { data: Vec::new(), free_heads: [0; NUM_CLASSES] }
    }

    /// Drops every list while keeping the flat vector's capacity — the
    /// per-function reset of the `truncate` discipline. After `clear`, block
    /// offsets are handed out exactly as by a fresh pool, so a recycled
    /// function rebuilds bit-identically to a fresh one.
    pub fn clear(&mut self) {
        self.data.clear();
        self.free_heads = [0; NUM_CLASSES];
    }

    /// Total number of element slots currently materialized (live lists plus
    /// retired blocks); the size driver of the pool's heap footprint.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if no block has been allocated since the last clear.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves room for at least `additional` more element slots, so a
    /// caller that knows its growth up front pays at most one allocation.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    fn alloc_block(&mut self, cap: u32) -> u32 {
        let class = class_of(cap);
        let head = self.free_heads[class];
        if head != 0 {
            let offset = head - 1;
            self.free_heads[class] = self.data[offset as usize].free_link();
            return offset;
        }
        let offset = self.data.len() as u32;
        self.data.resize(self.data.len() + cap as usize, T::nil());
        offset
    }

    fn free_block(&mut self, offset: u32, cap: u32) {
        let class = class_of(cap);
        self.data[offset as usize] = T::from_free_link(self.free_heads[class]);
        self.free_heads[class] = offset + 1;
    }

    /// Builds a list holding a copy of `items`.
    pub fn from_slice(&mut self, items: &[T]) -> PoolList<T> {
        if items.is_empty() {
            return PoolList::default();
        }
        let cap = (items.len() as u32).next_power_of_two().max(MIN_CAP);
        let offset = self.alloc_block(cap);
        let start = offset as usize;
        self.data[start..start + items.len()].copy_from_slice(items);
        PoolList { offset, len: items.len() as u32, cap, _marker: PhantomData }
    }

    /// Appends `item` to `list`, growing its block (through the free lists)
    /// when the capacity is exhausted.
    pub fn push(&mut self, list: &mut PoolList<T>, item: T) {
        if list.len == list.cap {
            let new_cap = (list.cap * 2).max(MIN_CAP);
            let new_offset = self.alloc_block(new_cap);
            if list.cap > 0 {
                let old = list.offset as usize;
                self.data.copy_within(old..old + list.len as usize, new_offset as usize);
                self.free_block(list.offset, list.cap);
            }
            list.offset = new_offset;
            list.cap = new_cap;
        }
        self.data[(list.offset + list.len) as usize] = item;
        list.len += 1;
    }

    /// Shrinks `list` to `len` elements (which must not exceed the current
    /// length). The block keeps its capacity for reuse by later pushes.
    pub fn truncate(&mut self, list: &mut PoolList<T>, len: usize) {
        assert!(len <= list.len as usize, "PoolList::truncate beyond length");
        list.len = len as u32;
    }

    /// Retires `list`'s block into the free lists and resets the handle to
    /// the empty list.
    pub fn retire(&mut self, list: &mut PoolList<T>) {
        if list.cap > 0 {
            self.free_block(list.offset, list.cap);
        }
        *list = PoolList::default();
    }

    /// The elements of `list`.
    #[inline]
    pub fn get(&self, list: PoolList<T>) -> &[T] {
        &self.data[list.offset as usize..(list.offset + list.len) as usize]
    }

    /// The elements of `list`, mutably.
    #[inline]
    pub fn get_mut(&mut self, list: PoolList<T>) -> &mut [T] {
        &mut self.data[list.offset as usize..(list.offset + list.len) as usize]
    }
}

/// The operand arenas owned by one [`crate::Function`]: the value pool
/// (call-argument and φ-argument lists — the φ side keyed by [`PhiArg`] so
/// each entry carries its predecessor edge) and the copy pool (parallel-copy
/// move lists).
#[derive(Debug, Default)]
pub struct IrPools {
    /// Call-argument lists.
    pub values: ListPool<Value>,
    /// φ-argument lists.
    pub phis: ListPool<PhiArg>,
    /// Parallel-copy move lists.
    pub copies: ListPool<CopyPair>,
}

impl Clone for IrPools {
    fn clone(&self) -> Self {
        Self { values: self.values.clone(), phis: self.phis.clone(), copies: self.copies.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.values.clone_from(&source.values);
        self.phis.clone_from(&source.phis);
        self.copies.clone_from(&source.copies);
    }
}

impl IrPools {
    /// Creates empty pools.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-function reset: drops every list, keeps the flat capacity.
    pub fn clear(&mut self) {
        self.values.clear();
        self.phis.clear();
        self.copies.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Value {
        Value::new(i)
    }

    #[test]
    fn from_slice_and_get_round_trip() {
        let mut pool: ListPool<Value> = ListPool::new();
        let list = pool.from_slice(&[v(1), v(2), v(3)]);
        assert_eq!(pool.get(list), &[v(1), v(2), v(3)]);
        assert_eq!(list.len(), 3);
        let empty = pool.from_slice(&[]);
        assert!(empty.is_empty());
        assert!(pool.get(empty).is_empty());
    }

    #[test]
    fn push_grows_through_size_classes() {
        let mut pool: ListPool<Value> = ListPool::new();
        let mut list = PoolList::default();
        for i in 0..40 {
            pool.push(&mut list, v(i));
        }
        assert_eq!(list.len(), 40);
        let items: Vec<Value> = pool.get(list).to_vec();
        assert_eq!(items, (0..40).map(v).collect::<Vec<_>>());
    }

    #[test]
    fn retired_blocks_are_reused() {
        let mut pool: ListPool<Value> = ListPool::new();
        let mut a = pool.from_slice(&[v(1), v(2), v(3)]); // cap 4
        let offset_a = a.offset;
        pool.retire(&mut a);
        assert!(a.is_empty());
        // The next allocation of the same class reuses the retired block.
        let b = pool.from_slice(&[v(7), v(8), v(9), v(10)]);
        assert_eq!(b.offset, offset_a);
        let len_before = pool.len();
        let mut c = pool.from_slice(&[v(4)]); // cap 2: fresh block
        assert!(pool.len() > len_before);
        pool.retire(&mut c);
        let d = pool.from_slice(&[v(5), v(6)]);
        assert_eq!(pool.len(), len_before + 2, "class-2 block recycled, no growth");
        assert_eq!(pool.get(d), &[v(5), v(6)]);
    }

    #[test]
    fn truncate_keeps_capacity_for_reuse() {
        let mut pool: ListPool<Value> = ListPool::new();
        let mut list = pool.from_slice(&[v(1), v(2), v(3)]);
        pool.truncate(&mut list, 1);
        assert_eq!(pool.get(list), &[v(1)]);
        let len_before = pool.len();
        pool.push(&mut list, v(9));
        pool.push(&mut list, v(10));
        pool.push(&mut list, v(11)); // back to 4 ≤ cap: no growth
        assert_eq!(pool.len(), len_before);
        assert_eq!(pool.get(list), &[v(1), v(9), v(10), v(11)]);
    }

    #[test]
    #[should_panic(expected = "beyond length")]
    fn truncate_beyond_length_panics() {
        let mut pool: ListPool<Value> = ListPool::new();
        let mut list = pool.from_slice(&[v(1)]);
        pool.truncate(&mut list, 2);
    }

    #[test]
    fn clear_resets_offsets_deterministically() {
        let mut pool: ListPool<Value> = ListPool::new();
        let a1 = pool.from_slice(&[v(1), v(2)]);
        let b1 = pool.from_slice(&[v(3), v(4), v(5)]);
        pool.clear();
        let a2 = pool.from_slice(&[v(1), v(2)]);
        let b2 = pool.from_slice(&[v(3), v(4), v(5)]);
        assert_eq!(a1, a2, "recycled pool hands out the same offsets as a fresh one");
        assert_eq!(b1, b2);
    }

    #[test]
    fn grow_copies_across_a_free_list_hit() {
        // A retired small block sits *before* the growing list in the flat
        // vector; growth into it must copy the elements correctly.
        let mut pool: ListPool<Value> = ListPool::new();
        let mut small = pool.from_slice(&[v(1), v(2), v(3), v(4)]); // cap 4 at offset 0
        pool.retire(&mut small);
        let mut list = pool.from_slice(&[v(8), v(9)]); // cap 2, fresh block
        pool.push(&mut list, v(10)); // grows to cap 4: reuses offset 0
        assert_eq!(list.offset, 0);
        assert_eq!(pool.get(list), &[v(8), v(9), v(10)]);
    }
}
