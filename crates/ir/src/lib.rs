//! # ossa-ir — SSA intermediate representation substrate
//!
//! This crate provides the intermediate representation used by the
//! reproduction of *"Revisiting Out-of-SSA Translation for Correctness, Code
//! Quality, and Efficiency"* (Boissinot, Darte, Rastello, Dupont de Dinechin,
//! Guillon — CGO 2009):
//!
//! * dense entity references and maps ([`entity`]),
//! * a small but complete instruction set ([`instruction`]), including
//!   parallel copies, φ-functions, branches that *use* values and the
//!   `br_dec` branch that *defines* a value (the paper's Figure 2 case),
//! * the [`Function`] container and a [`builder::FunctionBuilder`],
//! * CFG, dominator tree, dominance frontiers, loop nesting and static
//!   block frequencies ([`cfg`], [`dominance`], [`loops`]),
//! * a verifier ([`verify`]) and a printer ([`print`]).
//!
//! # Examples
//!
//! ```
//! use ossa_ir::builder::FunctionBuilder;
//! use ossa_ir::{BinaryOp, verify_ssa};
//!
//! let mut b = FunctionBuilder::new("add1", 1);
//! let entry = b.create_block();
//! b.set_entry(entry);
//! b.switch_to_block(entry);
//! let x = b.param(0);
//! let one = b.iconst(1);
//! let sum = b.binary(BinaryOp::Add, x, one);
//! b.ret(Some(sum));
//! let func = b.finish();
//! verify_ssa(&func)?;
//! # Ok::<(), ossa_ir::verify::VerifierErrors>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod builder;
pub mod cfg;
pub mod dominance;
pub mod entity;
pub mod fnpool;
pub mod function;
pub mod instruction;
pub mod loops;
pub mod pool;
pub mod print;
pub mod verify;

pub use analysis::AnalysisManager;
pub use cfg::ControlFlowGraph;
pub use dominance::{DominanceFrontiers, DominatorTree};
pub use entity::{Block, EntitySet, Inst, PrimaryMap, SecondaryMap, Value};
pub use fnpool::{FunctionPool, PoolStats};
pub use function::{DefSite, Function};
pub use instruction::{
    BinaryOp, CmpOp, CopyList, CopyPair, InstData, PhiArg, PhiList, UnaryOp, ValueList,
};
pub use loops::{BlockFrequencies, LoopAnalysis};
pub use pool::{IrPools, ListPool, PoolList};
pub use verify::{verify_cfg, verify_ssa};
