//! A small deterministic PRNG (splitmix64 seeding + xoshiro256**).
//!
//! The build environment has no network access, so the usual `rand` crate is
//! unavailable; the generator only needs a seedable, statistically decent
//! stream, which this provides with ~40 lines of std-only code. The exact
//! stream is part of the corpus definition: changing it changes every
//! generated workload, so treat the constants as frozen.

/// Deterministic pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)],
        }
    }

    /// The next 64 random bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small bounds used by the generator.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// A uniform `i64` in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as usize) as i64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.range_i64(-8, 8);
            assert!((-8..=8).contains(&v));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let r = rng.range_inclusive(2, 5);
            assert!((2..=5).contains(&r));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.below(4)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
