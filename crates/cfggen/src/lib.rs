//! # ossa-cfggen — synthetic workloads for the out-of-SSA evaluation
//!
//! The paper's evaluation runs on SPEC CINT2000 compiled by a production
//! compiler; neither is available in this reproduction, so this crate
//! *simulates* the workload: a seeded generator of structured,
//! always-terminating functions ([`gen`]) and a corpus of eleven simulated
//! benchmarks mirroring the SPEC CINT2000 line-up ([`spec`]).
//!
//! Generated functions are produced in pre-SSA (mutable virtual register)
//! form, converted to pruned SSA and then copy-propagated, which creates the
//! overlapping φ-related live ranges the out-of-SSA translation is about.
//!
//! # Examples
//!
//! ```
//! use ossa_cfggen::{generate_ssa_function, GenConfig};
//! use ossa_ir::verify_ssa;
//!
//! let (func, stats) = generate_ssa_function("example", &GenConfig::small(), 1);
//! verify_ssa(&func)?;
//! assert!(stats.phis + stats.copies_propagated > 0);
//! # Ok::<(), ossa_ir::verify::VerifierErrors>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gen;
pub mod rng;
pub mod spec;

pub use gen::{
    generate_function, generate_function_into, generate_function_into_scratch,
    generate_ssa_function, generate_ssa_function_into, generate_ssa_function_into_cached,
    pin_call_conventions, to_optimized_ssa, to_optimized_ssa_cached, GenConfig, GenScratch,
    OptimizedSsaStats,
};
pub use spec::{
    spec_config, spec_like_corpus, spec_num_functions, BenchmarkSpec, Workload, SPEC_BENCHMARKS,
};
