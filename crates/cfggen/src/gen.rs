//! Seeded random generator of structured, always-terminating functions.
//!
//! The generator produces *pre-SSA* functions (mutable virtual registers, no
//! φ-functions) made of nested if/else regions, bounded counted loops
//! (optionally using the `br_dec` hardware-loop terminator), calls, loads and
//! stores. [`to_optimized_ssa`] then converts a generated function to pruned
//! SSA and runs copy propagation — the combination that produces the
//! non-conventional SSA the out-of-SSA translation is evaluated on.

use ossa_ir::builder::FunctionBuilder;
use ossa_ir::entity::Value;
use ossa_ir::{BinaryOp, CmpOp, Function, InstData};
use ossa_liveness::FunctionAnalyses;
use ossa_ssa::{
    construct_ssa, construct_ssa_scratch, eliminate_dead_code, eliminate_dead_code_scratch,
    propagate_copies_keeping, propagate_copies_keeping_scratch, CopyPropagation, SsaScratch,
};

use crate::rng::SmallRng;

/// Recycled working storage for repeated function generation.
///
/// Holds the generator's own buffers (the variable pool, call-argument
/// assembly) plus an [`SsaScratch`] for the SSA conversion passes. Create one
/// per worker and thread it through [`generate_function_into_scratch`] /
/// [`to_optimized_ssa_cached`] / [`generate_ssa_function_into_cached`]: after
/// one warm-up function, generating and SSA-converting a function through a
/// recycled [`Function`] slot allocates nothing.
#[derive(Debug, Default)]
pub struct GenScratch {
    vars: Vec<Value>,
    args: Vec<Value>,
    /// Working storage for the SSA passes (construction, copy propagation,
    /// dead-code elimination).
    pub ssa: SsaScratch,
}

impl GenScratch {
    /// Creates empty scratch storage. Nothing is allocated until first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Tuning knobs for the random function generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of mutable virtual registers the function computes with.
    pub num_vars: usize,
    /// Rough number of statements to generate (controls function size).
    pub num_stmts: usize,
    /// Maximum nesting depth of if/else and loop regions.
    pub max_depth: usize,
    /// Probability of emitting a call statement.
    pub call_density: f64,
    /// Probability of emitting a load/store statement.
    pub memory_density: f64,
    /// Whether counted loops may use the `br_dec` terminator.
    pub enable_brdec: bool,
    /// Number of function parameters.
    pub num_params: u32,
    /// Probability of emitting an *irreducible* region — a bounded
    /// multi-entry loop (the entry branches into both halves of a cycle, so
    /// neither half dominates the other). Defaults to `0.0`, and the
    /// generator consumes **no** RNG draws for the knob at `0.0`, so every
    /// default-config seed produces bit-identical functions to builds
    /// without the knob (the corpus fingerprints do not move).
    pub irreducible_density: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            num_vars: 8,
            num_stmts: 40,
            max_depth: 3,
            call_density: 0.08,
            memory_density: 0.08,
            enable_brdec: true,
            num_params: 3,
            irreducible_density: 0.0,
        }
    }
}

impl GenConfig {
    /// A small configuration for quick tests.
    pub fn small() -> Self {
        Self { num_vars: 4, num_stmts: 12, max_depth: 2, ..Self::default() }
    }

    /// A larger configuration for benchmarks.
    pub fn large() -> Self {
        Self { num_vars: 16, num_stmts: 160, max_depth: 4, ..Self::default() }
    }
}

struct Gen<'a> {
    b: FunctionBuilder,
    cfg: &'a GenConfig,
    rng: SmallRng,
    vars: &'a mut Vec<Value>,
    args_buf: &'a mut Vec<Value>,
    callee_counter: u32,
}

impl<'a> Gen<'a> {
    fn random_var(&mut self) -> Value {
        self.vars[self.rng.below(self.vars.len())]
    }

    fn random_binop(&mut self) -> BinaryOp {
        BinaryOp::ALL[self.rng.below(BinaryOp::ALL.len())]
    }

    fn random_cmp(&mut self) -> CmpOp {
        CmpOp::ALL[self.rng.below(CmpOp::ALL.len())]
    }

    /// Emits one simple (non-control-flow) statement in the current block.
    fn gen_simple_stmt(&mut self) {
        let roll: f64 = self.rng.gen_f64();
        if roll < self.cfg.call_density {
            // dst = call f(args)
            let dst = self.random_var();
            let num_args = self.rng.range_inclusive(0, 3usize.min(self.vars.len()));
            self.args_buf.clear();
            for _ in 0..num_args {
                let arg = self.random_var();
                self.args_buf.push(arg);
            }
            let callee = self.callee_counter % 5;
            self.callee_counter += 1;
            let block = self.b.current_block();
            let args = self.b.func_mut().make_value_list(self.args_buf.as_slice());
            self.b.func_mut().append_inst(block, InstData::Call { dst: Some(dst), callee, args });
        } else if roll < self.cfg.call_density + self.cfg.memory_density {
            // Either a store or a load through a pool variable address.
            let addr = self.random_var();
            if self.rng.gen_bool(0.5) {
                let value = self.random_var();
                let block = self.b.current_block();
                self.b.func_mut().append_inst(block, InstData::Store { addr, value });
            } else {
                let dst = self.random_var();
                let block = self.b.current_block();
                self.b.func_mut().append_inst(block, InstData::Load { dst, addr });
            }
        } else if roll < self.cfg.call_density + self.cfg.memory_density + 0.25 {
            // dst = var (a copy: fodder for copy propagation)
            let dst = self.random_var();
            let src = self.random_var();
            if dst != src {
                self.b.copy_to(dst, src);
            } else {
                let imm = self.rng.range_i64(-8, 8);
                self.b.iconst_to(dst, imm);
            }
        } else {
            // dst = a op b, with b either a variable or a constant.
            let dst = self.random_var();
            let lhs = self.random_var();
            let op = self.random_binop();
            if self.rng.gen_bool(0.3) {
                let imm = self.rng.range_i64(-16, 16);
                let tmp = self.b.declare_value();
                self.b.iconst_to(tmp, imm);
                self.b.binary_to(op, dst, lhs, tmp);
            } else {
                let rhs = self.random_var();
                self.b.binary_to(op, dst, lhs, rhs);
            }
        }
    }

    /// Generates a region of roughly `budget` statements at nesting `depth`,
    /// starting in the current block. Leaves the builder positioned in the
    /// block where control continues.
    fn gen_region(&mut self, budget: usize, depth: usize) {
        let mut remaining = budget;
        while remaining > 0 {
            // The irreducible knob rolls first, but only when enabled: at
            // density 0.0 this consumes no RNG draw, so the default stream —
            // and with it every committed corpus fingerprint — is unchanged.
            if self.cfg.irreducible_density > 0.0
                && depth < self.cfg.max_depth
                && remaining >= 6
                && self.rng.gen_f64() < self.cfg.irreducible_density
            {
                let inner = remaining / 2;
                self.gen_irreducible_loop(inner, depth);
                remaining = remaining.saturating_sub(inner + 3);
                continue;
            }
            let roll: f64 = self.rng.gen_f64();
            if depth < self.cfg.max_depth && roll < 0.12 && remaining >= 6 {
                let inner = remaining / 2;
                self.gen_if_else(inner, depth);
                remaining = remaining.saturating_sub(inner + 2);
            } else if depth < self.cfg.max_depth && roll < 0.22 && remaining >= 6 {
                let inner = remaining / 2;
                self.gen_counted_loop(inner, depth);
                remaining = remaining.saturating_sub(inner + 3);
            } else {
                self.gen_simple_stmt();
                remaining -= 1;
            }
        }
    }

    /// `if (var cmp const) { ... } else { ... }` followed by a join block.
    fn gen_if_else(&mut self, budget: usize, depth: usize) {
        let scrutinee = self.random_var();
        let cmp = self.random_cmp();
        let threshold = self.rng.range_i64(-4, 4);
        let tval = self.b.declare_value();
        self.b.iconst_to(tval, threshold);
        let cond = self.b.declare_value();
        let block = self.b.current_block();
        self.b
            .func_mut()
            .append_inst(block, InstData::Cmp { op: cmp, dst: cond, args: [scrutinee, tval] });
        let then_bb = self.b.create_block();
        let else_bb = self.b.create_block();
        let join = self.b.create_block();
        self.b.branch(cond, then_bb, else_bb);

        self.b.switch_to_block(then_bb);
        self.gen_region(budget / 2, depth + 1);
        self.b.jump(join);

        self.b.switch_to_block(else_bb);
        self.gen_region(budget - budget / 2, depth + 1);
        self.b.jump(join);

        self.b.switch_to_block(join);
    }

    /// A loop executing a small constant number of iterations, either with an
    /// explicit decrement-and-compare or with the `br_dec` terminator.
    fn gen_counted_loop(&mut self, budget: usize, depth: usize) {
        let iterations = self.rng.range_i64(1, 5);
        // Dedicated counter variable, never touched by the loop body.
        let counter = self.b.declare_value();
        self.b.iconst_to(counter, iterations);

        let header = self.b.create_block();
        let exit = self.b.create_block();
        self.b.jump(header);
        self.b.switch_to_block(header);
        self.gen_region(budget, depth + 1);

        let use_brdec = self.cfg.enable_brdec && self.rng.gen_bool(0.4);
        if use_brdec {
            let block = self.b.current_block();
            self.b.func_mut().append_inst(
                block,
                InstData::BrDec { counter, dec: counter, loop_dest: header, exit_dest: exit },
            );
        } else {
            let one = self.b.declare_value();
            self.b.iconst_to(one, 1);
            self.b.binary_to(BinaryOp::Sub, counter, counter, one);
            let zero = self.b.declare_value();
            self.b.iconst_to(zero, 0);
            let cond = self.b.declare_value();
            let block = self.b.current_block();
            self.b.func_mut().append_inst(
                block,
                InstData::Cmp { op: CmpOp::Gt, dst: cond, args: [counter, zero] },
            );
            self.b.branch(cond, header, exit);
        }
        self.b.switch_to_block(exit);
    }

    /// A bounded *multi-entry* loop — the canonical irreducible shape. The
    /// current block branches into both halves `a` and `b` of the cycle
    /// `a → b → a`, so neither half dominates the other and the retreating
    /// edge closing the cycle fails the reducibility criterion (its target
    /// does not dominate its source). A dedicated counter decremented in `b`
    /// bounds the trip count, keeping generated functions terminating by
    /// construction; every path around the cycle passes through `b`.
    fn gen_irreducible_loop(&mut self, budget: usize, depth: usize) {
        let iterations = self.rng.range_i64(1, 5);
        // Dedicated counter variable, never touched by the loop body.
        let counter = self.b.declare_value();
        self.b.iconst_to(counter, iterations);

        // The entry comparison picks which half of the cycle runs first.
        let scrutinee = self.random_var();
        let cmp = self.random_cmp();
        let threshold = self.rng.range_i64(-4, 4);
        let tval = self.b.declare_value();
        self.b.iconst_to(tval, threshold);
        let entry_cond = self.b.declare_value();
        let block = self.b.current_block();
        self.b.func_mut().append_inst(
            block,
            InstData::Cmp { op: cmp, dst: entry_cond, args: [scrutinee, tval] },
        );
        let a = self.b.create_block();
        let b = self.b.create_block();
        let exit = self.b.create_block();
        self.b.branch(entry_cond, a, b);

        // First half: statements, then fall into the second half.
        self.b.switch_to_block(a);
        self.gen_region(budget / 2, depth + 1);
        self.b.jump(b);

        // Second half: statements, decrement the counter, then either take
        // the retreating edge back to `a` or leave the cycle.
        self.b.switch_to_block(b);
        self.gen_region(budget - budget / 2, depth + 1);
        let one = self.b.declare_value();
        self.b.iconst_to(one, 1);
        self.b.binary_to(BinaryOp::Sub, counter, counter, one);
        let zero = self.b.declare_value();
        self.b.iconst_to(zero, 0);
        let back_cond = self.b.declare_value();
        let block = self.b.current_block();
        self.b.func_mut().append_inst(
            block,
            InstData::Cmp { op: CmpOp::Gt, dst: back_cond, args: [counter, zero] },
        );
        self.b.branch(back_cond, a, exit);

        self.b.switch_to_block(exit);
    }
}

/// Generates one pre-SSA function named `name` from `seed`.
pub fn generate_function(name: impl Into<String>, config: &GenConfig, seed: u64) -> Function {
    let mut scratch = GenScratch::new();
    generate_with(FunctionBuilder::new(name, config.num_params), config, seed, &mut scratch)
}

/// Like [`generate_function`], building through the recycled storage of
/// `func` ([`FunctionBuilder::reuse`]): blocks, instructions, values and the
/// operand arenas are reset in O(current function) and reused, and the
/// result is bit-identical to a fresh [`generate_function`] build.
pub fn generate_function_into(
    func: Function,
    name: impl AsRef<str>,
    config: &GenConfig,
    seed: u64,
) -> Function {
    let mut scratch = GenScratch::new();
    generate_function_into_scratch(func, name, config, seed, &mut scratch)
}

/// Like [`generate_function_into`], additionally recycling the generator's
/// working buffers from `scratch`. With a warm `func` slot (e.g. from a
/// [`ossa_ir::FunctionPool`]) and warm scratch, generation allocates
/// nothing; the result stays bit-identical to a fresh build.
pub fn generate_function_into_scratch(
    func: Function,
    name: impl AsRef<str>,
    config: &GenConfig,
    seed: u64,
    scratch: &mut GenScratch,
) -> Function {
    generate_with(FunctionBuilder::reuse(func, name, config.num_params), config, seed, scratch)
}

fn generate_with(
    builder: FunctionBuilder,
    config: &GenConfig,
    seed: u64,
    scratch: &mut GenScratch,
) -> Function {
    scratch.vars.clear();
    let mut gen = Gen {
        b: builder,
        cfg: config,
        rng: SmallRng::seed_from_u64(seed),
        vars: &mut scratch.vars,
        args_buf: &mut scratch.args,
        callee_counter: 0,
    };

    let entry = gen.b.create_block();
    gen.b.set_entry(entry);
    gen.b.switch_to_block(entry);

    // Initialize the variable pool from parameters and constants so that the
    // function's behaviour depends on its inputs.
    for i in 0..config.num_vars {
        let var = gen.b.declare_value();
        if (i as u32) < config.num_params {
            let param = gen.b.param(i as u32);
            gen.b.copy_to(var, param);
        } else {
            gen.b.iconst_to(var, i as i64 + 1);
        }
        gen.vars.push(var);
    }

    gen.gen_region(config.num_stmts, 0);

    // Return a mix of the pool so most variables are live at the end (this
    // keeps loop-carried φ results live past their loops, the lost-copy
    // shape the out-of-SSA translation must handle).
    let mut acc = gen.vars[0];
    for i in 1..gen.vars.len() {
        let var = gen.vars[i];
        let sum = gen.b.declare_value();
        gen.b.binary_to(BinaryOp::Add, sum, acc, var);
        acc = sum;
    }
    gen.b.ret(Some(acc));
    gen.b.finish()
}

/// Statistics about the SSA conversion of a generated function.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimizedSsaStats {
    /// φ-functions inserted by SSA construction.
    pub phis: usize,
    /// Copies removed by copy propagation.
    pub copies_propagated: usize,
    /// Instructions removed by dead-code elimination.
    pub dead_removed: usize,
}

/// Converts a pre-SSA function into optimized (generally non-conventional)
/// SSA: construction, copy propagation, dead-code elimination. A third of
/// the copies are deliberately left in place (real optimizers never remove
/// all of them), which is where the coalescing strategies differ.
pub fn to_optimized_ssa(func: &mut Function) -> OptimizedSsaStats {
    let construction = construct_ssa(func);
    let prop = propagate_copies_keeping(func, 3);
    let dce = eliminate_dead_code(func);
    OptimizedSsaStats {
        phis: construction.phis_inserted,
        copies_propagated: prop.copies_removed,
        dead_removed: dce.insts_removed,
    }
}

/// Like [`to_optimized_ssa`], sharing the analysis cache in `analyses` and
/// recycling every working buffer from `scratch`.
///
/// This is the fix for the historical waste of the `*_into` path: the plain
/// [`to_optimized_ssa`] re-derives a fresh analysis cache inside SSA
/// construction even when the caller already owns a recycled one. Here the
/// CFG-level analyses are computed once into `analyses` and the
/// instruction-level caches are invalidated exactly when a pass changed the
/// instruction stream (the same contract as the `*_cached` passes). With
/// warm scratch and a recycled `func` slot the whole conversion allocates
/// nothing; the result is bit-identical to [`to_optimized_ssa`].
pub fn to_optimized_ssa_cached(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut GenScratch,
) -> OptimizedSsaStats {
    let (phis, _values_created) = construct_ssa_scratch(func, analyses, &mut scratch.ssa);
    let prop = propagate_copies_keeping_scratch(func, 3, &mut scratch.ssa);
    if prop != CopyPropagation::default() {
        analyses.invalidate_instructions();
    }
    let dce = eliminate_dead_code_scratch(func, &mut scratch.ssa);
    if dce.insts_removed > 0 {
        analyses.invalidate_instructions();
    }
    OptimizedSsaStats {
        phis,
        copies_propagated: prop.copies_removed,
        dead_removed: dce.insts_removed,
    }
}

/// Generates a function and converts it to optimized SSA in one call.
pub fn generate_ssa_function(
    name: impl Into<String>,
    config: &GenConfig,
    seed: u64,
) -> (Function, OptimizedSsaStats) {
    let mut func = generate_function(name, config, seed);
    let stats = to_optimized_ssa(&mut func);
    (func, stats)
}

/// Like [`generate_ssa_function`], building through the recycled storage of
/// `func`; the result is bit-identical to the fresh entry point.
pub fn generate_ssa_function_into(
    func: Function,
    name: impl AsRef<str>,
    config: &GenConfig,
    seed: u64,
) -> (Function, OptimizedSsaStats) {
    let mut analyses = FunctionAnalyses::new();
    let mut scratch = GenScratch::new();
    generate_ssa_function_into_cached(func, name, config, seed, &mut analyses, &mut scratch)
}

/// Generates a function into the recycled storage of `func` and converts it
/// to optimized SSA through the shared `analyses` cache and recycled
/// `scratch` buffers — the pooled streaming path's builder protocol. After
/// one warm-up cycle, building the next function through a retired pool slot
/// allocates nothing; results are bit-identical to [`generate_ssa_function`].
pub fn generate_ssa_function_into_cached(
    func: Function,
    name: impl AsRef<str>,
    config: &GenConfig,
    seed: u64,
    analyses: &mut FunctionAnalyses,
    scratch: &mut GenScratch,
) -> (Function, OptimizedSsaStats) {
    let mut func = generate_function_into_scratch(func, name, config, seed, scratch);
    // The slot now holds an entirely different function: every cached
    // analysis (CFG-level included) is stale.
    analyses.invalidate_cfg();
    let stats = to_optimized_ssa_cached(&mut func, analyses, scratch);
    (func, stats)
}

/// Pins the results and first arguments of calls to architectural registers,
/// emulating calling-convention renaming constraints. Returns the number of
/// values pinned.
pub fn pin_call_conventions(func: &mut Function) -> usize {
    use ossa_ir::instruction::callconv;
    let mut pinned = 0;
    // Pinning never changes the layout or the block instruction lists, so
    // everything is walked by index; the covered argument prefix is bounded
    // by the number of argument registers, so a fixed buffer suffices and
    // the pass allocates nothing.
    let mut covered = [Value::from_index(0); callconv::NUM_ARG_REGS];
    for bi in 0..func.layout().len() {
        let block = func.layout()[bi];
        for ii in 0..func.block_len(block) {
            let inst = func.block_insts(block)[ii];
            if let InstData::Call { dst, args, .. } = *func.inst(inst) {
                let mut covered_len = 0usize;
                for &arg in func.value_list(args).iter().take(callconv::NUM_ARG_REGS) {
                    covered[covered_len] = arg;
                    covered_len += 1;
                }
                if let Some(dst) = dst {
                    func.pin_value(dst, callconv::RETURN_REG);
                    pinned += 1;
                }
                for (i, &arg) in covered[..covered_len].iter().enumerate() {
                    if func.pinned_reg(arg).is_none() {
                        func.pin_value(arg, callconv::arg_reg(i));
                        pinned += 1;
                    }
                }
            }
        }
    }
    pinned
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::{verify_cfg, verify_ssa};

    #[test]
    fn generated_functions_are_structurally_valid() {
        for seed in 0..20 {
            let f = generate_function(format!("gen{seed}"), &GenConfig::small(), seed);
            verify_cfg(&f).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generated_functions_convert_to_valid_ssa() {
        for seed in 0..20 {
            let (f, stats) = generate_ssa_function(format!("gen{seed}"), &GenConfig::small(), seed);
            verify_ssa(&f).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Not a hard guarantee per seed, but the small config reliably
            // produces some copies to propagate.
            let _ = stats;
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_function("f", &GenConfig::default(), 42);
        let c = generate_function("f", &GenConfig::default(), 42);
        assert_eq!(a.display().to_string(), c.display().to_string());
        let d = generate_function("f", &GenConfig::default(), 43);
        assert_ne!(a.display().to_string(), d.display().to_string());
    }

    #[test]
    fn larger_configs_produce_larger_functions() {
        let small = generate_function("s", &GenConfig::small(), 7);
        let large = generate_function("l", &GenConfig::large(), 7);
        assert!(large.num_attached_insts() > small.num_attached_insts());
        assert!(large.num_blocks() >= small.num_blocks());
    }

    #[test]
    fn most_seeds_produce_phis_after_ssa_conversion() {
        let mut with_phis = 0;
        for seed in 0..10 {
            let (f, _) = generate_ssa_function("g", &GenConfig::default(), seed);
            if f.count_phis() > 0 {
                with_phis += 1;
            }
        }
        assert!(with_phis >= 8, "only {with_phis}/10 seeds produced phis");
    }

    #[test]
    fn pinning_marks_call_operands() {
        // Find a seed that generates at least one call.
        let config = GenConfig { call_density: 0.5, ..GenConfig::default() };
        let (mut f, _) = generate_ssa_function("calls", &config, 3);
        let pinned = pin_call_conventions(&mut f);
        assert!(pinned > 0);
        assert!(f.values().any(|v| f.pinned_reg(v).is_some()));
    }

    #[test]
    fn irreducible_knob_emits_multi_entry_loops() {
        use ossa_ir::{ControlFlowGraph, DominatorTree};
        let config = GenConfig { irreducible_density: 0.6, ..GenConfig::default() };
        let mut irreducible = 0;
        for seed in 0..10 {
            let f = generate_function("irr", &config, seed);
            verify_cfg(&f).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let cfg = ControlFlowGraph::compute(&f);
            let domtree = DominatorTree::compute(&f, &cfg);
            if !cfg.is_reducible(&domtree) {
                irreducible += 1;
            }
            // Irreducible functions still convert to valid SSA: dominance
            // frontiers are defined on arbitrary flow graphs.
            let (ssa, _) = generate_ssa_function("irr", &config, seed);
            verify_ssa(&ssa).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        assert!(irreducible >= 8, "only {irreducible}/10 seeds produced an irreducible CFG");
    }

    #[test]
    fn default_config_stays_reducible() {
        // The knob defaults to 0.0 and must not perturb the default stream:
        // every default-config function keeps a reducible CFG (the corpus
        // fingerprint gate pins the exact bytes; this pins the shape).
        use ossa_ir::{ControlFlowGraph, DominatorTree};
        for seed in 0..10 {
            let f = generate_function("red", &GenConfig::default(), seed);
            let cfg = ControlFlowGraph::compute(&f);
            let domtree = DominatorTree::compute(&f, &cfg);
            assert!(cfg.is_reducible(&domtree), "seed {seed} produced an irreducible CFG");
        }
    }

    #[test]
    fn generated_functions_terminate_under_interpretation() {
        // Termination by construction: loops are bounded by small constants.
        // (Executed via the integration tests with the interpreter; here we
        // just bound the static loop structure.)
        for seed in 0..10 {
            let f = generate_function("t", &GenConfig::default(), seed);
            let freqs = ossa_ir::BlockFrequencies::compute(&f);
            for block in f.blocks() {
                // max_depth 3 loops => static frequency at most 10^3.
                assert!(freqs.frequency(block) <= 1000.0 + f64::EPSILON);
            }
        }
    }
}
