//! A SPEC CINT2000-like corpus.
//!
//! The paper evaluates on the eleven C benchmarks of SPEC CINT2000 compiled
//! by a production compiler. SPEC sources and the ST200 toolchain are not
//! available here, so the corpus is *simulated*: for each benchmark name we
//! generate a deterministic set of functions whose count and size roughly
//! follow the relative scale of the original programs (gcc is much larger
//! than mcf, etc.). What matters for the algorithms under test is the CFG
//! shape, φ density and live-range overlap produced by SSA construction plus
//! copy propagation — which the generator provides — not the exact C source.

use ossa_ir::Function;

use crate::gen::{generate_ssa_function, pin_call_conventions, GenConfig};

/// Description of one simulated benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkSpec {
    /// SPEC benchmark name (e.g. `164.gzip`).
    pub name: &'static str,
    /// Number of functions to generate.
    pub num_functions: usize,
    /// Statement budget per function.
    pub stmts_per_function: usize,
    /// Number of mutable variables per function.
    pub num_vars: usize,
    /// Base RNG seed (function `i` uses `seed + i`).
    pub seed: u64,
}

/// One simulated benchmark: its name and its functions in optimized
/// (generally non-conventional) SSA form.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name.
    pub name: &'static str,
    /// Functions of the benchmark, already converted to optimized SSA.
    pub functions: Vec<Function>,
}

impl Workload {
    /// Total number of instructions across the workload's functions.
    pub fn total_insts(&self) -> usize {
        self.functions.iter().map(Function::num_attached_insts).sum()
    }

    /// Total number of φ-functions across the workload's functions.
    pub fn total_phis(&self) -> usize {
        self.functions.iter().map(Function::count_phis).sum()
    }
}

/// The eleven SPEC CINT2000 benchmarks the paper reports (eon, the C++
/// benchmark, is excluded exactly as in the paper), with relative sizes.
pub const SPEC_BENCHMARKS: [BenchmarkSpec; 11] = [
    BenchmarkSpec {
        name: "164.gzip",
        num_functions: 10,
        stmts_per_function: 60,
        num_vars: 10,
        seed: 164_000,
    },
    BenchmarkSpec {
        name: "175.vpr",
        num_functions: 14,
        stmts_per_function: 70,
        num_vars: 12,
        seed: 175_000,
    },
    BenchmarkSpec {
        name: "176.gcc",
        num_functions: 40,
        stmts_per_function: 90,
        num_vars: 16,
        seed: 176_000,
    },
    BenchmarkSpec {
        name: "181.mcf",
        num_functions: 6,
        stmts_per_function: 50,
        num_vars: 8,
        seed: 181_000,
    },
    BenchmarkSpec {
        name: "186.crafty",
        num_functions: 16,
        stmts_per_function: 90,
        num_vars: 14,
        seed: 186_000,
    },
    BenchmarkSpec {
        name: "197.parser",
        num_functions: 18,
        stmts_per_function: 60,
        num_vars: 10,
        seed: 197_000,
    },
    BenchmarkSpec {
        name: "253.perlbmk",
        num_functions: 26,
        stmts_per_function: 80,
        num_vars: 14,
        seed: 253_000,
    },
    BenchmarkSpec {
        name: "254.gap",
        num_functions: 24,
        stmts_per_function: 70,
        num_vars: 12,
        seed: 254_000,
    },
    BenchmarkSpec {
        name: "255.vortex",
        num_functions: 22,
        stmts_per_function: 80,
        num_vars: 12,
        seed: 255_000,
    },
    BenchmarkSpec {
        name: "256.bzip2",
        num_functions: 8,
        stmts_per_function: 60,
        num_vars: 10,
        seed: 256_000,
    },
    BenchmarkSpec {
        name: "300.twolf",
        num_functions: 16,
        stmts_per_function: 80,
        num_vars: 12,
        seed: 300_000,
    },
];

/// Number of functions benchmark `spec` contributes to the corpus at
/// `scale`. Shared by [`spec_like_corpus`] and the streaming corpus source
/// in the bench harness, so both enumerate the identical function set.
pub fn spec_num_functions(spec: &BenchmarkSpec, scale: f64) -> usize {
    ((spec.num_functions as f64 * scale).ceil() as usize).max(1)
}

/// Generator configuration benchmark `spec` uses at `scale` (function `i` is
/// generated from this config with seed `spec.seed + i`). Shared by
/// [`spec_like_corpus`] and the streaming corpus source in the bench
/// harness, so both build bit-identical functions.
pub fn spec_config(spec: &BenchmarkSpec, scale: f64) -> GenConfig {
    GenConfig {
        num_vars: spec.num_vars,
        num_stmts: ((spec.stmts_per_function as f64 * scale).ceil() as usize).max(8),
        ..GenConfig::default()
    }
}

/// Generates the whole simulated corpus. `scale` in `(0, 1]` shrinks every
/// benchmark proportionally (useful for fast tests); 1.0 is the benchmark
///-harness size. When `pin_calls` is set, call operands receive
/// calling-convention register pins.
pub fn spec_like_corpus(scale: f64, pin_calls: bool) -> Vec<Workload> {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    SPEC_BENCHMARKS
        .iter()
        .map(|spec| {
            let num_functions = spec_num_functions(spec, scale);
            let config = spec_config(spec, scale);
            let functions = (0..num_functions)
                .map(|i| {
                    let (mut func, _) = generate_ssa_function(
                        format!("{}::fn{}", spec.name, i),
                        &config,
                        spec.seed + i as u64,
                    );
                    if pin_calls {
                        pin_call_conventions(&mut func);
                    }
                    func
                })
                .collect();
            Workload { name: spec.name, functions }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::verify_ssa;

    #[test]
    fn corpus_has_eleven_benchmarks() {
        let corpus = spec_like_corpus(0.2, false);
        assert_eq!(corpus.len(), 11);
        assert!(corpus.iter().any(|w| w.name == "176.gcc"));
        assert!(corpus.iter().all(|w| !w.functions.is_empty()));
    }

    #[test]
    fn corpus_functions_are_valid_ssa() {
        let corpus = spec_like_corpus(0.15, true);
        for workload in &corpus {
            for func in &workload.functions {
                verify_ssa(func).unwrap_or_else(|e| panic!("{}: {e}", func.name));
            }
        }
    }

    #[test]
    fn gcc_is_the_largest_benchmark() {
        let corpus = spec_like_corpus(0.25, false);
        let gcc = corpus.iter().find(|w| w.name == "176.gcc").unwrap();
        let mcf = corpus.iter().find(|w| w.name == "181.mcf").unwrap();
        assert!(gcc.total_insts() > mcf.total_insts());
        assert!(gcc.functions.len() > mcf.functions.len());
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = spec_like_corpus(0.1, false);
        let b = spec_like_corpus(0.1, false);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.total_insts(), wb.total_insts());
            assert_eq!(wa.total_phis(), wb.total_phis());
        }
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_is_rejected() {
        spec_like_corpus(0.0, false);
    }
}
