//! Post-translation output validation.
//!
//! The paper's motivating hazard is *silent miscompilation*: the lost-copy
//! and swap bugs corrupt translated programs without crashing the compiler.
//! The translation pipeline's internal `debug_assert!`s re-check structural
//! CFG invariants, but a dropped or mis-ordered copy is structurally
//! perfectly healthy — only its *behaviour* is wrong. This module closes
//! that gap with an opt-in validator run after translation:
//!
//! * [`ValidationMode::Structural`] re-runs the CFG verifier on the output
//!   and asserts the translation's postconditions: no φ-function survives,
//!   no parallel copy survives (when sequentialization was requested), and
//!   every use is *must-defined* — reached by a write on every path from
//!   entry (the dominance-aware def-use check adapted to non-SSA output,
//!   where values may have many defs). This catches most dropped-copy
//!   corruptions statically, at bit-set data-flow cost instead of the
//!   interpreter's.
//! * [`ValidationMode::Differential`] additionally promotes the test-only
//!   interpreter oracle into a runtime check: it executes the
//!   pre-translation function and the translated output on deterministic
//!   argument sets ([`ossa_interp::argument_sets`]) and compares observable
//!   behaviour (return value and call/store trace), reporting the first
//!   divergence.
//!
//! Failures are reported as [`TranslateError::ValidationFailed`], tagged
//! [`TranslatePhase::Validate`], so they slot into the fault taxonomy and
//! the recovery ladder exactly like panics and resource blowups. The
//! default engines run [`ValidationMode::Off`] and are byte-for-byte
//! unaffected.

use std::fmt::Write as _;

use ossa_interp::{argument_sets, same_behaviour, InterpError, Interpreter, Observation};
use ossa_ir::{verify_cfg, Block, EntitySet, Function, SecondaryMap, Value};

use crate::coalesce::OutOfSsaOptions;
use crate::fault::{TranslateError, TranslatePhase};

/// How much checking an engine performs on each translated function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValidationMode {
    /// No output validation (the default; zero overhead).
    #[default]
    Off,
    /// Structural re-verification of the output (CFG verifier + the
    /// translation postconditions).
    Structural,
    /// Structural checks plus the differential interpreter run against the
    /// pre-translation function.
    Differential,
}

/// Seed of the differential argument sets — shared with the oracle test
/// suites so the validator checks the same inputs the tests do.
pub const DIFFERENTIAL_SEED: u64 = 2009;

/// Number of argument sets the differential validator executes per function.
pub const DIFFERENTIAL_SETS: usize = 4;

/// Fuel per differential execution (same budget the oracle tests use).
pub const DIFFERENTIAL_FUEL: u64 = ossa_interp::DEFAULT_FUEL;

/// Validates `translated` (the out-of-SSA output) against `original` (a
/// pristine pre-translation snapshot) under `mode`. `options` tells the
/// validator which postconditions the run promised (sequentialization).
///
/// # Errors
/// [`TranslateError::ValidationFailed`] describing the first structural
/// violation or behavioural divergence found.
pub fn validate_translation(
    original: &Function,
    translated: &Function,
    options: &OutOfSsaOptions,
    mode: ValidationMode,
) -> Result<(), TranslateError> {
    match mode {
        ValidationMode::Off => Ok(()),
        ValidationMode::Structural => validate_structural(translated, options),
        ValidationMode::Differential => {
            validate_structural(translated, options)?;
            validate_differential(original, translated)
        }
    }
}

fn validation_error(detail: String) -> TranslateError {
    TranslateError::ValidationFailed { phase: TranslatePhase::Validate, detail }
}

/// The structural half: CFG verifier plus translation postconditions.
pub fn validate_structural(
    translated: &Function,
    options: &OutOfSsaOptions,
) -> Result<(), TranslateError> {
    if let Err(errors) = verify_cfg(translated) {
        return Err(validation_error(format!("output failed CFG verification: {errors}")));
    }
    let phis = translated.count_phis();
    if phis != 0 {
        return Err(validation_error(format!("{phis} phi-function(s) survived translation")));
    }
    if options.sequentialize {
        for block in translated.blocks() {
            for &inst in translated.block_insts(block) {
                if translated.inst_copy_pairs(inst).is_some() {
                    return Err(validation_error(format!(
                        "parallel copy survived sequentialization in {block}"
                    )));
                }
            }
        }
    }
    // Def-use sanity: the output is not SSA (no unique-def requirement), but
    // a value that is read and never written anywhere is always a miscompile
    // — it is exactly what a lost copy leaves behind.
    let def_counts = translated.def_counts();
    let mut uses = Vec::new();
    for block in translated.blocks() {
        for &inst in translated.block_insts(block) {
            uses.clear();
            translated.collect_inst_uses(inst, &mut uses);
            for &value in &uses {
                if def_counts[value] == 0 {
                    return Err(validation_error(format!(
                        "{value} is used in {block} but defined nowhere"
                    )));
                }
            }
        }
    }
    validate_must_defined(translated)
}

/// The dominance-aware half of the def-use check: every use must be
/// *must-defined* — reached by a write on **every** path from entry. On
/// non-SSA output (multiple defs per value are normal after coalescing) the
/// classical "each use dominated by its def" test is exactly the must-define
/// forward data flow `in[b] = ∩ preds out[p]`, which this computes over
/// value bit-sets. A dropped copy whose destination is written on only some
/// of the paths reaching a use — the lost-copy residue a plain def-count
/// check cannot see — fails here without paying for the interpreter.
///
/// Runs after the no-φ postcondition, so every use is an ordinary operand
/// (φ-uses, which would need checking at predecessor exits, are already
/// gone); parallel copies read all sources before writing any destination,
/// matching the uses-then-defs order of the walk. Blocks whose in-set is
/// still ⊤ (unreachable code) are vacuously correct: no path reaches them.
fn validate_must_defined(translated: &Function) -> Result<(), TranslateError> {
    let entry = translated.entry();
    let preds = translated.predecessors();
    // out[b] per block; `None` is ⊤ (not yet computed / unreachable), the
    // identity of intersection. Sets only shrink from ⊤, so the fixpoint
    // terminates.
    let mut outs: SecondaryMap<Block, Option<EntitySet<Value>>> = SecondaryMap::new();
    let mut avail: EntitySet<Value> = EntitySet::with_capacity(translated.num_values());
    let mut uses = Vec::new();
    let mut defs = Vec::new();
    // in[b] = ∩ preds out[p] (entry: ∅); returns `None` for ⊤.
    let flow_in = |outs: &SecondaryMap<Block, Option<EntitySet<Value>>>,
                   avail: &mut EntitySet<Value>,
                   block: Block|
     -> bool {
        avail.reset();
        if block == entry {
            return true;
        }
        let mut seeded = false;
        for &pred in &preds[block] {
            let Some(out) = &outs[pred] else { continue };
            if seeded {
                avail.intersect_with(out);
            } else {
                avail.clone_from_set(out);
                seeded = true;
            }
        }
        seeded
    };
    loop {
        let mut changed = false;
        for block in translated.blocks() {
            if !flow_in(&outs, &mut avail, block) && block != entry {
                continue;
            }
            for &inst in translated.block_insts(block) {
                defs.clear();
                translated.collect_inst_defs(inst, &mut defs);
                for &value in &defs {
                    avail.insert(value);
                }
            }
            let slot = &mut outs[block];
            if slot.as_ref() != Some(&avail) {
                match slot {
                    Some(set) => set.clone_from_set(&avail),
                    None => *slot = Some(avail.clone()),
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Check pass: walk each reachable block from its in-set, verifying every
    // use against the values must-defined at that point.
    for block in translated.blocks() {
        if !flow_in(&outs, &mut avail, block) && block != entry {
            continue;
        }
        for &inst in translated.block_insts(block) {
            uses.clear();
            translated.collect_inst_uses(inst, &mut uses);
            for &value in &uses {
                if !avail.contains(value) {
                    return Err(validation_error(format!(
                        "{value} is used in {block} but is not defined on every path from entry"
                    )));
                }
            }
            defs.clear();
            translated.collect_inst_defs(inst, &mut defs);
            for &value in &defs {
                avail.insert(value);
            }
        }
    }
    Ok(())
}

/// The differential half: executes both functions on the shared
/// deterministic argument sets and compares observable behaviour.
pub fn validate_differential(
    original: &Function,
    translated: &Function,
) -> Result<(), TranslateError> {
    let inputs = argument_sets(DIFFERENTIAL_SEED, DIFFERENTIAL_SETS, original.num_params as usize);
    let interp = Interpreter::new().with_fuel(DIFFERENTIAL_FUEL);
    for args in &inputs {
        let reference = interp.run(original, args);
        let subject = interp.run(translated, args);
        let agree = match (&reference, &subject) {
            (Ok(a), Ok(b)) => same_behaviour(a, b),
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        if !agree {
            return Err(validation_error(format!(
                "behaviour diverged on inputs {args:?}: reference {} vs translated {}",
                describe(&reference),
                describe(&subject)
            )));
        }
    }
    Ok(())
}

/// One-line rendering of an execution outcome for divergence reports.
fn describe(outcome: &Result<Observation, InterpError>) -> String {
    match outcome {
        Ok(obs) => {
            let mut s = String::new();
            match obs.returned {
                Some(v) => write!(s, "returned {v}").unwrap(),
                None => s.push_str("returned void"),
            }
            write!(s, " ({} trace event(s))", obs.trace.len()).unwrap();
            s
        }
        Err(err) => format!("failed: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::translate_out_of_ssa;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{BinaryOp, InstData};

    /// A diamond with a φ-join: `f(a, b) = (a < b ? a+b : a*b) + a`.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("diamond", 2);
        let entry = b.create_block();
        let then = b.create_block();
        let els = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let a = b.param(0);
        let y = b.param(1);
        let c = b.cmp(ossa_ir::CmpOp::Lt, a, y);
        b.branch(c, then, els);
        b.switch_to_block(then);
        let s = b.binary(BinaryOp::Add, a, y);
        b.jump(join);
        b.switch_to_block(els);
        let p = b.binary(BinaryOp::Mul, a, y);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(then, s), (els, p)]);
        let r = b.binary(BinaryOp::Add, m, a);
        b.ret(Some(r));
        b.finish()
    }

    #[test]
    fn healthy_translation_passes_all_modes() {
        let original = diamond();
        let mut translated = original.clone();
        let options = OutOfSsaOptions::default();
        translate_out_of_ssa(&mut translated, &options);
        for mode in [ValidationMode::Off, ValidationMode::Structural, ValidationMode::Differential]
        {
            assert_eq!(validate_translation(&original, &translated, &options, mode), Ok(()));
        }
    }

    /// The paper's swap pattern: two φs exchanging values every iteration.
    /// The exchange is a genuine copy cycle, so coalescing can never remove
    /// the copies — translated output always contains them.
    fn swap_loop() -> Function {
        let mut b = FunctionBuilder::new("swap_loop", 3);
        let entry = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let a0 = b.param(0);
        let b0 = b.param(1);
        let n0 = b.param(2);
        b.jump(header);
        b.switch_to_block(header);
        // Declare the φ destinations up front so the swap can be expressed
        // as mutually recursive arguments along the back edge.
        let a1 = b.declare_value();
        let b1 = b.declare_value();
        let n1 = b.declare_value();
        let n2 = b.declare_value();
        b.phi_to(a1, vec![(entry, a0), (body, b1)]);
        b.phi_to(b1, vec![(entry, b0), (body, a1)]);
        b.phi_to(n1, vec![(entry, n0), (body, n2)]);
        let c = b.cmp(ossa_ir::CmpOp::Gt, n1, a0);
        b.branch(c, body, exit);
        b.switch_to_block(body);
        b.binary_to(BinaryOp::Sub, n2, n1, b0);
        b.jump(header);
        b.switch_to_block(exit);
        let r = b.binary(BinaryOp::Sub, a1, b1);
        b.ret(Some(r));
        b.finish()
    }

    #[test]
    fn structural_mode_rejects_surviving_parallel_copies() {
        let original = swap_loop();
        let mut translated = original.clone();
        // Translate without sequentialization, then validate against options
        // that promised it: the surviving parallel copy must be reported.
        let unsequenced = OutOfSsaOptions::default().with_sequentialize(false);
        translate_out_of_ssa(&mut translated, &unsequenced);
        let promised = OutOfSsaOptions::default();
        let err =
            validate_translation(&original, &translated, &promised, ValidationMode::Structural)
                .unwrap_err();
        assert_eq!(err.phase(), Some(TranslatePhase::Validate));
        assert!(err.to_string().contains("parallel copy survived"), "{err}");
    }

    #[test]
    fn structural_mode_rejects_uses_of_undefined_values() {
        let original = diamond();
        let mut translated = original.clone();
        let options = OutOfSsaOptions::default();
        translate_out_of_ssa(&mut translated, &options);
        // Redirect the return's operand to an allocated-but-never-defined
        // value: exactly the residue a lost copy leaves behind.
        let ghost = translated.new_value();
        let ret = translated
            .blocks()
            .flat_map(|b| translated.block_insts(b).to_vec())
            .find(|&i| matches!(translated.inst(i), InstData::Return { value: Some(_) }))
            .expect("diamond returns a value");
        translated.map_inst_uses(ret, |_| ghost);
        let err =
            validate_translation(&original, &translated, &options, ValidationMode::Structural)
                .unwrap_err();
        assert!(err.to_string().contains("defined nowhere"), "{err}");
    }

    /// A diamond whose join reads a value written on only one arm — the
    /// shape a lost copy leaves when the dropped write sat on the other arm.
    /// With `on_both_arms`, the second arm defines the value too (normal
    /// multi-def non-SSA output, which must validate).
    fn partially_defined(on_both_arms: bool) -> Function {
        let mut b = FunctionBuilder::new("partial", 2);
        let entry = b.create_block();
        let then = b.create_block();
        let els = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let a = b.param(0);
        let y = b.param(1);
        let c = b.cmp(ossa_ir::CmpOp::Lt, a, y);
        b.branch(c, then, els);
        let x = b.declare_value();
        b.switch_to_block(then);
        b.binary_to(BinaryOp::Add, x, a, y);
        b.jump(join);
        b.switch_to_block(els);
        if on_both_arms {
            b.binary_to(BinaryOp::Mul, x, a, y);
        }
        b.jump(join);
        b.switch_to_block(join);
        let r = b.binary(BinaryOp::Add, x, a);
        b.ret(Some(r));
        b.finish()
    }

    #[test]
    fn structural_mode_rejects_values_not_defined_on_every_path() {
        // One def on one arm: def-counting sees a healthy value, the
        // must-define data flow sees the undefined path.
        let broken = partially_defined(false);
        let options = OutOfSsaOptions::default();
        let err = validate_structural(&broken, &options).unwrap_err();
        assert!(err.to_string().contains("not defined on every path"), "{err}");
        // Defs on both arms: ordinary multi-def non-SSA output, accepted.
        let healthy = partially_defined(true);
        assert_eq!(validate_structural(&healthy, &options), Ok(()));
    }

    #[test]
    fn differential_mode_reports_behavioural_divergence() {
        let original = diamond();
        let mut translated = original.clone();
        let options = OutOfSsaOptions::default();
        translate_out_of_ssa(&mut translated, &options);
        // Structurally pristine, behaviourally wrong: flip one Add to Sub.
        let target = translated
            .blocks()
            .flat_map(|b| translated.block_insts(b).to_vec())
            .find(|&i| matches!(translated.inst(i), InstData::Binary { op: BinaryOp::Add, .. }))
            .expect("diamond contains an add");
        let InstData::Binary { dst, args, .. } = *translated.inst(target) else { unreachable!() };
        *translated.inst_mut(target) = InstData::Binary { op: BinaryOp::Sub, dst, args };
        assert_eq!(
            validate_translation(&original, &translated, &options, ValidationMode::Structural),
            Ok(()),
            "the mangled output must still be structurally healthy"
        );
        let err =
            validate_translation(&original, &translated, &options, ValidationMode::Differential)
                .unwrap_err();
        assert_eq!(err.phase(), Some(TranslatePhase::Validate));
        assert!(err.to_string().contains("behaviour diverged"), "{err}");
    }
}
