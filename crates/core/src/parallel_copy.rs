//! Sequentialization of parallel copies (Algorithm 1 of the paper).
//!
//! A parallel copy reads all its sources before writing any destination. To
//! emit ordinary code it must be turned into a sequence of plain copies. The
//! algorithm emits the minimum number of copies: exactly one copy per move,
//! plus one extra copy per *cyclic permutation* that duplicates no value
//! (each cycle needs one temporary).
//!
//! All algorithm state lives in a reusable [`SeqScratch`] of dense
//! entity-keyed maps: the windmill loop performs no hashing, and when the
//! scratch is threaded across parallel copies (and across functions by the
//! corpus engine) it performs no allocation either.

use ossa_ir::entity::{EntitySet, SecondaryMap, Value};
use ossa_ir::{CopyPair, Function, InstData};

/// Result of sequentializing one parallel copy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Sequentialization {
    /// The emitted copies, in execution order.
    pub copies: Vec<CopyPair>,
    /// Whether the extra temporary was needed (at least one closed cycle).
    pub used_temp: bool,
}

/// Error returned by [`try_sequentialize`] when two moves of a parallel copy
/// share a destination: such a copy is ill-formed (a parallel copy defines
/// each destination exactly once) and has no sequentialization.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DuplicateDest {
    /// The destination defined more than once.
    pub dst: Value,
}

impl std::fmt::Display for DuplicateDest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parallel copy defines destination {} more than once", self.dst)
    }
}

impl std::error::Error for DuplicateDest {}

/// Reusable state of Algorithm 1: dense `loc`/`pred` maps with a sparse
/// reset list, the work stacks, the filtered move list and the output
/// buffer. One scratch serves any number of parallel copies — entries
/// touched by a run are reset on the next one, so the cost of a run is
/// proportional to the copy, not to the function.
#[derive(Clone, Debug, Default)]
pub struct SeqScratch {
    /// `loc[a]`: where the initial value of `a` currently lives.
    loc: SecondaryMap<Value, Option<Value>>,
    /// `pred[b]`: the value that must end up in `b`.
    pred: SecondaryMap<Value, Option<Value>>,
    /// Values whose `loc`/`pred` entries were written by the previous run.
    touched: Vec<Value>,
    /// Duplicate-destination detection.
    dst_seen: EntitySet<Value>,
    /// The input with self-moves filtered out.
    moves: Vec<CopyPair>,
    ready: Vec<Value>,
    to_do: Vec<Value>,
    /// Output of the last run.
    result: Sequentialization,
    /// Block-list snapshot of [`sequentialize_function_with`] (the function
    /// is mutated while walking, so the layout is copied out first).
    block_list: Vec<ossa_ir::entity::Block>,
}

impl SeqScratch {
    /// Creates empty scratch buffers; they grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sequentializes the parallel copy `moves` (pairs `dst ← src`), using
    /// `temp` as the extra variable if a cycle has to be broken. The result
    /// is stored in (and borrowed from) the scratch.
    ///
    /// Self moves (`a ← a`) are dropped.
    ///
    /// # Errors
    /// Returns [`DuplicateDest`] if two moves share a destination — checked
    /// in every build because a duplicated destination silently produces
    /// wrong code downstream.
    pub fn try_sequentialize(
        &mut self,
        moves: &[CopyPair],
        temp: Value,
    ) -> Result<&Sequentialization, DuplicateDest> {
        // Reset the entries the previous run wrote.
        for value in self.touched.drain(..) {
            self.loc[value] = None;
            self.pred[value] = None;
        }
        self.dst_seen.clear();
        self.ready.clear();
        self.to_do.clear();
        self.result.copies.clear();
        self.result.used_temp = false;

        // Filter self-moves; they are no-ops.
        self.moves.clear();
        self.moves.extend(moves.iter().copied().filter(|m| m.dst != m.src));
        if self.moves.is_empty() {
            return Ok(&self.result);
        }
        for m in &self.moves {
            if !self.dst_seen.insert(m.dst) {
                return Err(DuplicateDest { dst: m.dst });
            }
        }

        self.touched.push(temp);
        for m in &self.moves {
            self.touched.push(m.dst);
            self.touched.push(m.src);
        }
        for m in &self.moves {
            self.loc[m.src] = Some(m.src); // needed and not copied yet
            self.pred[m.dst] = Some(m.src); // unique predecessor
            self.to_do.push(m.dst); // copy into dst still to be done
        }
        for m in &self.moves {
            if self.loc[m.dst].is_none() {
                self.ready.push(m.dst); // dst is not a source: can be overwritten
            }
        }

        while let Some(b_todo) = self.to_do.last().copied() {
            while let Some(b) = self.ready.pop() {
                let a = self.pred[b].expect("ready values have a predecessor");
                let c = self.loc[a].expect("source location is known");
                self.result.copies.push(CopyPair { dst: b, src: c });
                self.loc[a] = Some(b);
                if a == c && self.pred[a].is_some() {
                    self.ready.push(a); // a was just saved, it can now be overwritten
                }
            }
            self.to_do.pop();
            // If b still holds its own initial value, it closes a cycle:
            // break it with the temporary.
            if self.loc[b_todo] == Some(b_todo) && self.pred[b_todo].is_some() {
                self.result.copies.push(CopyPair { dst: temp, src: b_todo });
                self.loc[b_todo] = Some(temp);
                self.ready.push(b_todo);
                self.result.used_temp = true;
            }
        }
        // Drain any remaining ready entries produced by the last cycle break.
        while let Some(b) = self.ready.pop() {
            let Some(a) = self.pred[b] else { continue };
            let c = self.loc[a].expect("source location is known");
            if c == b {
                continue; // already in place
            }
            self.result.copies.push(CopyPair { dst: b, src: c });
            self.loc[a] = Some(b);
            if a == c && self.pred[a].is_some() {
                self.ready.push(a);
            }
        }

        Ok(&self.result)
    }
}

/// Sequentializes the parallel copy `moves` (pairs `dst ← src`), using
/// `temp` as the extra variable if a cycle has to be broken, through a
/// one-shot [`SeqScratch`]. Hot paths should own a scratch and call
/// [`SeqScratch::try_sequentialize`] instead.
///
/// Self moves (`a ← a`) are dropped.
///
/// # Errors
/// Returns [`DuplicateDest`] if two moves share a destination — previously
/// only a `debug_assert!`, this is now checked in every build because a
/// duplicated destination silently produces wrong code downstream.
pub fn try_sequentialize(
    moves: &[CopyPair],
    temp: Value,
) -> Result<Sequentialization, DuplicateDest> {
    let mut scratch = SeqScratch::new();
    scratch.try_sequentialize(moves, temp).cloned()
}

/// Sequentializes the parallel copy `moves`, panicking on ill-formed input.
///
/// # Panics
/// Panics in **all** builds (not just debug) if two moves share a
/// destination; use [`try_sequentialize`] to handle that case as an error.
pub fn sequentialize(moves: &[CopyPair], temp: Value) -> Sequentialization {
    match try_sequentialize(moves, temp) {
        Ok(seq) => seq,
        Err(err) => panic!("{err}"),
    }
}

/// Replaces every [`InstData::ParallelCopy`] of `func` by an equivalent
/// sequence of plain copies, creating at most one extra temporary per
/// parallel copy. Returns the total number of copies emitted.
///
/// # Panics
/// Panics if a parallel copy has duplicate destinations (which cannot occur
/// for copies produced by this crate's insertion phase).
pub fn sequentialize_function(func: &mut Function) -> usize {
    let mut scratch = SeqScratch::new();
    sequentialize_function_with(func, &mut scratch)
}

/// Like [`sequentialize_function`], reusing the caller's [`SeqScratch`] so
/// that repeated calls (one per function of a corpus) allocate nothing.
///
/// # Panics
/// Panics if a parallel copy has duplicate destinations.
pub fn sequentialize_function_with(func: &mut Function, scratch: &mut SeqScratch) -> usize {
    let mut emitted = 0;
    // Snapshot the layout into the recycled scratch buffer (taken out by
    // value so the scratch stays borrowable inside the loop): the walk
    // mutates the block lists, and reusing the buffer keeps the warm path
    // allocation-free.
    let mut block_list = std::mem::take(&mut scratch.block_list);
    block_list.clear();
    block_list.extend(func.blocks());
    for &block in &block_list {
        // Positions shift as we splice; walk by re-scanning.
        let mut pos = 0;
        while pos < func.block_len(block) {
            let inst = func.block_insts(block)[pos];
            if matches!(func.inst(inst), InstData::ParallelCopy { .. }) {
                let temp = func.new_value();
                // Borrow the copies in place: the scratch owns the result, so
                // nothing of the instruction needs to be cloned before it is
                // removed (removal retires the pool block for reuse).
                let InstData::ParallelCopy { copies } = func.inst(inst) else { unreachable!() };
                let seq = match scratch.try_sequentialize(func.copy_list(*copies), temp) {
                    Ok(seq) => seq,
                    Err(err) => panic!("{err}"),
                };
                func.remove_inst(block, inst);
                // With failpoints compiled in, an armed corruption campaign
                // may mangle this window once per function (drop one copy or
                // swap a dependent pair) to model the paper's historical
                // lost-copy/swap miscompiles; unarmed, the plan is inert and
                // the emission below is identical to the default build.
                #[cfg(feature = "failpoints")]
                let (drop_at, swap_at) = corruption_plan(&func.name, &seq.copies);
                let mut emitted_here = 0;
                for offset in 0..seq.copies.len() {
                    #[cfg(feature = "failpoints")]
                    if drop_at == Some(offset) {
                        continue;
                    }
                    #[cfg(feature = "failpoints")]
                    let offset = match swap_at {
                        Some(s) if offset == s => s + 1,
                        Some(s) if offset == s + 1 => s,
                        _ => offset,
                    };
                    let copy = seq.copies[offset];
                    func.insert_inst(
                        block,
                        pos + emitted_here,
                        InstData::Copy { dst: copy.dst, src: copy.src },
                    );
                    emitted_here += 1;
                }
                emitted += emitted_here;
                pos += emitted_here;
            } else {
                pos += 1;
            }
        }
    }
    scratch.block_list = block_list;
    emitted
}

/// Decides how (and whether) an armed corruption campaign mangles one
/// sequentialized window of `func_name`: `(drop index, swap index)`. The
/// per-function budget (`corrupt_here`) is only consumed when the window
/// actually qualifies — a drop needs a copy, a swap needs an adjacent
/// *dependent* pair whose reordering changes register-level semantics — so
/// the injection lands in the first suitable window of the function.
#[cfg(feature = "failpoints")]
fn corruption_plan(func_name: &str, copies: &[CopyPair]) -> (Option<usize>, Option<usize>) {
    use crate::fault::failpoints::{corrupt_here, CorruptionKind};
    if !copies.is_empty() && corrupt_here(func_name, CorruptionKind::DropCopy) {
        return (Some(0), None);
    }
    if copies.len() >= 2 {
        let dependent = (0..copies.len() - 1)
            .find(|&i| copies[i + 1].src == copies[i].dst || copies[i].src == copies[i + 1].dst);
        if let Some(i) = dependent {
            if corrupt_here(func_name, CorruptionKind::SwapCopies) {
                return (None, Some(i));
            }
        }
    }
    (None, None)
}

/// Counts the minimum number of sequential copies a parallel copy requires:
/// the number of non-self moves plus one per closed cycle (a connected
/// component that is a circuit with no tree edge).
pub fn minimum_copies(moves: &[CopyPair]) -> usize {
    let moves: Vec<CopyPair> = moves.iter().copied().filter(|m| m.dst != m.src).collect();
    let n = moves.len();
    // Count closed cycles: destinations whose value is also a source, forming
    // a permutation cycle in which no vertex has out-degree 0... Equivalent
    // formulation: a cycle is closed if every value in it is both a source
    // and a destination and no other move reads any of its values.
    let mut pred: SecondaryMap<Value, Option<Value>> = SecondaryMap::new();
    let mut src_count: SecondaryMap<Value, u32> = SecondaryMap::new();
    for m in &moves {
        pred[m.dst] = Some(m.src);
        src_count[m.src] += 1;
    }
    let mut visited: EntitySet<Value> = EntitySet::new();
    let mut closed_cycles = 0;
    for m in &moves {
        let node = m.dst;
        if visited.contains(node) {
            continue;
        }
        // Walk predecessors to detect a cycle containing `node`.
        let mut path = vec![node];
        visited.insert(node);
        let mut is_cycle = false;
        while let Some(p) = pred[path[path.len() - 1]] {
            if p == m.dst {
                is_cycle = true;
                break;
            }
            if visited.contains(p) {
                break;
            }
            if pred[p].is_none() {
                break;
            }
            visited.insert(p);
            path.push(p);
        }
        if is_cycle {
            // The cycle is "closed" (needs a temp) iff none of its values is
            // read by a move outside the cycle (no duplication available).
            let duplicated = path.iter().any(|&v| src_count[v] > 1);
            if !duplicated {
                closed_cycles += 1;
            }
        }
    }
    n + closed_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::entity::EntityRef;
    use std::collections::HashMap;

    fn v(i: usize) -> Value {
        Value::new(i)
    }

    fn pair(dst: usize, src: usize) -> CopyPair {
        CopyPair { dst: v(dst), src: v(src) }
    }

    /// Simulates a parallel copy and a sequential list of copies, comparing
    /// the final environments.
    fn check_equivalent(moves: &[CopyPair], seq: &[CopyPair], temp: Value) {
        // Initial environment: every value holds a distinct token.
        let mut initial: HashMap<Value, i64> = HashMap::new();
        let mut all: Vec<Value> = moves.iter().flat_map(|m| [m.dst, m.src]).collect();
        all.push(temp);
        all.sort();
        all.dedup();
        for (i, &value) in all.iter().enumerate() {
            initial.insert(value, 1000 + i as i64);
        }
        // Parallel semantics.
        let mut parallel = initial.clone();
        let reads: Vec<(Value, i64)> = moves.iter().map(|m| (m.dst, initial[&m.src])).collect();
        for (dst, val) in reads {
            parallel.insert(dst, val);
        }
        // Sequential semantics.
        let mut sequential = initial.clone();
        for copy in seq {
            let val = sequential[&copy.src];
            sequential.insert(copy.dst, val);
        }
        // The temp is scratch: ignore it in the comparison.
        for value in all {
            if value == temp {
                continue;
            }
            assert_eq!(
                parallel[&value], sequential[&value],
                "value {value} differs between parallel and sequential execution"
            );
        }
    }

    #[test]
    fn tree_copies_need_no_temp() {
        // a -> b, a -> c, b -> d: a tree; 3 copies, ordered leaves first.
        let moves = [pair(1, 0), pair(2, 0), pair(3, 1)];
        let temp = v(99);
        let seq = sequentialize(&moves, temp);
        assert!(!seq.used_temp);
        assert_eq!(seq.copies.len(), 3);
        assert_eq!(minimum_copies(&moves), 3);
        check_equivalent(&moves, &seq.copies, temp);
    }

    #[test]
    fn swap_needs_one_extra_copy() {
        let moves = [pair(0, 1), pair(1, 0)];
        let temp = v(99);
        let seq = sequentialize(&moves, temp);
        assert!(seq.used_temp);
        assert_eq!(seq.copies.len(), 3);
        assert_eq!(minimum_copies(&moves), 3);
        check_equivalent(&moves, &seq.copies, temp);
    }

    #[test]
    fn paper_example_generates_four_copies() {
        // (a↦b, b↦c, c↦a, c↦d): circuit (a,b,c) plus edge c→d.
        // The paper: "we generate the copies d = c, c = a, a = b, and b = d".
        let a = 0;
        let b = 1;
        let c = 2;
        let d = 3;
        let moves = [pair(b, a), pair(c, b), pair(a, c), pair(d, c)];
        let temp = v(99);
        let seq = sequentialize(&moves, temp);
        assert_eq!(seq.copies.len(), 4, "no extra copy: the cycle is broken via d");
        assert!(!seq.used_temp);
        assert_eq!(minimum_copies(&moves), 4);
        check_equivalent(&moves, &seq.copies, temp);
    }

    #[test]
    fn three_cycle_uses_temp_once() {
        let moves = [pair(0, 1), pair(1, 2), pair(2, 0)];
        let temp = v(99);
        let seq = sequentialize(&moves, temp);
        assert!(seq.used_temp);
        assert_eq!(seq.copies.len(), 4);
        assert_eq!(minimum_copies(&moves), 4);
        check_equivalent(&moves, &seq.copies, temp);
    }

    #[test]
    fn self_moves_are_dropped() {
        let moves = [pair(0, 0), pair(1, 2)];
        let temp = v(99);
        let seq = sequentialize(&moves, temp);
        assert_eq!(seq.copies.len(), 1);
        assert_eq!(minimum_copies(&moves), 1);
        check_equivalent(&moves, &seq.copies, temp);
    }

    #[test]
    fn empty_parallel_copy_produces_nothing() {
        let seq = sequentialize(&[], v(9));
        assert!(seq.copies.is_empty());
        assert!(!seq.used_temp);
        assert_eq!(minimum_copies(&[]), 0);
    }

    #[test]
    fn two_disjoint_swaps_use_temp_for_each() {
        let moves = [pair(0, 1), pair(1, 0), pair(2, 3), pair(3, 2)];
        let temp = v(99);
        let seq = sequentialize(&moves, temp);
        assert!(seq.used_temp);
        assert_eq!(seq.copies.len(), 6);
        assert_eq!(minimum_copies(&moves), 6);
        check_equivalent(&moves, &seq.copies, temp);
    }

    #[test]
    fn duplication_into_cycle_avoids_temp() {
        // a -> b and the swap (a, c): value of a is duplicated, so the cycle
        // between a and c can reuse b as the save location.
        let moves = [pair(1, 0), pair(0, 2), pair(2, 0)];
        let temp = v(99);
        let seq = sequentialize(&moves, temp);
        check_equivalent(&moves, &seq.copies, temp);
        assert_eq!(seq.copies.len(), minimum_copies(&moves));
        assert_eq!(minimum_copies(&moves), 3);
        assert!(!seq.used_temp);
    }

    #[test]
    fn duplicate_destinations_are_rejected() {
        let moves = [pair(1, 0), pair(1, 2)];
        assert_eq!(try_sequentialize(&moves, v(99)), Err(DuplicateDest { dst: v(1) }));
        // Self-moves are filtered before the check, so a self-move plus a
        // real move to the same destination is still well-formed.
        let filtered = [pair(1, 1), pair(1, 2)];
        assert!(try_sequentialize(&filtered, v(99)).is_ok());
    }

    #[test]
    #[should_panic(expected = "more than once")]
    fn sequentialize_panics_on_duplicate_destinations_in_release_too() {
        // The panic is unconditional, not a debug_assert.
        let moves = [pair(1, 0), pair(1, 2)];
        let _ = sequentialize(&moves, v(99));
    }

    #[test]
    fn duplicated_source_fans_out_without_temp() {
        // One value copied to several destinations: a pure fan-out tree.
        let moves = [pair(1, 0), pair(2, 0), pair(3, 0)];
        let temp = v(99);
        let seq = sequentialize(&moves, temp);
        assert!(!seq.used_temp);
        assert_eq!(seq.copies.len(), 3);
        assert_eq!(minimum_copies(&moves), 3);
        check_equivalent(&moves, &seq.copies, temp);
    }

    #[test]
    fn lost_copy_shaped_parallel_copy() {
        // The parallel copy the lost-copy problem produces on the loop back
        // edge: x2' ← x3 while x2 ← x2' still needs the old value — a chain,
        // sequentializable without a temporary in the right order.
        let x2p = 0;
        let x3 = 1;
        let x2 = 2;
        let moves = [pair(x2p, x3), pair(x2, x2p)];
        let temp = v(99);
        let seq = sequentialize(&moves, temp);
        assert!(!seq.used_temp);
        assert_eq!(seq.copies.len(), 2);
        assert_eq!(minimum_copies(&moves), 2);
        // The old x2' must be saved into x2 before being overwritten.
        assert_eq!(seq.copies[0], pair(x2, x2p));
        assert_eq!(seq.copies[1], pair(x2p, x3));
        check_equivalent(&moves, &seq.copies, temp);
    }

    #[test]
    fn randomized_permutations_are_sequentialized_correctly() {
        // Deterministic pseudo-random permutations and duplications.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let n = (next() % 6 + 1) as usize;
            let mut moves = Vec::new();
            let mut used_dsts = Vec::new();
            for i in 0..n {
                let dst = i;
                let src = (next() % (n as u64 + 2)) as usize;
                if dst != src && !used_dsts.contains(&dst) {
                    used_dsts.push(dst);
                    moves.push(pair(dst, src));
                }
            }
            let temp = v(50);
            let seq = sequentialize(&moves, temp);
            check_equivalent(&moves, &seq.copies, temp);
            assert_eq!(
                seq.copies.len(),
                minimum_copies(&moves),
                "case {case}: non-minimal sequentialization for {moves:?}"
            );
        }
    }

    #[test]
    fn seq_scratch_reuse_matches_fresh_scratch() {
        // One scratch driven across many different parallel copies (as the
        // corpus engine drives it across functions) must produce exactly
        // what a fresh scratch produces for each copy — stale loc/pred/ready
        // state from an earlier copy must never leak into a later one.
        let cases: Vec<Vec<CopyPair>> = vec![
            vec![pair(1, 0), pair(2, 0), pair(3, 1)],             // tree
            vec![pair(0, 1), pair(1, 0)],                         // swap
            vec![pair(0, 1), pair(1, 2), pair(2, 0)],             // 3-cycle
            vec![],                                               // empty
            vec![pair(5, 5), pair(6, 7)],                         // self-move + chain
            vec![pair(1, 0), pair(0, 2), pair(2, 0)],             // duplication into cycle
            vec![pair(0, 1), pair(1, 0), pair(2, 3), pair(3, 2)], // two swaps
        ];
        let temp = v(50);
        let mut reused = SeqScratch::new();
        for (i, moves) in cases.iter().enumerate() {
            let from_reused = reused.try_sequentialize(moves, temp).expect("well-formed").clone();
            let mut fresh = SeqScratch::new();
            let from_fresh = fresh.try_sequentialize(moves, temp).expect("well-formed").clone();
            assert_eq!(from_reused, from_fresh, "case {i}: reused scratch diverged");
            check_equivalent(moves, &from_reused.copies, temp);
        }
        // An error run must also leave the scratch clean for the next call.
        assert!(reused.try_sequentialize(&[pair(1, 0), pair(1, 2)], temp).is_err());
        let after_err = reused.try_sequentialize(&[pair(0, 1), pair(1, 0)], temp);
        assert_eq!(after_err.expect("recovers after error").copies.len(), 3);
    }

    #[test]
    fn seq_scratch_reuse_across_functions() {
        use ossa_ir::builder::FunctionBuilder;
        use ossa_ir::BinaryOp;
        // Two functions sequentialized through one scratch match the
        // per-function entry point.
        let build = |flip: bool| {
            let mut b = FunctionBuilder::new("f", 0);
            let entry = b.create_block();
            b.set_entry(entry);
            b.switch_to_block(entry);
            let a = b.iconst(1);
            let c = b.iconst(2);
            let x = b.declare_value();
            let y = b.declare_value();
            let (sx, sy) = if flip { (c, a) } else { (a, c) };
            b.parallel_copy(vec![CopyPair { dst: x, src: sx }, CopyPair { dst: y, src: sy }]);
            b.parallel_copy(vec![CopyPair { dst: x, src: y }, CopyPair { dst: y, src: x }]);
            let s = b.binary(BinaryOp::Add, x, y);
            b.ret(Some(s));
            b.finish()
        };
        let mut scratch = SeqScratch::new();
        for flip in [false, true] {
            let mut shared = build(flip);
            let mut fresh = build(flip);
            let emitted_shared = sequentialize_function_with(&mut shared, &mut scratch);
            let emitted_fresh = sequentialize_function(&mut fresh);
            assert_eq!(emitted_shared, emitted_fresh);
            assert_eq!(shared, fresh, "flip={flip}: shared-scratch output differs");
        }
    }

    #[test]
    fn sequentialize_function_replaces_parallel_copies() {
        use ossa_ir::builder::FunctionBuilder;
        use ossa_ir::BinaryOp;
        let mut b = FunctionBuilder::new("seq", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let a = b.iconst(1);
        let c = b.iconst(2);
        let x = b.declare_value();
        let y = b.declare_value();
        b.parallel_copy(vec![CopyPair { dst: x, src: a }, CopyPair { dst: y, src: c }]);
        // Swap x and y: requires a temp.
        b.parallel_copy(vec![CopyPair { dst: x, src: y }, CopyPair { dst: y, src: x }]);
        let s = b.binary(BinaryOp::Add, x, y);
        b.ret(Some(s));
        let mut f = b.finish();
        let emitted = sequentialize_function(&mut f);
        assert_eq!(emitted, 2 + 3);
        assert!(f
            .blocks()
            .flat_map(|bl| f.block_insts(bl).iter())
            .all(|&i| !matches!(f.inst(i), InstData::ParallelCopy { .. })));
    }
}
