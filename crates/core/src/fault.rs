//! Fault taxonomy and isolation primitives of the translation engine.
//!
//! The out-of-SSA hot paths stay panic-based internally — threading `Result`
//! through the lazily initialized analysis caches would tax every
//! happy-path caller — so fault isolation happens at the *per-function
//! boundary*: the isolated engine entry points run each function under
//! [`catch_translate`], which converts any unwind into a typed
//! [`TranslateError`]:
//!
//! * a [`ossa_liveness::fuel::FuelExhausted`] payload (a fixpoint budget from
//!   [`Limits::max_fixpoint_iters`] ran dry) becomes
//!   [`TranslateError::ResourceExhausted`];
//! * a [`ossa_liveness::fuel::Cancelled`] payload (the request's wall-clock
//!   deadline passed — checked at every phase boundary and fixpoint tick)
//!   becomes [`TranslateError::DeadlineExceeded`];
//! * anything else becomes [`TranslateError::Panicked`], tagged with the
//!   [`TranslatePhase`] the pipeline had most recently entered (a
//!   thread-local marker written by [`enter_phase`] at each phase boundary).
//!
//! Structural problems caught *before* the pipeline runs — verifier
//! rejections and [`Limits`] size checks — are reported without unwinding as
//! [`TranslateError::Malformed`] and [`TranslateError::ResourceExhausted`].
//!
//! The `failpoints` cargo feature adds a deterministic, seeded fault
//! injector ([`failpoints`]) that fires at the same phase boundaries; it is
//! compiled out of default builds entirely.

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ossa_ir::Function;
use ossa_liveness::fuel::{Cancelled, FuelExhausted};

/// The pipeline phase a fault was attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TranslatePhase {
    /// Input validation (structural verifier, limit checks) before any
    /// transformation runs.
    Verify,
    /// SSA construction / copy propagation / dead-code elimination — the
    /// pre-translation passes of the full pipeline.
    Ssa,
    /// Liveness analysis (data-flow sets or the fast checker).
    Liveness,
    /// Copy insertion, interference and aggressive coalescing.
    Coalesce,
    /// Parallel-copy sequentialization.
    Sequentialize,
    /// Register allocation.
    Regalloc,
    /// Post-translation output validation (structural re-verification or
    /// the differential interpreter check).
    Validate,
}

impl TranslatePhase {
    /// All phases, in pipeline order.
    pub const ALL: [TranslatePhase; 7] = [
        TranslatePhase::Verify,
        TranslatePhase::Ssa,
        TranslatePhase::Liveness,
        TranslatePhase::Coalesce,
        TranslatePhase::Sequentialize,
        TranslatePhase::Regalloc,
        TranslatePhase::Validate,
    ];

    fn as_str(self) -> &'static str {
        match self {
            TranslatePhase::Verify => "verify",
            TranslatePhase::Ssa => "ssa",
            TranslatePhase::Liveness => "liveness",
            TranslatePhase::Coalesce => "coalesce",
            TranslatePhase::Sequentialize => "sequentialize",
            TranslatePhase::Regalloc => "regalloc",
            TranslatePhase::Validate => "validate",
        }
    }
}

impl fmt::Display for TranslatePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The bounded resource a [`TranslateError::ResourceExhausted`] ran out of.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// [`Limits::max_blocks`].
    Blocks,
    /// [`Limits::max_values`].
    Values,
    /// [`Limits::max_insts`].
    Instructions,
    /// [`Limits::max_fixpoint_iters`].
    FixpointIterations,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::Blocks => "blocks",
            Resource::Values => "values",
            Resource::Instructions => "instructions",
            Resource::FixpointIterations => "fixpoint iterations",
        })
    }
}

/// A per-function translation failure. One function's error never affects
/// its corpus neighbours: the isolated engines record it and translate the
/// rest bit-identically to a fault-free run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// The input failed structural validation (CFG/SSA verifier).
    Malformed {
        /// The phase that rejected the input (normally [`TranslatePhase::Verify`]).
        phase: TranslatePhase,
        /// The verifier's report.
        detail: String,
    },
    /// A [`Limits`] bound was exceeded.
    ResourceExhausted {
        /// Which bound.
        resource: Resource,
        /// The configured limit.
        limit: u64,
        /// What the function actually needed (for the up-front size checks;
        /// equals `limit` for fuel, which stops at the bound).
        observed: u64,
    },
    /// The request's wall-clock deadline (a cancellation token installed via
    /// [`ossa_liveness::fuel::set_deadline`]) passed mid-translation. Unlike
    /// [`TranslateError::ResourceExhausted`] — a deterministic property of
    /// the function under the configured [`Limits`] — a deadline is a
    /// property of the *request*: the same function may well succeed when
    /// resubmitted under a fresh deadline, so service layers treat this as
    /// shed load, not as a poisoned input.
    DeadlineExceeded {
        /// The phase the pipeline had most recently entered when the
        /// cancellation token tripped.
        phase: TranslatePhase,
    },
    /// The pipeline panicked mid-translation.
    Panicked {
        /// The phase the pipeline had most recently entered.
        phase: TranslatePhase,
        /// The panic message.
        message: String,
    },
    /// The translation completed without crashing but its *output* failed
    /// post-translation validation — the paper's silent-miscompilation
    /// hazard (lost copies, mis-ordered swaps) made loud. The function must
    /// not be used; the recovery ladder may retry it on a conservative
    /// engine configuration.
    ValidationFailed {
        /// The phase the failure is attributed to (always
        /// [`TranslatePhase::Validate`]; kept explicit so the variant slots
        /// into the phase-tagged taxonomy like its siblings).
        phase: TranslatePhase,
        /// The validator's report: the structural violation, or the first
        /// behavioural divergence between the pre-translation function and
        /// the translated output.
        detail: String,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Malformed { phase, detail } => {
                write!(f, "malformed input (phase {phase}): {detail}")
            }
            TranslateError::ResourceExhausted { resource, limit, observed } => {
                write!(f, "resource exhausted: {observed} {resource} exceeds the limit of {limit}")
            }
            TranslateError::DeadlineExceeded { phase } => {
                write!(f, "deadline exceeded in phase {phase}")
            }
            TranslateError::Panicked { phase, message } => {
                write!(f, "translation panicked in phase {phase}: {message}")
            }
            TranslateError::ValidationFailed { phase, detail } => {
                write!(f, "output validation failed (phase {phase}): {detail}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

impl TranslateError {
    /// The phase the error is attributed to (`None` for resource exhaustion,
    /// which is a property of the whole function, not of one phase).
    pub fn phase(&self) -> Option<TranslatePhase> {
        match self {
            TranslateError::Malformed { phase, .. }
            | TranslateError::DeadlineExceeded { phase }
            | TranslateError::Panicked { phase, .. }
            | TranslateError::ValidationFailed { phase, .. } => Some(*phase),
            TranslateError::ResourceExhausted { .. } => None,
        }
    }
}

/// Resource bounds of an isolated translation. All bounds default to `None`
/// (unbounded), so `Limits::default()` never rejects a function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of blocks of the input function.
    pub max_blocks: Option<u64>,
    /// Maximum number of SSA values of the input function.
    pub max_values: Option<u64>,
    /// Maximum number of instructions of the input function.
    pub max_insts: Option<u64>,
    /// Fixpoint-pass budget of the liveness solvers — bounds the only loops
    /// of the pipeline whose trip count is data-dependent rather than
    /// structural, so a pathological input returns
    /// [`TranslateError::ResourceExhausted`] instead of hanging a worker.
    pub max_fixpoint_iters: Option<u64>,
}

impl Limits {
    /// No bounds at all (the `Default`).
    pub const UNBOUNDED: Limits =
        Limits { max_blocks: None, max_values: None, max_insts: None, max_fixpoint_iters: None };

    /// Checks the up-front size bounds against `func`. The fuel bound is not
    /// checked here — it is installed around the pipeline run and trips
    /// during execution.
    pub fn check_function(&self, func: &Function) -> Result<(), TranslateError> {
        let checks = [
            (Resource::Blocks, self.max_blocks, func.num_blocks() as u64),
            (Resource::Values, self.max_values, func.num_values() as u64),
            (Resource::Instructions, self.max_insts, func.num_insts() as u64),
        ];
        for (resource, limit, observed) in checks {
            if let Some(limit) = limit {
                if observed > limit {
                    return Err(TranslateError::ResourceExhausted { resource, limit, observed });
                }
            }
        }
        Ok(())
    }
}

thread_local! {
    /// The phase the current thread's pipeline most recently entered, for
    /// attributing a caught panic. Reset to `Verify` at each isolated
    /// function boundary.
    static PHASE: Cell<TranslatePhase> = const { Cell::new(TranslatePhase::Verify) };
}

/// Marks the current thread's pipeline as having entered `phase`, checks the
/// request's cancellation token (so a deadline aborts at the next phase
/// boundary even between fixpoint loops), and — with the `failpoints`
/// feature — asks the injector whether to stall or fire here. Called at
/// every phase boundary of the translation; the cost without failpoints and
/// without an installed deadline is two thread-local reads.
#[inline]
pub fn enter_phase(func_name: &str, phase: TranslatePhase) {
    PHASE.set(phase);
    ossa_liveness::fuel::cancel_tick();
    #[cfg(feature = "failpoints")]
    failpoints::fire(func_name, phase);
    #[cfg(not(feature = "failpoints"))]
    let _ = func_name;
}

/// The phase the current thread's pipeline most recently entered.
pub fn current_phase() -> TranslatePhase {
    PHASE.get()
}

/// Runs `f` with panic isolation, converting any unwind into a typed
/// [`TranslateError`] (see the module docs for the mapping). The caller must
/// treat its analysis caches and scratch as poisoned on `Err` — an unwind
/// can leave them mid-mutation — and rebuild them fresh.
pub fn catch_translate<R>(f: impl FnOnce() -> R) -> Result<R, TranslateError> {
    PHASE.set(TranslatePhase::Verify);
    catch_unwind(AssertUnwindSafe(f)).map_err(error_from_payload)
}

/// Maps a caught panic payload to a [`TranslateError`].
fn error_from_payload(payload: Box<dyn Any + Send>) -> TranslateError {
    if let Some(fuel) = payload.downcast_ref::<FuelExhausted>() {
        return TranslateError::ResourceExhausted {
            resource: Resource::FixpointIterations,
            limit: fuel.limit,
            observed: fuel.limit,
        };
    }
    if payload.downcast_ref::<Cancelled>().is_some() {
        return TranslateError::DeadlineExceeded { phase: current_phase() };
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    TranslateError::Panicked { phase: current_phase(), message }
}

/// Deterministic, seeded fault injection at the pipeline's phase
/// boundaries. Compiled in only with the `failpoints` cargo feature and
/// inert until [`failpoints::configure`] is called, so instrumented builds
/// behave identically to default builds when no injection is armed.
#[cfg(feature = "failpoints")]
pub mod failpoints {
    use super::TranslatePhase;
    use std::cell::Cell;
    use std::sync::RwLock;

    /// An armed injection campaign.
    #[derive(Clone, Copy, Debug)]
    pub struct FailpointConfig {
        /// Seed mixed into the per-site hash: different seeds poison
        /// different (but reproducible) subsets of a corpus.
        pub seed: u64,
        /// Injection probability in 1/1000ths, applied per (function, phase)
        /// site: 0 never fires, 1000 always fires.
        pub rate_per_mille: u32,
        /// Restrict firing to one phase (`None`: every phase is eligible,
        /// each hashed independently).
        pub phase: Option<TranslatePhase>,
    }

    static CONFIG: RwLock<Option<FailpointConfig>> = RwLock::new(None);

    /// Arms the injector process-wide. Tests serialise access (the harness
    /// config is global state, like a panic hook).
    pub fn configure(config: FailpointConfig) {
        *CONFIG.write().unwrap() = Some(config);
    }

    /// Disarms the injector.
    pub fn clear() {
        *CONFIG.write().unwrap() = None;
    }

    /// An armed stall campaign: selected (function, phase) sites sleep for
    /// `millis` instead of panicking, modelling a wedged or pathologically
    /// slow worker. The sleep is sliced and checks the cancellation token
    /// between slices, so a request deadline bounds even an injected stall —
    /// exactly the overload scenario the service watchdogs exist for.
    #[derive(Clone, Copy, Debug)]
    pub struct StallConfig {
        /// Seed mixed into the per-site hash (independent of the panic
        /// injector's subset under the same seed — see [`should_stall`]).
        pub seed: u64,
        /// Stall probability in 1/1000ths, applied per (function, phase).
        pub rate_per_mille: u32,
        /// Restrict stalling to one phase (`None`: every phase eligible).
        pub phase: Option<TranslatePhase>,
        /// How long a selected site stalls, in milliseconds.
        pub millis: u64,
    }

    static STALL: RwLock<Option<StallConfig>> = RwLock::new(None);

    /// Arms the stall injector process-wide.
    pub fn configure_stall(config: StallConfig) {
        *STALL.write().unwrap() = Some(config);
    }

    /// Disarms the stall injector.
    pub fn clear_stall() {
        *STALL.write().unwrap() = None;
    }

    /// Pure site predicate for stalls, mirroring [`should_fail`]: would the
    /// armed campaign stall at this (function, phase) site? Tests precompute
    /// the stalled subset of a corpus from this.
    pub fn should_stall(func_name: &str, phase: TranslatePhase) -> bool {
        let Some(config) = *STALL.read().unwrap() else {
            return false;
        };
        if config.phase.is_some_and(|p| p != phase) {
            return false;
        }
        // FNV-1a over (seed, name, tagged phase); the 0x40 bias keeps the
        // tag byte disjoint from both the panic injector's phase bytes and
        // the corruption injector's 0x80-biased kind bytes, so all three
        // campaigns poison independent subsets under one seed.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |byte: u8| hash = (hash ^ byte as u64).wrapping_mul(0x1000_0000_01b3);
        for byte in config.seed.to_le_bytes() {
            mix(byte);
        }
        for byte in func_name.bytes() {
            mix(byte);
        }
        mix(0x40 | phase as u8);
        (hash % 1000) < config.rate_per_mille as u64
    }

    /// Sleeps out an injected stall in 1 ms slices, checking the request's
    /// cancellation token between slices: a stall never outlives the
    /// deadline by more than one slice.
    fn stall_here(millis: u64) {
        let slice = std::time::Duration::from_millis(1);
        for _ in 0..millis {
            ossa_liveness::fuel::cancel_tick();
            std::thread::sleep(slice);
        }
        ossa_liveness::fuel::cancel_tick();
    }

    /// Pure site predicate: would the armed campaign fire at this
    /// (function, phase) site? Depends only on the config and the
    /// arguments — never on thread schedule or visit order — so a test can
    /// precompute the exact poisoned subset of a corpus and assert the
    /// engine reports exactly that subset.
    pub fn should_fail(func_name: &str, phase: TranslatePhase) -> bool {
        let Some(config) = *CONFIG.read().unwrap() else {
            return false;
        };
        if config.phase.is_some_and(|p| p != phase) {
            return false;
        }
        // FNV-1a over (seed, name, phase): stable across runs and platforms.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |byte: u8| hash = (hash ^ byte as u64).wrapping_mul(0x1000_0000_01b3);
        for byte in config.seed.to_le_bytes() {
            mix(byte);
        }
        for byte in func_name.bytes() {
            mix(byte);
        }
        mix(phase as u8);
        (hash % 1000) < config.rate_per_mille as u64
    }

    /// Phase-boundary hook: panics with a deterministic message when the
    /// armed campaign selects this site. Entering `Verify` marks a fresh
    /// per-function attempt, resetting the one-corruption-per-function
    /// budget. Injected faults model *transient first-attempt* failures:
    /// nothing fires on retries (see [`set_attempt`]), so recovery campaigns
    /// can assert the conservative retry heals every poisoned function.
    pub fn fire(func_name: &str, phase: TranslatePhase) {
        if phase == TranslatePhase::Verify {
            CORRUPTED.set(false);
        }
        if current_attempt() == 0 && should_stall(func_name, phase) {
            let millis = STALL.read().unwrap().map(|c| c.millis).unwrap_or(0);
            stall_here(millis);
        }
        if current_attempt() == 0 && should_fail(func_name, phase) {
            panic!("failpoint: injected fault in {func_name} at phase {phase}");
        }
    }

    /// The silent-miscompile species a corruption campaign injects into the
    /// sequentialized output — the two historical out-of-SSA bug families
    /// the paper opens with.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum CorruptionKind {
        /// Drop one inserted copy from a sequentialized parallel-copy
        /// window (the *lost-copy* bug).
        DropCopy,
        /// Swap two dependent copies inside a sequentialized window,
        /// clobbering a source before it is read (the *swap* bug).
        SwapCopies,
    }

    /// An armed output-corruption campaign. Orthogonal to
    /// [`FailpointConfig`]: corruption never panics — it silently mangles
    /// the emitted copies so only a post-translation validator can tell.
    #[derive(Clone, Copy, Debug)]
    pub struct CorruptionConfig {
        /// Seed mixed into the per-function hash.
        pub seed: u64,
        /// Corruption probability in 1/1000ths, applied per function.
        pub rate_per_mille: u32,
        /// Which miscompile to inject.
        pub kind: CorruptionKind,
    }

    static CORRUPTION: RwLock<Option<CorruptionConfig>> = RwLock::new(None);

    thread_local! {
        /// Retry attempt of the function currently translating on this
        /// thread. Injection (panics and corruption alike) only arms on
        /// attempt 0.
        static ATTEMPT: Cell<u32> = const { Cell::new(0) };
        /// Attempt offset installed by a driver running its *own* retry
        /// ladder above the engine (the translation service's degradation
        /// rungs). The engine resets [`ATTEMPT`] to 0 at the start of every
        /// policy call, which would re-arm injection on service-level
        /// retries; the base keeps `current_attempt` nonzero there.
        static ATTEMPT_BASE: Cell<u32> = const { Cell::new(0) };
        /// Whether the current function has already spent its
        /// one-corruption budget (reset at each `Verify` boundary).
        static CORRUPTED: Cell<bool> = const { Cell::new(false) };
    }

    /// Arms the corruption injector process-wide.
    pub fn configure_corruption(config: CorruptionConfig) {
        *CORRUPTION.write().unwrap() = Some(config);
    }

    /// Disarms the corruption injector.
    pub fn clear_corruption() {
        *CORRUPTION.write().unwrap() = None;
    }

    /// Records the retry attempt of the function about to translate on this
    /// thread. The isolated engines call this around each attempt; tests
    /// never need to.
    pub fn set_attempt(attempt: u32) {
        ATTEMPT.set(attempt);
    }

    /// Records an attempt *offset* added on top of [`set_attempt`], for
    /// drivers that run their own retry ladder above the engine's (the
    /// translation service's degradation rungs). Injection arms only when
    /// `base + attempt == 0`, so a service retry stays injection-free even
    /// though the engine call inside it starts back at attempt 0.
    pub fn set_attempt_base(base: u32) {
        ATTEMPT_BASE.set(base);
    }

    /// The retry attempt most recently recorded via [`set_attempt`], offset
    /// by [`set_attempt_base`].
    pub fn current_attempt() -> u32 {
        ATTEMPT_BASE.get().saturating_add(ATTEMPT.get())
    }

    /// Pure site predicate for corruption, mirroring [`should_fail`]: would
    /// the armed campaign corrupt this function's output? Tests precompute
    /// the candidate set from this.
    pub fn should_corrupt(func_name: &str, kind: CorruptionKind) -> bool {
        let Some(config) = *CORRUPTION.read().unwrap() else {
            return false;
        };
        if config.kind != kind {
            return false;
        }
        // FNV-1a over (seed, name, kind tag); the 0x80 bias keeps the tag
        // byte disjoint from the `should_fail` phase bytes so the two
        // injectors poison independent subsets under one seed.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |byte: u8| hash = (hash ^ byte as u64).wrapping_mul(0x1000_0000_01b3);
        for byte in config.seed.to_le_bytes() {
            mix(byte);
        }
        for byte in func_name.bytes() {
            mix(byte);
        }
        mix(0x80 | kind as u8);
        (hash % 1000) < config.rate_per_mille as u64
    }

    /// Emission-site hook: `true` exactly once per (function, attempt-0)
    /// when the armed campaign selects this function, consuming the
    /// per-function budget so a function with many parallel-copy windows is
    /// mangled in only one place.
    pub fn corrupt_here(func_name: &str, kind: CorruptionKind) -> bool {
        if current_attempt() != 0 || CORRUPTED.get() || !should_corrupt(func_name, kind) {
            return false;
        }
        CORRUPTED.set(true);
        true
    }

    /// Installs (once, process-wide) a panic hook that suppresses the
    /// default stderr report for injected-failpoint panics, so the
    /// fault-injection tests don't bury their output under expected
    /// backtraces. Other panics still report through the previous hook.
    pub fn silence_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.starts_with("failpoint:"));
                if !injected {
                    previous(info);
                }
            }));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_maps_str_panics_to_the_marked_phase() {
        let err = catch_translate(|| {
            enter_phase("f", TranslatePhase::Coalesce);
            panic!("boom");
        })
        .unwrap_err();
        assert_eq!(
            err,
            TranslateError::Panicked {
                phase: TranslatePhase::Coalesce,
                message: "boom".to_string()
            }
        );
    }

    #[test]
    fn catch_resets_the_phase_marker_per_invocation() {
        let _ = catch_translate(|| {
            enter_phase("f", TranslatePhase::Regalloc);
            panic!("first");
        });
        // A panic before any enter_phase call is attributed to Verify, not
        // to the previous function's last phase.
        let err = catch_translate(|| panic!("second")).unwrap_err();
        assert_eq!(err.phase(), Some(TranslatePhase::Verify));
    }

    #[test]
    fn catch_maps_cancellation_to_deadline_exceeded_with_phase() {
        let err = catch_translate(|| {
            enter_phase("f", TranslatePhase::Liveness);
            std::panic::panic_any(Cancelled);
        })
        .unwrap_err();
        assert_eq!(err, TranslateError::DeadlineExceeded { phase: TranslatePhase::Liveness });
        assert_eq!(err.phase(), Some(TranslatePhase::Liveness));
        assert_eq!(err.to_string(), "deadline exceeded in phase liveness");
    }

    #[test]
    fn expired_deadline_aborts_at_the_next_phase_boundary() {
        use std::time::{Duration, Instant};
        ossa_liveness::fuel::set_deadline(Some(Instant::now() - Duration::from_millis(1)));
        let err = catch_translate(|| {
            enter_phase("f", TranslatePhase::Coalesce);
        })
        .unwrap_err();
        ossa_liveness::fuel::set_deadline(None);
        assert_eq!(err, TranslateError::DeadlineExceeded { phase: TranslatePhase::Coalesce });
    }

    #[test]
    fn deadline_and_fuel_exhaustion_are_distinguishable() {
        // Satellite regression: the two time/resource budgets must map to
        // distinct taxonomy variants — a service retries a deadline miss on
        // another rung but treats fuel exhaustion as a property of the input.
        use std::time::{Duration, Instant};
        ossa_liveness::fuel::set_fixpoint_fuel(Some(0));
        let fuel_err = catch_translate(ossa_liveness::fuel::fixpoint_tick).unwrap_err();
        ossa_liveness::fuel::set_fixpoint_fuel(None);
        ossa_liveness::fuel::set_deadline(Some(Instant::now() - Duration::from_millis(1)));
        let deadline_err = catch_translate(ossa_liveness::fuel::cancel_tick).unwrap_err();
        ossa_liveness::fuel::set_deadline(None);
        assert!(matches!(fuel_err, TranslateError::ResourceExhausted { .. }));
        assert!(matches!(deadline_err, TranslateError::DeadlineExceeded { .. }));
        assert_ne!(fuel_err, deadline_err);
    }

    #[test]
    fn catch_maps_fuel_exhaustion_to_resource_exhausted() {
        ossa_liveness::fuel::set_fixpoint_fuel(Some(0));
        let err = catch_translate(ossa_liveness::fuel::fixpoint_tick).unwrap_err();
        ossa_liveness::fuel::set_fixpoint_fuel(None);
        assert_eq!(
            err,
            TranslateError::ResourceExhausted {
                resource: Resource::FixpointIterations,
                limit: 0,
                observed: 0,
            }
        );
    }

    #[test]
    fn limits_check_reports_the_first_exceeded_bound() {
        let mut b = ossa_ir::builder::FunctionBuilder::new("limited", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        b.ret(None);
        let func = b.finish();

        assert_eq!(Limits::default().check_function(&func), Ok(()));
        assert_eq!(Limits::UNBOUNDED.check_function(&func), Ok(()));
        let limits = Limits { max_blocks: Some(0), ..Limits::default() };
        assert_eq!(
            limits.check_function(&func),
            Err(TranslateError::ResourceExhausted {
                resource: Resource::Blocks,
                limit: 0,
                observed: 1,
            })
        );
    }

    #[test]
    fn errors_render_for_humans() {
        let err = TranslateError::ResourceExhausted {
            resource: Resource::Instructions,
            limit: 10,
            observed: 42,
        };
        assert_eq!(err.to_string(), "resource exhausted: 42 instructions exceeds the limit of 10");
        let err = TranslateError::Panicked {
            phase: TranslatePhase::Sequentialize,
            message: "boom".to_string(),
        };
        assert_eq!(err.to_string(), "translation panicked in phase sequentialize: boom");
        let err = TranslateError::ValidationFailed {
            phase: TranslatePhase::Validate,
            detail: "diverged on inputs [1, 2]".to_string(),
        };
        assert_eq!(
            err.to_string(),
            "output validation failed (phase validate): diverged on inputs [1, 2]"
        );
        assert_eq!(err.phase(), Some(TranslatePhase::Validate));
    }
}
