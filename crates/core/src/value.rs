//! The "SSA value" of variables (Section III-A of the paper).
//!
//! In SSA every variable has a single definition, so "has the same value" is
//! an equivalence relation that can be computed for free: walking the
//! dominator tree in pre-order, a copy `b = a` gives `V(b) = V(a)` and any
//! other definition gives `V(b) = b`. The representative of an equivalence
//! class is the variable whose definition dominates the definitions of all
//! other members.
//!
//! This is the ingredient that turns live-range *intersection* into the
//! paper's value-based *interference*: `a` and `b` interfere iff their live
//! ranges intersect **and** `V(a) ≠ V(b)`.

use ossa_ir::entity::{SecondaryMap, Value};
use ossa_ir::{ControlFlowGraph, DominatorTree, Function, InstData};

/// Table mapping each SSA variable to its value representative.
#[derive(Clone, Debug, Default)]
pub struct ValueTable {
    value_of: SecondaryMap<Value, Option<Value>>,
    /// Parallel-copy resolution scratch of [`ValueTable::compute_into`].
    resolved: Vec<(Value, Value)>,
}

impl ValueTable {
    /// Computes the value table of `func` (which must be in SSA form) by a
    /// pre-order traversal of the dominator tree.
    pub fn compute(func: &Function, domtree: &DominatorTree) -> Self {
        let mut this = Self::default();
        this.compute_into(func, domtree);
        this
    }

    /// Recomputes the table for `func` in place, reusing the dense map of a
    /// previous (possibly different) function. Identical to
    /// [`ValueTable::compute`] except for the heap traffic.
    pub fn compute_into(&mut self, func: &Function, domtree: &DominatorTree) {
        let Self { value_of, resolved } = self;
        value_of.truncate(func.num_values());
        for slot in value_of.values_mut() {
            *slot = None;
        }
        value_of.resize(func.num_values());
        // Only copy destinations need an entry: `value_of()` falls back to
        // the identity for an unset slot, which is exactly the answer for a
        // non-copy definition — so the catch-all def walk the table used to
        // perform wrote values that were never observably different.
        for &block in domtree.preorder() {
            for &inst in func.block_insts(block) {
                match func.inst(inst) {
                    InstData::Copy { dst, src } => {
                        value_of[*dst] = Some(value_of[*src].unwrap_or(*src));
                    }
                    InstData::ParallelCopy { copies } => {
                        // All sources are read before any destination is
                        // written, and in SSA a destination cannot shadow a
                        // source of the same parallel copy, so resolving
                        // sources first (into a reusable scratch) is sound.
                        resolved.clear();
                        resolved.extend(
                            func.copy_list(*copies)
                                .iter()
                                .map(|c| (c.dst, value_of[c.src].unwrap_or(c.src))),
                        );
                        for &(dst, value) in resolved.iter() {
                            value_of[dst] = Some(value);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Computes the value table, building the analyses internally.
    pub fn of(func: &Function) -> Self {
        let cfg = ControlFlowGraph::compute(func);
        let domtree = DominatorTree::compute(func, &cfg);
        Self::compute(func, &domtree)
    }

    /// The value representative of `v` (itself if `v` is not a copy).
    pub fn value_of(&self, v: Value) -> Value {
        self.value_of[v].unwrap_or(v)
    }

    /// Returns `true` if `a` and `b` are known to carry the same value.
    pub fn same_value(&self, a: Value, b: Value) -> bool {
        self.value_of(a) == self.value_of(b)
    }

    /// Registers a fresh value `new` that is a copy of `of` (used when the
    /// translation materializes copies after the table was built).
    pub fn record_copy(&mut self, new: Value, of: Value) {
        let root = self.value_of(of);
        self.value_of[new] = Some(root);
    }

    /// Registers a fresh value as having its own value (a new definition that
    /// is not a copy).
    pub fn record_fresh(&mut self, new: Value) {
        self.value_of[new] = Some(new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{BinaryOp, CopyPair};

    #[test]
    fn copies_share_the_value_of_their_root() {
        let mut b = FunctionBuilder::new("copies", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let a = b.copy(x);
        let c = b.copy(a);
        let other = b.iconst(1);
        let sum = b.binary(BinaryOp::Add, c, other);
        b.ret(Some(sum));
        let f = b.finish();
        let values = ValueTable::of(&f);
        assert_eq!(values.value_of(a), x);
        assert_eq!(values.value_of(c), x);
        assert!(values.same_value(a, c));
        assert!(values.same_value(x, c));
        assert!(!values.same_value(x, other));
        assert_eq!(values.value_of(sum), sum);
    }

    #[test]
    fn parallel_copies_propagate_values() {
        let mut b = FunctionBuilder::new("parcopy", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let a = b.iconst(1);
        let c = b.iconst(2);
        let x = b.declare_value();
        let y = b.declare_value();
        b.parallel_copy(vec![CopyPair { dst: x, src: a }, CopyPair { dst: y, src: c }]);
        let s = b.binary(BinaryOp::Add, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let values = ValueTable::of(&f);
        assert_eq!(values.value_of(x), a);
        assert_eq!(values.value_of(y), c);
        assert!(!values.same_value(x, y));
    }

    #[test]
    fn phi_defines_a_new_value() {
        let mut b = FunctionBuilder::new("phi", 1);
        let entry = b.create_block();
        let left = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let x = b.iconst(1);
        b.branch(p, left, join);
        b.switch_to_block(left);
        let y = b.copy(x);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(entry, x), (left, y)]);
        b.ret(Some(m));
        let f = b.finish();
        let values = ValueTable::of(&f);
        // Even though both φ inputs carry V(x), the φ result is a fresh value
        // (the paper deliberately does not propagate through φs).
        assert_eq!(values.value_of(m), m);
        assert_eq!(values.value_of(y), x);
    }

    #[test]
    fn record_copy_and_fresh_extend_the_table() {
        let mut b = FunctionBuilder::new("extend", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.ret(Some(x));
        let mut f = b.finish();
        let mut values = ValueTable::of(&f);
        let copy_of_x = f.new_value();
        let fresh = f.new_value();
        values.record_copy(copy_of_x, x);
        values.record_fresh(fresh);
        assert!(values.same_value(copy_of_x, x));
        assert!(!values.same_value(fresh, x));
        // Chained recording resolves to the root.
        let copy_of_copy = f.new_value();
        values.record_copy(copy_of_copy, copy_of_x);
        assert_eq!(values.value_of(copy_of_copy), x);
    }
}
