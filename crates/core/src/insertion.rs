//! Copy insertion — Method I of Sreedhar et al. with the paper's fixes.
//!
//! For every φ-function `a0 = φ(a1, …, an)` in block `B0` with predecessors
//! `Bi`, copy insertion:
//!
//! * creates `n + 1` fresh variables `a0', …, an'`,
//! * adds the move `ai' ← ai` to a *parallel copy* placed at the end of `Bi`
//!   — before the terminator, so that values used by the branch (Figure 1)
//!   are naturally taken into account by liveness,
//! * adds the move `a0 ← a0'` to a parallel copy placed right after the φ
//!   group of `B0`,
//! * rewrites the φ as `a0' = φ(a1', …, an')`.
//!
//! The primed values form the *φ-web*; by Lemma 1 of the paper they never
//! interfere and are pre-coalesced unconditionally.
//!
//! Corner case (Figure 2): when a φ argument is defined by the predecessor's
//! terminator itself (`br_dec`), no copy can be inserted after the
//! definition, so the incoming edge is split and the copy placed on the new
//! block instead.
//!
//! This module also isolates *pinned* values (register renaming constraints,
//! Section III-D): their live ranges are split with parallel copies around
//! the constraining instruction so that the pinned value spans only that
//! instruction.

use std::collections::HashMap;

use ossa_ir::entity::{Block, EntitySet, Inst, SecondaryMap, Value};
use ossa_ir::instruction::callconv;
use ossa_ir::{CopyList, CopyPair, DefSite, Function, InstData, PhiArg};
use ossa_ssa::split_edge;

/// One φ-web produced by copy insertion: the primed values to pre-coalesce.
#[derive(Clone, Debug)]
pub struct PhiWeb {
    /// The primed values `a0', a1', …, an'` (result first).
    pub members: Vec<Value>,
    /// The block holding the φ-function.
    pub block: Block,
    /// The moves related to this φ (the result copy and one per argument).
    pub moves: Vec<InsertedMove>,
}

/// One move inserted by copy insertion; the affinity the coalescer will try
/// to remove.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertedMove {
    /// Destination of the move.
    pub dst: Value,
    /// Source of the move.
    pub src: Value,
    /// Block whose frequency weighs the move.
    pub block: Block,
}

/// Result of copy insertion. The struct also owns the recycled working
/// storage of [`insert_phi_copies_into`] — retired φ-web buffers and the
/// per-run caches — so a corpus driver that keeps one `CopyInsertion` in its
/// scratch ([`crate::TranslateScratch`]) inserts copies for function after
/// function without reallocating the web and move vectors.
#[derive(Clone, Debug, Default)]
pub struct CopyInsertion {
    /// φ-webs (one per φ-function).
    pub webs: Vec<PhiWeb>,
    /// All inserted moves (φ-related plus pinned-isolation ones).
    pub moves: Vec<InsertedMove>,
    /// Number of edges split because of terminator-defined φ arguments.
    pub edges_split: usize,
    /// Number of fresh values created.
    pub values_created: usize,
    /// Blocks whose instruction stream this insertion run touched, each
    /// listed once — the dirty set the caller hands to the per-block
    /// liveness invalidation when no edge was split.
    pub dirty_blocks: Vec<Block>,
    /// Membership set of `dirty_blocks`.
    dirty_seen: EntitySet<Block>,
    /// Retired φ-webs whose member/move buffers the next run reuses.
    spare_webs: Vec<PhiWeb>,
    /// Per-run working storage of [`insert_phi_copies_into`].
    scratch: InsertionScratch,
}

/// Recycled per-run caches and temporaries of [`insert_phi_copies_into`]
/// and [`isolate_pinned_values`].
#[derive(Clone, Debug, Default)]
struct InsertionScratch {
    defs: SecondaryMap<Value, Option<DefSite>>,
    pred_pcs: ParallelCopyCache,
    entry_pcs: ParallelCopyCache,
    split_edges: HashMap<(Block, Block), Block>,
    preds_split: Vec<Block>,
    phis: Vec<Inst>,
    new_args: Vec<PhiArg>,
    iso_uses: Vec<(usize, Value, u32)>,
    iso_defs: Vec<Value>,
    iso_rewrites: Vec<(usize, Value)>,
    iso_replacement: HashMap<Value, Value>,
    iso_pairs: Vec<CopyPair>,
    defs_tmp: Vec<Value>,
    reserve_counts: SecondaryMap<Block, u32>,
}

impl CopyInsertion {
    /// Clears the result for a new function, retiring the φ-web buffers into
    /// the spare pool so the next run reuses them.
    pub fn reset(&mut self) {
        for mut web in self.webs.drain(..) {
            web.members.clear();
            web.moves.clear();
            self.spare_webs.push(web);
        }
        self.moves.clear();
        self.edges_split = 0;
        self.values_created = 0;
        self.dirty_blocks.clear();
        self.dirty_seen.reset();
    }

    fn record_move(&mut self, dst: Value, src: Value, block: Block) {
        self.moves.push(InsertedMove { dst, src, block });
    }

    fn mark_dirty(&mut self, block: Block) {
        if self.dirty_seen.insert(block) {
            self.dirty_blocks.push(block);
        }
    }

    fn take_web(&mut self, block: Block) -> PhiWeb {
        match self.spare_webs.pop() {
            Some(mut web) => {
                web.block = block;
                web
            }
            None => PhiWeb { members: Vec::new(), block, moves: Vec::new() },
        }
    }
}

/// Per-block cache of already-created parallel copies, indexed densely.
type ParallelCopyCache = SecondaryMap<Block, Option<Inst>>;

/// Finds or creates the parallel copy at the end of `block` (just before the
/// terminator).
fn pred_parallel_copy(func: &mut Function, block: Block, cache: &mut ParallelCopyCache) -> Inst {
    if let Some(inst) = cache[block] {
        return inst;
    }
    let pos =
        func.block_len(block).saturating_sub(if func.terminator(block).is_some() { 1 } else { 0 });
    let inst = func.insert_inst(block, pos, InstData::ParallelCopy { copies: CopyList::default() });
    cache[block] = Some(inst);
    inst
}

/// Finds or creates the parallel copy right after the φ group of `block`.
fn entry_parallel_copy(func: &mut Function, block: Block, cache: &mut ParallelCopyCache) -> Inst {
    if let Some(inst) = cache[block] {
        return inst;
    }
    let pos = func.first_non_phi(block);
    let inst = func.insert_inst(block, pos, InstData::ParallelCopy { copies: CopyList::default() });
    cache[block] = Some(inst);
    inst
}

fn push_move(func: &mut Function, pc: Inst, dst: Value, src: Value) {
    func.parallel_copy_push(pc, CopyPair { dst, src });
}

/// Cheap pre-pass reserving the predicted copy-insertion growth up front.
///
/// One read-only walk over the function estimates how much the translation
/// will grow it — fresh primed values per φ, entry/predecessor parallel
/// copies, pinned-isolation clones around calls, and the sequential copies
/// the parallel-copy sequentialization expands into — and reserves that
/// capacity once: the instruction and value primary maps, the copy-operand
/// arena, and each touched block's instruction list. This replaces the
/// amortized doubling those containers would otherwise do mid-translation
/// with (at most) one allocation per container; on a recycled pool slot
/// whose capacity already covers the estimate it allocates nothing at all.
///
/// The estimate is deliberately a rough upper bound — reserving is
/// capacity-only, so over- or under-shooting never changes translation
/// output, only how many times the containers grow.
pub fn reserve_translation_growth(func: &mut Function, out: &mut CopyInsertion) {
    let scratch = &mut out.scratch;
    scratch.reserve_counts.truncate(0);
    scratch.reserve_counts.resize(func.num_blocks());

    // Predicted parallel-copy moves (one primed value each), and φ-carrying
    // blocks (one entry parallel copy each).
    let mut total_moves = 0usize;
    let mut new_values = 0usize;
    let mut phi_blocks = 0usize;

    for bi in 0..func.layout().len() {
        let block = func.layout()[bi];
        let mut block_phis = 0u32;
        for ii in 0..func.block_len(block) {
            let inst = func.block_insts(block)[ii];
            match *func.inst(inst) {
                InstData::Phi { .. } => {
                    block_phis += 1;
                    if let Some(args) = func.inst_phi_args(inst) {
                        let nargs = args.len();
                        total_moves += nargs + 1;
                        new_values += nargs + 1;
                        // Each argument adds one move to a parallel copy at
                        // the end of its predecessor, which sequentialization
                        // later expands in place (≤ 2 instructions per move
                        // counting cycle-breaking temporaries).
                        for ai in 0..nargs {
                            let pred = func.inst_phi_args(inst).expect("is a φ")[ai].block;
                            scratch.reserve_counts[pred] += 2;
                        }
                    }
                }
                InstData::Call { dst, args, .. } => {
                    // Pinned-isolation clones: one per pinned covered
                    // argument position plus one for a pinned result, split
                    // around the call by two parallel copies.
                    let pinned_dst = dst.is_some_and(|d| func.pinned_reg(d).is_some());
                    let pinned_args = func
                        .value_list(args)
                        .iter()
                        .take(callconv::NUM_ARG_REGS)
                        .filter(|&&a| func.pinned_reg(a).is_some())
                        .count();
                    let clones = pinned_args + usize::from(pinned_dst);
                    if clones > 0 {
                        new_values += clones;
                        total_moves += 2 * clones;
                        scratch.reserve_counts[block] += 2 + 2 * clones as u32;
                    }
                }
                _ => {}
            }
        }
        if block_phis > 0 {
            phi_blocks += 1;
            // Entry parallel copy, its sequential expansion (one move per φ
            // plus a possible temporary).
            scratch.reserve_counts[block] += 2 * block_phis + 2;
        }
    }

    if total_moves == 0 {
        return;
    }

    // Parallel copies plus their sequential expansion; sequentialization
    // introduces at most one temporary value per cyclic parallel copy.
    func.reserve_insts(2 * total_moves + 2 * phi_blocks);
    func.reserve_values(new_values + total_moves / 2);
    // Copy lists grow move by move through power-of-two size classes, so the
    // arena sees up to ~2× the final move count in retired blocks; reserve
    // generously — capacity is recycled across every function in the slot.
    func.pools_mut().copies.reserve(4 * total_moves);
    for bi in 0..func.num_blocks() {
        let block = Block::from_index(bi);
        let extra = scratch.reserve_counts[block];
        if extra > 0 {
            func.reserve_block_insts(block, extra as usize);
        }
    }
}

/// Runs Method I copy insertion on `func` (in SSA form). Returns the φ-webs
/// and the inserted moves.
pub fn insert_phi_copies(func: &mut Function) -> CopyInsertion {
    let mut result = CopyInsertion::default();
    insert_phi_copies_into(func, &mut result);
    result
}

/// Like [`insert_phi_copies`], appending the webs and moves to a
/// caller-owned (and typically recycled) [`CopyInsertion`]. Pinned-isolation
/// moves already recorded in `result` are kept; the φ moves follow them.
pub fn insert_phi_copies_into(func: &mut Function, result: &mut CopyInsertion) {
    // Work on the scratch by value so `result` stays freely borrowable for
    // the web/move recording below; restored before returning.
    let mut scratch = std::mem::take(&mut result.scratch);
    func.def_sites_into(&mut scratch.defs, &mut scratch.defs_tmp);
    scratch.pred_pcs.truncate(0);
    scratch.entry_pcs.truncate(0);
    scratch.split_edges.clear();

    // Edge splitting appends blocks; only the blocks that exist now can
    // carry φs, so a plain index loop visits exactly the original layout.
    let num_blocks = func.num_blocks();
    for bi in 0..num_blocks {
        let block = Block::from_index(bi);
        scratch.phis.clear();
        scratch.phis.extend(
            func.block_insts(block).iter().copied().take_while(|&inst| func.inst(inst).is_phi()),
        );
        if scratch.phis.is_empty() {
            continue;
        }

        // Split, once per predecessor, the edges whose φ arguments are
        // defined by the predecessor's terminator (the br_dec case).
        scratch.preds_split.clear();
        for &phi in &scratch.phis {
            let Some(args) = func.inst_phi_args(phi) else { continue };
            for arg in args {
                if let (Some(site), Some(term)) =
                    (scratch.defs[arg.value], func.terminator(arg.block))
                {
                    if site.inst == term && !scratch.preds_split.contains(&arg.block) {
                        scratch.preds_split.push(arg.block);
                    }
                }
            }
        }
        for i in 0..scratch.preds_split.len() {
            let pred = scratch.preds_split[i];
            if let std::collections::hash_map::Entry::Vacant(e) =
                scratch.split_edges.entry((pred, block))
            {
                let middle = split_edge(func, pred, block);
                e.insert(middle);
                result.edges_split += 1;
            }
        }

        let entry_pc = entry_parallel_copy(func, block, &mut scratch.entry_pcs);
        result.mark_dirty(block);

        for &phi in &scratch.phis {
            // Read the φ shape without cloning its argument list.
            let (dst, num_args) = {
                let InstData::Phi { dst, args } = func.inst(phi) else { continue };
                (*dst, args.len())
            };
            let mut web = result.take_web(block);

            // Result copy: a0 = a0' after the φ group; the φ now defines a0'.
            let primed_dst = func.new_value();
            result.values_created += 1;
            push_move(func, entry_pc, dst, primed_dst);
            result.record_move(dst, primed_dst, block);
            web.moves.push(InsertedMove { dst, src: primed_dst, block });
            web.members.push(primed_dst);

            // Argument copies: ai' = ai at the end of each predecessor. The
            // φ's own argument list is untouched until the rewrite below, so
            // reading one argument per iteration is sound while the
            // surrounding code mutates other instructions.
            scratch.new_args.clear();
            for i in 0..num_args {
                let arg = {
                    let InstData::Phi { args, .. } = func.inst(phi) else { unreachable!() };
                    func.phi_list(*args)[i]
                };
                let primed = func.new_value();
                result.values_created += 1;
                let copy_block =
                    *scratch.split_edges.get(&(arg.block, block)).unwrap_or(&arg.block);
                let pc = pred_parallel_copy(func, copy_block, &mut scratch.pred_pcs);
                push_move(func, pc, primed, arg.value);
                result.mark_dirty(copy_block);
                result.record_move(primed, arg.value, copy_block);
                web.moves.push(InsertedMove { dst: primed, src: arg.value, block: copy_block });
                web.members.push(primed);
                scratch.new_args.push(PhiArg { block: copy_block, value: primed });
            }

            // Rewrite the φ in place, reusing its argument storage (the
            // argument count is unchanged, so the pool block is).
            if let InstData::Phi { dst, .. } = func.inst_mut(phi) {
                *dst = primed_dst;
            }
            func.phi_args_mut(phi).copy_from_slice(&scratch.new_args);
            result.webs.push(web);
        }
    }
    result.scratch = scratch;
}

/// Splits the live ranges of pinned values so that the pinned value spans
/// only its constraining instruction, as the paper does for register
/// renaming constraints. Returns the inserted moves (already recorded as
/// affinities) appended to `out`.
pub fn isolate_pinned_values(func: &mut Function, out: &mut CopyInsertion) {
    // Work on the scratch by value so `out` stays freely borrowable for the
    // move recording below; restored before returning.
    let mut scratch = std::mem::take(&mut out.scratch);
    for bi in 0..func.num_blocks() {
        let block = Block::from_index(bi);
        let mut pos = 0;
        while pos < func.block_len(block) {
            let inst = func.block_insts(block)[pos];
            // Only calls are constraining instructions in this model
            // (calling conventions / dedicated registers); a pinned value is
            // isolated where the constraint applies, not at every definition
            // or use. Checked up front so the hot path never clones φ or
            // parallel-copy argument vectors.
            if !matches!(func.inst(inst), InstData::Call { .. }) {
                pos += 1;
                continue;
            }
            // Calling-convention constraints are *positional*: at this call
            // site, argument `i` must live in argument register
            // `callconv::arg_reg(i)`, one clone per covered position (the
            // same value in two positions needs two clones in two
            // registers). Cloning with the value's global pin instead (as
            // the seed did) miscompiles when a value pinned at one site
            // reappears at a different position of another call: two
            // arguments of one call can end up claiming the same register —
            // an unsatisfiable constraint the coalescer then trips over. A
            // pinned value in a position past the convention carries no
            // constraint at this site and keeps its pin until its own
            // pinning site is reached.
            scratch.iso_uses.clear();
            scratch.iso_defs.clear();
            scratch.defs_tmp.clear();
            {
                let data = func.inst(inst);
                if let InstData::Call { args, .. } = data {
                    let args = func.value_list(*args);
                    for (i, &u) in args.iter().take(callconv::NUM_ARG_REGS).enumerate() {
                        if func.pinned_reg(u).is_some() {
                            scratch.iso_uses.push((i, u, callconv::arg_reg(i)));
                        }
                    }
                }
                data.collect_defs(func.pools(), &mut scratch.defs_tmp);
            }
            for i in 0..scratch.defs_tmp.len() {
                let d = scratch.defs_tmp[i];
                if func.pinned_reg(d).is_some() {
                    scratch.iso_defs.push(d);
                }
            }
            if scratch.iso_uses.is_empty() && scratch.iso_defs.is_empty() {
                pos += 1;
                continue;
            }

            // Clone each covered argument position into a short-lived pinned
            // value defined by a parallel copy right before the instruction,
            // rewriting that position (and only it) to the clone.
            if !scratch.iso_uses.is_empty() {
                scratch.iso_pairs.clear();
                scratch.iso_rewrites.clear();
                for &(arg_index, u, reg) in &scratch.iso_uses {
                    let clone = func.new_value();
                    func.pin_value(clone, reg);
                    out.values_created += 1;
                    scratch.iso_pairs.push(CopyPair { dst: clone, src: u });
                    out.record_move(clone, u, block);
                    scratch.iso_rewrites.push((arg_index, clone));
                }
                let copies = func.make_copy_list(&scratch.iso_pairs);
                func.insert_inst(block, pos, InstData::ParallelCopy { copies });
                out.mark_dirty(block);
                pos += 1; // the constraining instruction moved one slot down
                let inst = func.block_insts(block)[pos];
                let args = func.call_args_mut(inst);
                for &(arg_index, clone) in &scratch.iso_rewrites {
                    args[arg_index] = clone;
                }
                for &(_, u, _) in &scratch.iso_uses {
                    unpin(func, u);
                }
            }

            // Redirect each pinned definition into a short-lived pinned clone
            // copied back right after the instruction. Terminators cannot be
            // followed by a copy in the same block, so their definitions
            // (only `br_dec` counters) keep their pin untouched.
            if !scratch.iso_defs.is_empty() && !func.inst(inst).is_terminator() {
                let inst = func.block_insts(block)[pos];
                scratch.iso_pairs.clear();
                scratch.iso_replacement.clear();
                for &d in &scratch.iso_defs {
                    let reg = func.pinned_reg(d).expect("pinned");
                    let clone = func.new_value();
                    func.pin_value(clone, reg);
                    out.values_created += 1;
                    scratch.iso_pairs.push(CopyPair { dst: d, src: clone });
                    out.record_move(d, clone, block);
                    scratch.iso_replacement.insert(d, clone);
                }
                let replacement = std::mem::take(&mut scratch.iso_replacement);
                func.map_inst_defs(inst, |v| replacement.get(&v).copied().unwrap_or(v));
                scratch.iso_replacement = replacement;
                let copies = func.make_copy_list(&scratch.iso_pairs);
                func.insert_inst(block, pos + 1, InstData::ParallelCopy { copies });
                out.mark_dirty(block);
                for &d in &scratch.iso_defs {
                    unpin(func, d);
                }
                pos += 1;
            }
            pos += 1;
        }
    }
    out.scratch = scratch;
}

fn unpin(func: &mut Function, value: Value) {
    // There is no direct "unpin" in the IR; re-creating the info is enough
    // because pinning is only additive. We emulate unpinning by tracking the
    // pinned clones instead: the original keeps its pin cleared.
    func.clear_pin(value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{verify_ssa, BinaryOp};
    use ossa_ssa::is_conventional;

    /// The lost-copy problem (paper Figure 4a).
    fn lost_copy() -> Function {
        let mut b = FunctionBuilder::new("lost-copy", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let x1 = b.iconst(1);
        b.jump(header);
        b.switch_to_block(header);
        let x3 = b.declare_value();
        let x2 = b.phi(vec![(entry, x1), (header, x3)]);
        let one = b.iconst(1);
        b.func_mut()
            .append_inst(header, InstData::Binary { op: BinaryOp::Add, dst: x3, args: [x2, one] });
        b.branch(p, header, exit);
        b.switch_to_block(exit);
        b.ret(Some(x2));
        b.finish()
    }

    /// The swap problem (paper Figure 3a).
    fn swap_problem() -> Function {
        let mut b = FunctionBuilder::new("swap", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let a1 = b.iconst(1);
        let b1 = b.iconst(2);
        b.jump(header);
        b.switch_to_block(header);
        let a2 = b.declare_value();
        let b2 = b.declare_value();
        b.phi_to(a2, vec![(entry, a1), (header, b2)]);
        b.phi_to(b2, vec![(entry, b1), (header, a2)]);
        b.branch(p, header, exit);
        b.switch_to_block(exit);
        let s = b.binary(BinaryOp::Add, a2, b2);
        b.ret(Some(s));
        b.finish()
    }

    #[test]
    fn insertion_makes_lost_copy_conventional() {
        let mut f = lost_copy();
        assert!(!is_conventional(&f));
        let result = insert_phi_copies(&mut f);
        verify_ssa(&f).expect("valid SSA after insertion");
        assert!(is_conventional(&f), "Method I must produce CSSA (Lemma 1)");
        assert_eq!(result.webs.len(), 1);
        assert_eq!(result.webs[0].members.len(), 3); // a0', a1', a2'
        assert_eq!(result.moves.len(), 3);
        assert_eq!(result.edges_split, 0);
    }

    #[test]
    fn insertion_makes_swap_conventional() {
        let mut f = swap_problem();
        assert!(!is_conventional(&f));
        let result = insert_phi_copies(&mut f);
        verify_ssa(&f).expect("valid SSA after insertion");
        assert!(is_conventional(&f));
        assert_eq!(result.webs.len(), 2);
        // 2 φs × (1 result + 2 args) moves.
        assert_eq!(result.moves.len(), 6);
    }

    #[test]
    fn copies_are_placed_before_the_branch_use() {
        // Figure 1 of the paper: the predecessor ends with a branch that uses
        // a value; the inserted parallel copy must come before it.
        let mut f = lost_copy();
        insert_phi_copies(&mut f);
        let header = f.blocks().nth(1).unwrap();
        let insts = f.block_insts(header);
        let last = *insts.last().unwrap();
        assert!(f.inst(last).is_terminator());
        let second_to_last = insts[insts.len() - 2];
        assert!(matches!(f.inst(second_to_last), InstData::ParallelCopy { .. }));
    }

    #[test]
    fn brdec_arguments_force_edge_splitting() {
        // Figure 2 of the paper: the φ argument is defined by the br_dec
        // terminator of the predecessor, so the edge must be split.
        let mut b = FunctionBuilder::new("brdec", 1);
        let entry = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        b.jump(body);
        b.switch_to_block(body);
        let u_dec = b.declare_value();
        let t0 = b.declare_value();
        let u = b.phi(vec![(entry, n), (body, u_dec)]);
        let t1 = b.phi(vec![(entry, n), (body, t0)]);
        let t_next = b.binary(BinaryOp::Add, t1, u);
        b.func_mut().append_inst(body, InstData::Copy { dst: t0, src: t_next });
        b.func_mut().append_inst(
            body,
            InstData::BrDec { counter: u, dec: u_dec, loop_dest: body, exit_dest: exit },
        );
        b.switch_to_block(exit);
        let s = b.binary(BinaryOp::Add, t1, u_dec);
        b.ret(Some(s));
        let mut f = b.finish();
        verify_ssa(&f).expect("valid before");
        let before_blocks = f.num_blocks();
        let result = insert_phi_copies(&mut f);
        verify_ssa(&f).expect("valid SSA after insertion with edge splitting");
        assert_eq!(result.edges_split, 1);
        assert_eq!(f.num_blocks(), before_blocks + 1);
        assert!(is_conventional(&f));
    }

    #[test]
    fn pinned_values_are_isolated_around_calls() {
        let mut b = FunctionBuilder::new("pinned", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let r = b.call(1, vec![x]);
        let s = b.binary(BinaryOp::Add, r, x);
        b.ret(Some(s));
        let mut f = b.finish();
        f.pin_value(x, 1);
        f.pin_value(r, 0);
        let mut insertion = CopyInsertion::default();
        isolate_pinned_values(&mut f, &mut insertion);
        verify_ssa(&f).expect("valid SSA after isolation");
        // x and r are no longer pinned; their clones around the call are.
        assert_eq!(f.pinned_reg(x), None);
        assert_eq!(f.pinned_reg(r), None);
        let pinned: Vec<_> = f.values().filter(|&v| f.pinned_reg(v).is_some()).collect();
        assert_eq!(pinned.len(), 2);
        assert_eq!(insertion.moves.len(), 2);
        // The call now reads/writes the clones.
        let call = f
            .blocks()
            .flat_map(|bl| f.block_insts(bl).iter().copied())
            .find(|&i| matches!(f.inst(i), InstData::Call { .. }))
            .unwrap();
        for v in f.inst(call).uses(f.pools()).into_iter().chain(f.inst(call).defs(f.pools())) {
            assert!(f.pinned_reg(v).is_some());
        }
    }

    #[test]
    fn duplicated_call_argument_gets_one_clone_per_position() {
        // call f(x, x): both covered positions carry a constraint, so each
        // needs its own clone in its own argument register — deduping by
        // value would silently drop the second position's constraint.
        let mut b = FunctionBuilder::new("dup-arg", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let r = b.call(1, vec![x, x]);
        b.ret(Some(r));
        let mut f = b.finish();
        f.pin_value(x, callconv::arg_reg(0));
        let mut insertion = CopyInsertion::default();
        isolate_pinned_values(&mut f, &mut insertion);
        verify_ssa(&f).expect("valid SSA after isolation");
        let call = f
            .blocks()
            .flat_map(|bl| f.block_insts(bl).iter().copied())
            .find(|&i| matches!(f.inst(i), InstData::Call { .. }))
            .unwrap();
        let InstData::Call { args, .. } = f.inst(call) else { panic!() };
        let args = f.value_list(*args);
        assert_ne!(args[0], args[1], "each position must have its own clone");
        assert_eq!(f.pinned_reg(args[0]), Some(callconv::arg_reg(0)));
        assert_eq!(f.pinned_reg(args[1]), Some(callconv::arg_reg(1)));
        assert_eq!(f.pinned_reg(x), None, "the original is unpinned after isolation");
    }

    #[test]
    fn function_without_phis_is_unchanged_by_insertion() {
        let mut b = FunctionBuilder::new("plain", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let y = b.binary(BinaryOp::Add, x, x);
        b.ret(Some(y));
        let mut f = b.finish();
        let before = f.display().to_string();
        let result = insert_phi_copies(&mut f);
        assert!(result.webs.is_empty());
        assert!(result.moves.is_empty());
        assert_eq!(f.display().to_string(), before);
    }
}
