//! # ossa-destruct — out-of-SSA translation by coalescing with value-based interference
//!
//! This crate is the reproduction of the primary contribution of
//! *"Revisiting Out-of-SSA Translation for Correctness, Code Quality, and
//! Efficiency"* (Boissinot, Darte, Rastello, Dupont de Dinechin, Guillon —
//! CGO 2009). The translation is organised exactly as the paper's four
//! phases:
//!
//! 1. **Copy insertion** ([`insertion`]) — parallel copies for every
//!    φ-function as in Sreedhar et al. Method I, with the Figure 1 fix
//!    (copies placed before branch uses) and the Figure 2 corner case
//!    (edges split when a φ argument is defined by a `br_dec` terminator),
//!    plus live-range splitting for register renaming constraints;
//! 2. **Value-based interference** ([`value`], [`interference`]) — two
//!    variables interfere iff their live ranges intersect *and* they carry
//!    different values, where values are computed for free from SSA copy
//!    chains;
//! 3. **Aggressive coalescing** ([`congruence`], [`coalesce`]) — congruence
//!    classes with a linear class-interference check, weighted by block
//!    frequencies, with all the interference-strategy variants compared in
//!    the paper and the copy-sharing post-optimization;
//! 4. **Parallel-copy sequentialization** ([`parallel_copy`]) — the minimal
//!    sequentialization algorithm (Algorithm 1).
//!
//! The entry point is [`translate_out_of_ssa`].
//!
//! # Examples
//!
//! ```
//! use ossa_cfggen::{generate_ssa_function, GenConfig};
//! use ossa_destruct::{translate_out_of_ssa, OutOfSsaOptions};
//!
//! let (mut func, _) = generate_ssa_function("demo", &GenConfig::small(), 7);
//! let stats = translate_out_of_ssa(&mut func, &OutOfSsaOptions::default());
//! assert_eq!(func.count_phis(), 0);
//! assert!(stats.moves_inserted >= stats.remaining_copies);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coalesce;
pub mod congruence;
pub mod engine;
pub mod fault;
pub mod insertion;
pub mod interference;
pub mod parallel_copy;
pub mod validate;
pub mod value;

pub use coalesce::{
    set_coalesce_probe, translate_out_of_ssa, translate_out_of_ssa_cached,
    translate_out_of_ssa_scratch, ClassCheck, CoalesceStage, InterferenceMode, MemoryStats,
    OutOfSsaOptions, OutOfSsaStats, PhaseSeconds, PhiProcessing, RecoveryOutcome, Strategy,
    TranslateScratch,
};
pub use congruence::{CongruenceClasses, DefOrderKey, EqualAncOut};
pub use engine::{
    translate_corpus, translate_corpus_isolated, translate_corpus_isolated_policy,
    translate_corpus_isolated_with, translate_corpus_serial, translate_corpus_with,
    translate_function_isolated, translate_function_isolated_policy,
    translate_function_isolated_policy_pooled, translate_stream, translate_stream_isolated,
    translate_stream_isolated_policy, translate_stream_isolated_with, translate_stream_pooled,
    translate_stream_pooled_isolated, translate_stream_pooled_isolated_policy,
    translate_stream_pooled_isolated_serial, translate_stream_pooled_isolated_serial_policy,
    translate_stream_pooled_isolated_with, translate_stream_pooled_serial,
    translate_stream_pooled_with, translate_stream_with, CorpusStats, EnginePolicy, EngineWorker,
    IsolatedCorpusStats, PooledSource, RecoveryPolicy,
};
pub use fault::{catch_translate, Limits, Resource, TranslateError, TranslatePhase};
pub use insertion::{
    insert_phi_copies, isolate_pinned_values, reserve_translation_growth, CopyInsertion,
    InsertedMove, PhiWeb,
};
pub use interference::{copy_related_universe, InterferenceGraph};
pub use parallel_copy::{
    minimum_copies, sequentialize, sequentialize_function, sequentialize_function_with,
    try_sequentialize, DuplicateDest, SeqScratch, Sequentialization,
};
pub use validate::{
    validate_differential, validate_structural, validate_translation, ValidationMode,
};
pub use value::ValueTable;
