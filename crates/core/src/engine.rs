//! Batch and streaming out-of-SSA translation over a corpus of functions.
//!
//! A JIT (or an AOT compiler doing whole-program work) does not translate
//! one function: it drains a queue of them. [`translate_corpus`] is the
//! batch entry point — each function gets its own [`FunctionAnalyses`]
//! cache, shared across the phases of its translation, and independent
//! functions run in parallel on a scoped-thread worker pool (the standard
//! library only; the build environment has no external crates).
//!
//! [`translate_stream`] is the streaming front end: it drains an *iterator*
//! of functions, so a JIT queue (or a channel's receiver) can feed the
//! engine without materializing the whole corpus first. Items are pulled
//! from the iterator one at a time as workers free up; each worker owns one
//! [`FunctionAnalyses`] and one [`TranslateScratch`] whose storage is
//! *recycled* across the functions it translates (the caches are
//! invalidated, not reallocated), so steady-state translation performs
//! almost no per-function allocation.
//!
//! [`translate_stream_pooled`] closes the remaining allocation loop: the
//! input is a [`PooledSource`] that builds each incoming function *into*
//! recycled storage checked out of the worker's [`FunctionPool`], and the
//! engine retires each translated function's storage back to that pool once
//! the consumer has seen it. After warm-up, translating one more function
//! touches the heap a bounded number of times regardless of how many
//! functions have already streamed through — O(1) steady-state heap traffic
//! for an unbounded stream.
//!
//! Parallel, serial, batch and streaming execution all produce bit-identical
//! functions and statistics: per-function work is deterministic and results
//! are collected by input index, so [`CorpusStats::per_function`] lines up
//! with the input order regardless of scheduling.

use std::sync::Mutex;

use ossa_ir::{Function, FunctionPool};
use ossa_liveness::FunctionAnalyses;

use crate::coalesce::{
    translate_out_of_ssa_scratch, OutOfSsaOptions, OutOfSsaStats, RecoveryOutcome, TranslateScratch,
};
use crate::fault::{self, Limits, TranslateError, TranslatePhase};
use crate::validate::{validate_translation, ValidationMode};

/// How many times an isolated engine retries a failed function on the
/// conservative configuration before giving up.
///
/// The recovery ladder (attempt 0 = the caller's options; attempts 1.. =
/// [`OutOfSsaOptions::conservative_fallback`] on a fresh, quarantined
/// worker) fires on *any* [`TranslateError`] — panic, resource blowup or
/// validation failure alike — restoring the function from a pristine
/// pre-translation snapshot between attempts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries after the first failed attempt (`0`, the default, reports
    /// the first error as today).
    pub max_retries: u32,
}

impl RecoveryPolicy {
    /// A policy that retries `max_retries` times.
    pub fn retries(max_retries: u32) -> Self {
        Self { max_retries }
    }
}

/// Self-checking configuration of an isolated engine: what to validate on
/// each translated function and how hard to try to recover failures. The
/// default (`Off`, no retries) is a pure pass-through — the engine behaves
/// byte-for-byte like the policy-free entry points.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnginePolicy {
    /// Post-translation output validation mode.
    pub validation: ValidationMode,
    /// Retry ladder for failed functions.
    pub recovery: RecoveryPolicy,
}

impl EnginePolicy {
    /// A policy that validates at `mode` without retrying.
    pub fn validating(mode: ValidationMode) -> Self {
        Self { validation: mode, ..Self::default() }
    }

    /// Adds a recovery ladder of `max_retries` conservative retries.
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.recovery = RecoveryPolicy::retries(max_retries);
        self
    }

    /// `true` when the policy changes nothing — no validation, no retries —
    /// letting the per-function driver skip the pristine snapshot entirely.
    pub fn is_passthrough(&self) -> bool {
        self.validation == ValidationMode::Off && self.recovery.max_retries == 0
    }
}

/// The complete recycled state of one engine worker: the analysis caches and
/// translation scratch hoisted out of the per-function loop, plus the
/// [`FunctionPool`] free list that recycles *function storage itself* for
/// pool-aware streaming sources.
///
/// A worker is the unit of steady-state allocation freedom: once every
/// buffer in it has grown to the high-water mark of the functions it has
/// seen, translating one more function of comparable size allocates nothing.
/// The serial pooled entry points take the worker by `&mut` so a caller
/// (e.g. the benchmark harness) can keep it warm across multiple passes and
/// observe warm-up versus steady-state behaviour directly.
#[derive(Debug, Default)]
pub struct EngineWorker {
    /// Cached per-function analyses; invalidated, never reallocated, between
    /// functions.
    pub analyses: FunctionAnalyses,
    /// Translation scratch buffers, reused as-is between functions.
    pub scratch: TranslateScratch,
    /// Free list of retired `Function` storage handed to the stream source.
    pub pool: FunctionPool,
}

impl EngineWorker {
    /// Creates a cold worker; every buffer grows on first use and is
    /// recycled afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A pool-aware stream of input functions.
///
/// Where a plain `Iterator<Item = Function>` source must allocate fresh
/// function storage for every item it yields, a `PooledSource` is handed the
/// engine's [`FunctionPool`] and is expected to build each incoming function
/// *into* a checked-out slot (via
/// [`FunctionBuilder::reuse`](ossa_ir::builder::FunctionBuilder::reuse) or a
/// generator's `*_into` entry point), closing the recycling loop: the
/// engine retires each translated function back to the pool once the
/// consumer is done with it, and the source checks the same storage out
/// again for the next item.
///
/// The trait is implemented for any `FnMut(&mut FunctionPool) ->
/// Option<Function>` closure, so ad-hoc sources need no named type.
pub trait PooledSource {
    /// Produces the next function of the stream, preferably built into
    /// storage checked out of `pool`. `None` ends the stream.
    fn next_into(&mut self, pool: &mut FunctionPool) -> Option<Function>;
}

impl<F: FnMut(&mut FunctionPool) -> Option<Function>> PooledSource for F {
    fn next_into(&mut self, pool: &mut FunctionPool) -> Option<Function> {
        self(pool)
    }
}

/// Statistics of one batch translation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CorpusStats {
    /// Per-function statistics, in input order.
    pub per_function: Vec<OutOfSsaStats>,
    /// Number of worker threads actually used.
    pub threads: usize,
}

impl CorpusStats {
    /// Aggregates the per-function statistics into one total.
    pub fn total(&self) -> OutOfSsaStats {
        let mut total = OutOfSsaStats::default();
        for stats in &self.per_function {
            total.absorb(stats);
        }
        total
    }
}

/// Statistics of one fault-isolated corpus translation: one
/// [`Result`] per input function, in input order. A function that failed
/// carries its typed [`TranslateError`]; every other function's translation
/// is bit-identical to a fault-free run (the failed worker's caches are
/// quarantined and rebuilt, never shared into a healthy function).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IsolatedCorpusStats {
    /// Per-function outcome, in input order.
    pub results: Vec<Result<OutOfSsaStats, TranslateError>>,
    /// Number of worker threads actually used.
    pub threads: usize,
}

impl IsolatedCorpusStats {
    /// Aggregates the statistics of the *successful* functions.
    pub fn total(&self) -> OutOfSsaStats {
        let mut total = OutOfSsaStats::default();
        for stats in self.results.iter().flatten() {
            total.absorb(stats);
        }
        total
    }

    /// Number of failed functions.
    pub fn num_errors(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }

    /// The failed functions, as `(input index, error)` pairs.
    pub fn errors(&self) -> impl Iterator<Item = (usize, &TranslateError)> {
        self.results.iter().enumerate().filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
    }

    /// Number of functions the recovery ladder healed (their first attempt
    /// failed, a conservative retry succeeded). Always 0 without a
    /// [`RecoveryPolicy`].
    pub fn recovered_functions(&self) -> usize {
        self.results
            .iter()
            .flatten()
            .filter(|s| matches!(s.recovery, RecoveryOutcome::Recovered { .. }))
            .count()
    }

    /// Validation failures visible in the outcome records: rejected attempts
    /// of functions that eventually succeeded, plus one per function whose
    /// *final* error is a validation failure.
    pub fn validation_failures(&self) -> usize {
        self.results
            .iter()
            .map(|r| match r {
                Ok(stats) => stats.validation_failures,
                Err(TranslateError::ValidationFailed { .. }) => 1,
                Err(_) => 0,
            })
            .sum()
    }
}

/// Translates one function out of SSA with full fault isolation: the input
/// is verified and checked against `limits` up front, the translation runs
/// under a panic boundary with the fixpoint-fuel budget installed, and any
/// failure is returned as a typed [`TranslateError`] instead of unwinding
/// into the caller.
///
/// On `Err`, `analyses` and `scratch` are *quarantined*: an unwind can leave
/// them mid-mutation, so both are replaced by fresh instances (the one place
/// the engine deliberately pays allocations — translation results are
/// deterministic regardless of recycled storage, so healthy neighbours stay
/// bit-identical). `func` itself may have been partially rewritten and must
/// not be used as a translation result.
pub fn translate_function_isolated(
    func: &mut Function,
    options: &OutOfSsaOptions,
    limits: &Limits,
    analyses: &mut FunctionAnalyses,
    scratch: &mut TranslateScratch,
) -> Result<OutOfSsaStats, TranslateError> {
    ossa_liveness::fuel::set_fixpoint_fuel(limits.max_fixpoint_iters);
    let caught = fault::catch_translate(|| {
        fault::enter_phase(&func.name, TranslatePhase::Verify);
        limits.check_function(func)?;
        if let Err(errors) = ossa_ir::verify_ssa(func) {
            return Err(TranslateError::Malformed {
                phase: TranslatePhase::Verify,
                detail: errors.to_string(),
            });
        }
        Ok(translate_out_of_ssa_scratch(func, options, analyses, scratch))
    });
    ossa_liveness::fuel::set_fixpoint_fuel(None);
    let result = caught.unwrap_or_else(Err);
    if result.is_err() {
        *analyses = FunctionAnalyses::new();
        *scratch = TranslateScratch::new();
    }
    result
}

/// Like [`translate_function_isolated`], under an [`EnginePolicy`]: after a
/// successful translation the output is checked at the policy's
/// [`ValidationMode`] (against a pristine pre-translation snapshot), and
/// *any* failure — panic, limit, validation — is retried up to
/// `policy.recovery.max_retries` times on the conservative configuration
/// ([`OutOfSsaOptions::conservative_fallback`]) with quarantined, fresh
/// worker state and the function restored from the snapshot.
///
/// On success, the returned stats carry the per-function
/// [`RecoveryOutcome`] and the number of validation failures observed along
/// the way. A pass-through policy (the default) takes the exact
/// [`translate_function_isolated`] path — no snapshot, no extra allocation.
pub fn translate_function_isolated_policy(
    func: &mut Function,
    options: &OutOfSsaOptions,
    limits: &Limits,
    policy: &EnginePolicy,
    analyses: &mut FunctionAnalyses,
    scratch: &mut TranslateScratch,
) -> Result<OutOfSsaStats, TranslateError> {
    if policy.is_passthrough() {
        return translate_function_isolated(func, options, limits, analyses, scratch);
    }

    let pristine = func.clone();
    translate_isolated_policy_with_pristine(
        func, &pristine, options, limits, policy, analyses, scratch,
    )
}

/// Like [`translate_function_isolated_policy`], but the pristine
/// pre-translation snapshot is checked out of (and retired back to) the
/// worker's [`FunctionPool`](ossa_ir::fnpool::FunctionPool) instead of being
/// freshly cloned per call. The snapshot is read-only for the whole attempt
/// ladder, so even a failed request retires its slot — warm steady-state
/// snapshotting allocates nothing. This is the per-request entry point of
/// the persistent service workers and the pooled streaming policy engines.
pub fn translate_function_isolated_policy_pooled(
    func: &mut Function,
    options: &OutOfSsaOptions,
    limits: &Limits,
    policy: &EnginePolicy,
    worker: &mut EngineWorker,
) -> Result<OutOfSsaStats, TranslateError> {
    if policy.is_passthrough() {
        return translate_function_isolated(
            func,
            options,
            limits,
            &mut worker.analyses,
            &mut worker.scratch,
        );
    }

    let pristine = worker.pool.checkout_clone_of(func);
    let result = translate_isolated_policy_with_pristine(
        func,
        &pristine,
        options,
        limits,
        policy,
        &mut worker.analyses,
        &mut worker.scratch,
    );
    worker.pool.retire(pristine);
    result
}

/// The shared attempt ladder of the policy engines: translate, validate,
/// and on any failure restore `func` from `pristine`, quarantine the worker
/// state and retry conservatively.
fn translate_isolated_policy_with_pristine(
    func: &mut Function,
    pristine: &Function,
    options: &OutOfSsaOptions,
    limits: &Limits,
    policy: &EnginePolicy,
    analyses: &mut FunctionAnalyses,
    scratch: &mut TranslateScratch,
) -> Result<OutOfSsaStats, TranslateError> {
    let max_attempts = 1 + policy.recovery.max_retries;
    let mut validation_failures = 0usize;
    let mut last_error = None;
    for attempt in 0..max_attempts {
        #[cfg(feature = "failpoints")]
        fault::failpoints::set_attempt(attempt);
        let conservative;
        let attempt_options = if attempt == 0 {
            options
        } else {
            // A retry starts from scratch: pristine input, fresh worker
            // state (the previous attempt's caches may hold decisions of
            // the failed configuration), conservative options.
            func.clone_from(pristine);
            *analyses = FunctionAnalyses::new();
            *scratch = TranslateScratch::new();
            conservative = options.conservative_fallback();
            &conservative
        };
        let result = translate_function_isolated(func, attempt_options, limits, analyses, scratch)
            .and_then(|stats| {
                let verdict = fault::catch_translate(|| {
                    fault::enter_phase(&func.name, TranslatePhase::Validate);
                    validate_translation(pristine, func, attempt_options, policy.validation)
                })
                .unwrap_or_else(Err);
                verdict.map(|()| stats)
            });
        match result {
            Ok(mut stats) => {
                stats.validation_failures = validation_failures;
                if attempt > 0 {
                    stats.recovery = RecoveryOutcome::Recovered { attempt: attempt + 1 };
                }
                #[cfg(feature = "failpoints")]
                fault::failpoints::set_attempt(0);
                return Ok(stats);
            }
            Err(error) => {
                if matches!(error, TranslateError::ValidationFailed { .. }) {
                    validation_failures += 1;
                }
                // A rejected output means the worker state that produced it
                // is suspect, exactly like an unwind; quarantine it.
                *analyses = FunctionAnalyses::new();
                *scratch = TranslateScratch::new();
                last_error = Some(error);
            }
        }
    }
    #[cfg(feature = "failpoints")]
    fault::failpoints::set_attempt(0);
    Err(last_error.expect("at least one attempt ran"))
}

/// Fault-isolated batch translation with the default thread count: like
/// [`translate_corpus`], but a malformed, oversized or panicking function
/// yields an error record instead of tearing down the corpus run. See
/// [`translate_function_isolated`] for the per-function contract.
pub fn translate_corpus_isolated(
    funcs: &mut [Function],
    options: &OutOfSsaOptions,
    limits: &Limits,
) -> IsolatedCorpusStats {
    translate_corpus_isolated_with(funcs, options, limits, 0)
}

/// Like [`translate_corpus_isolated`], with an explicit worker count
/// (`0` = one per available core). `threads == 1` runs serially on the
/// calling thread.
pub fn translate_corpus_isolated_with(
    funcs: &mut [Function],
    options: &OutOfSsaOptions,
    limits: &Limits,
    threads: usize,
) -> IsolatedCorpusStats {
    translate_corpus_isolated_policy(funcs, options, limits, &EnginePolicy::default(), threads)
}

/// Like [`translate_corpus_isolated_with`], under an [`EnginePolicy`]: each
/// function is validated and (on any failure) retried per
/// [`translate_function_isolated_policy`]. The default policy is a pure
/// pass-through.
pub fn translate_corpus_isolated_policy(
    funcs: &mut [Function],
    options: &OutOfSsaOptions,
    limits: &Limits,
    policy: &EnginePolicy,
    threads: usize,
) -> IsolatedCorpusStats {
    let threads = effective_threads(threads, funcs.len());
    if threads <= 1 {
        let mut analyses = FunctionAnalyses::new();
        let mut scratch = TranslateScratch::new();
        let results = funcs
            .iter_mut()
            .map(|func| {
                analyses.invalidate_cfg();
                translate_function_isolated_policy(
                    func,
                    options,
                    limits,
                    policy,
                    &mut analyses,
                    &mut scratch,
                )
            })
            .collect();
        return IsolatedCorpusStats { results, threads: 1 };
    }

    let num_funcs = funcs.len();
    let results: Mutex<Vec<Option<Result<OutOfSsaStats, TranslateError>>>> =
        Mutex::new(vec![None; num_funcs]);
    drive_workers(threads, funcs.iter_mut().enumerate(), |(index, func), worker| {
        let result = translate_function_isolated_policy(
            func,
            options,
            limits,
            policy,
            &mut worker.analyses,
            &mut worker.scratch,
        );
        results.lock().unwrap_or_else(|e| e.into_inner())[index] = Some(result);
    });

    let results = results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|result| result.expect("every function translated"))
        .collect();
    IsolatedCorpusStats { results, threads }
}

/// Translates every function of `funcs` out of SSA in place, in parallel,
/// with the default thread count (one worker per available core, capped by
/// the corpus size).
///
/// Results are identical to calling
/// [`translate_out_of_ssa`](crate::translate_out_of_ssa) on each function in
/// order.
pub fn translate_corpus(funcs: &mut [Function], options: &OutOfSsaOptions) -> CorpusStats {
    translate_corpus_with(funcs, options, 0)
}

/// Like [`translate_corpus`], with an explicit worker count (`0` = one per
/// available core). `threads == 1` runs serially on the calling thread.
pub fn translate_corpus_with(
    funcs: &mut [Function],
    options: &OutOfSsaOptions,
    threads: usize,
) -> CorpusStats {
    let threads = effective_threads(threads, funcs.len());
    if threads <= 1 {
        return translate_corpus_serial(funcs, options);
    }

    let num_funcs = funcs.len();
    let results: Mutex<Vec<Option<OutOfSsaStats>>> = Mutex::new(vec![None; num_funcs]);
    drive_workers(threads, funcs.iter_mut().enumerate(), |(index, func), worker| {
        let stats =
            translate_out_of_ssa_scratch(func, options, &mut worker.analyses, &mut worker.scratch);
        results.lock().unwrap_or_else(|e| e.into_inner())[index] = Some(stats);
    });

    let per_function = results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|stats| stats.expect("every function translated"))
        .collect();
    CorpusStats { per_function, threads }
}

/// Shared worker pool of the batch and streaming engines: `threads` scoped
/// workers pull items from `source` one at a time — a worker stuck on a
/// large function does not starve the others — and run `work` with
/// per-worker caches and scratch hoisted out of the per-function loop (the
/// analyses are invalidated, not reallocated, between functions and the
/// scratch buffers are reused as-is). Poisoned locks are recovered so that a
/// panic in one worker propagates as itself, not as a secondary lock error.
fn drive_workers<T, I, W>(threads: usize, source: I, work: W)
where
    T: Send,
    I: Iterator<Item = T> + Send,
    W: Fn(T, &mut EngineWorker) + Sync,
{
    let source = Mutex::new(source);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut worker = EngineWorker::new();
                loop {
                    let mut guard = source.lock().unwrap_or_else(|e| e.into_inner());
                    let Some(item) = guard.next() else { return };
                    drop(guard);
                    worker.analyses.invalidate_cfg();
                    work(item, &mut worker);
                }
            });
        }
    });
}

/// Worker pool of the *pooled* streaming engines: like [`drive_workers`],
/// but the source is a [`PooledSource`] pulled under the lock with the
/// worker's own [`FunctionPool`], and each translated function is retired
/// back to (or discarded from) that pool by the `work` closure. Items are
/// numbered in pull order so consumers can correlate results with the input
/// sequence.
fn drive_pooled_workers<S, W>(threads: usize, source: S, work: W)
where
    S: PooledSource + Send,
    W: Fn(usize, Function, &mut EngineWorker) + Sync,
{
    let source = Mutex::new((source, 0usize));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut worker = EngineWorker::new();
                loop {
                    let mut guard = source.lock().unwrap_or_else(|e| e.into_inner());
                    let Some(func) = guard.0.next_into(&mut worker.pool) else { return };
                    let index = guard.1;
                    guard.1 += 1;
                    drop(guard);
                    worker.analyses.invalidate_cfg();
                    work(index, func, &mut worker);
                }
            });
        }
    });
}

/// Serial reference implementation of the batch API, used by the parity
/// tests and as the `threads == 1` fast path.
pub fn translate_corpus_serial(funcs: &mut [Function], options: &OutOfSsaOptions) -> CorpusStats {
    let mut analyses = FunctionAnalyses::new();
    let mut scratch = TranslateScratch::new();
    let per_function = funcs
        .iter_mut()
        .map(|func| {
            analyses.invalidate_cfg();
            translate_out_of_ssa_scratch(func, options, &mut analyses, &mut scratch)
        })
        .collect();
    CorpusStats { per_function, threads: 1 }
}

fn effective_threads(requested: usize, num_funcs: usize) -> usize {
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = if requested == 0 { available } else { requested };
    threads.clamp(1, num_funcs.max(1))
}

/// Translates every function yielded by `funcs` out of SSA, returning the
/// translated functions in input order, with the default thread count.
///
/// This is the streaming front end of the engine: the input is an iterator
/// (a JIT queue, a channel receiver's `into_iter`, a generator), pulled one
/// function at a time as workers free up, so the corpus is never
/// materialized on the input side. Results are bit-identical to running
/// [`translate_corpus`] on the collected input.
pub fn translate_stream<I>(funcs: I, options: &OutOfSsaOptions) -> (Vec<Function>, CorpusStats)
where
    I: IntoIterator<Item = Function>,
    I::IntoIter: Send,
{
    translate_stream_with(funcs, options, 0)
}

/// Like [`translate_stream`], with an explicit worker count (`0` = one per
/// available core). `threads == 1` runs serially on the calling thread,
/// still reusing one analysis cache and scratch across all functions.
pub fn translate_stream_with<I>(
    funcs: I,
    options: &OutOfSsaOptions,
    threads: usize,
) -> (Vec<Function>, CorpusStats)
where
    I: IntoIterator<Item = Function>,
    I::IntoIter: Send,
{
    let iter = funcs.into_iter();
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The corpus size is unknown up front (that is the point of streaming),
    // so the worker count cannot be clamped by it; degenerate cases simply
    // leave some workers without an item to pull.
    let threads = if threads == 0 { available } else { threads }.max(1);
    if threads == 1 {
        let mut analyses = FunctionAnalyses::new();
        let mut scratch = TranslateScratch::new();
        let mut out = Vec::with_capacity(iter.size_hint().0);
        let mut per_function = Vec::with_capacity(iter.size_hint().0);
        for mut func in iter {
            analyses.invalidate_cfg();
            per_function.push(translate_out_of_ssa_scratch(
                &mut func,
                options,
                &mut analyses,
                &mut scratch,
            ));
            out.push(func);
        }
        return (out, CorpusStats { per_function, threads: 1 });
    }

    // Workers pull `(index, function)` pairs from the shared iterator one at
    // a time and deposit the results by index, so the output order is the
    // input order no matter how the scheduler interleaves them.
    let results: Mutex<Vec<Option<(Function, OutOfSsaStats)>>> = Mutex::new(Vec::new());
    drive_workers(threads, iter.enumerate(), |(index, mut func), worker| {
        let stats = translate_out_of_ssa_scratch(
            &mut func,
            options,
            &mut worker.analyses,
            &mut worker.scratch,
        );
        let mut results = results.lock().unwrap_or_else(|e| e.into_inner());
        if results.len() <= index {
            results.resize_with(index + 1, || None);
        }
        results[index] = Some((func, stats));
    });

    let mut out = Vec::new();
    let mut per_function = Vec::new();
    for slot in results.into_inner().unwrap_or_else(|e| e.into_inner()) {
        let (func, stats) = slot.expect("every streamed function translated");
        out.push(func);
        per_function.push(stats);
    }
    (out, CorpusStats { per_function, threads })
}

/// Fault-isolated streaming translation with the default thread count: like
/// [`translate_stream`], but a poisoned function yields `Err` in the output
/// (its partially rewritten body is discarded) while the rest of the stream
/// keeps flowing, bit-identical to a fault-free run. The outcome slots of
/// the returned [`IsolatedCorpusStats`] line up with the output vector.
pub fn translate_stream_isolated<I>(
    funcs: I,
    options: &OutOfSsaOptions,
    limits: &Limits,
) -> (Vec<Result<Function, TranslateError>>, IsolatedCorpusStats)
where
    I: IntoIterator<Item = Function>,
    I::IntoIter: Send,
{
    translate_stream_isolated_with(funcs, options, limits, 0)
}

/// Like [`translate_stream_isolated`], with an explicit worker count
/// (`0` = one per available core). `threads == 1` runs serially on the
/// calling thread.
pub fn translate_stream_isolated_with<I>(
    funcs: I,
    options: &OutOfSsaOptions,
    limits: &Limits,
    threads: usize,
) -> (Vec<Result<Function, TranslateError>>, IsolatedCorpusStats)
where
    I: IntoIterator<Item = Function>,
    I::IntoIter: Send,
{
    translate_stream_isolated_policy(funcs, options, limits, &EnginePolicy::default(), threads)
}

/// Like [`translate_stream_isolated_with`], under an [`EnginePolicy`] (see
/// [`translate_function_isolated_policy`] for the per-function contract).
pub fn translate_stream_isolated_policy<I>(
    funcs: I,
    options: &OutOfSsaOptions,
    limits: &Limits,
    policy: &EnginePolicy,
    threads: usize,
) -> (Vec<Result<Function, TranslateError>>, IsolatedCorpusStats)
where
    I: IntoIterator<Item = Function>,
    I::IntoIter: Send,
{
    let iter = funcs.into_iter();
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = if threads == 0 { available } else { threads }.max(1);
    if threads == 1 {
        let mut analyses = FunctionAnalyses::new();
        let mut scratch = TranslateScratch::new();
        let mut out = Vec::with_capacity(iter.size_hint().0);
        let mut results = Vec::with_capacity(iter.size_hint().0);
        for mut func in iter {
            analyses.invalidate_cfg();
            let result = translate_function_isolated_policy(
                &mut func,
                options,
                limits,
                policy,
                &mut analyses,
                &mut scratch,
            );
            out.push(result.as_ref().map(|_| func).map_err(Clone::clone));
            results.push(result);
        }
        return (out, IsolatedCorpusStats { results, threads: 1 });
    }

    type Slot = Option<(Result<Function, TranslateError>, Result<OutOfSsaStats, TranslateError>)>;
    let deposits: Mutex<Vec<Slot>> = Mutex::new(Vec::new());
    drive_workers(threads, iter.enumerate(), |(index, mut func), worker| {
        let result = translate_function_isolated_policy(
            &mut func,
            options,
            limits,
            policy,
            &mut worker.analyses,
            &mut worker.scratch,
        );
        let output = result.as_ref().map(|_| func).map_err(Clone::clone);
        let mut deposits = deposits.lock().unwrap_or_else(|e| e.into_inner());
        if deposits.len() <= index {
            deposits.resize_with(index + 1, || None);
        }
        deposits[index] = Some((output, result));
    });

    let mut out = Vec::new();
    let mut results = Vec::new();
    for slot in deposits.into_inner().unwrap_or_else(|e| e.into_inner()) {
        let (output, result) = slot.expect("every streamed function translated");
        out.push(output);
        results.push(result);
    }
    (out, IsolatedCorpusStats { results, threads })
}

/// Serial pooled streaming translation on the calling thread, with a
/// caller-owned [`EngineWorker`].
///
/// This is the O(1)-steady-state-heap-traffic core of the engine: the source
/// builds each incoming function into storage checked out of `worker.pool`,
/// the translation runs entirely in `worker`'s recycled caches and scratch,
/// `consumer` observes the translated function by reference, and the storage
/// is retired back to the pool for the source's next item. Because the
/// worker is caller-owned it stays warm across calls — translate one corpus
/// to warm up, call again, and the second pass allocates (almost) nothing
/// regardless of how many functions stream through.
pub fn translate_stream_pooled_serial<S>(
    source: &mut S,
    worker: &mut EngineWorker,
    options: &OutOfSsaOptions,
    mut consumer: impl FnMut(usize, &Function, &OutOfSsaStats),
) -> CorpusStats
where
    S: PooledSource + ?Sized,
{
    let mut per_function = Vec::new();
    let mut index = 0usize;
    while let Some(mut func) = source.next_into(&mut worker.pool) {
        worker.analyses.invalidate_cfg();
        let stats = translate_out_of_ssa_scratch(
            &mut func,
            options,
            &mut worker.analyses,
            &mut worker.scratch,
        );
        consumer(index, &func, &stats);
        worker.pool.retire(func);
        per_function.push(stats);
        index += 1;
    }
    CorpusStats { per_function, threads: 1 }
}

/// Pooled streaming translation with the default thread count. See
/// [`translate_stream_pooled_with`].
pub fn translate_stream_pooled<S>(
    source: S,
    options: &OutOfSsaOptions,
    consumer: impl Fn(usize, &Function, &OutOfSsaStats) + Sync,
) -> CorpusStats
where
    S: PooledSource + Send,
{
    translate_stream_pooled_with(source, options, 0, consumer)
}

/// Pooled streaming translation with an explicit worker count (`0` = one
/// per available core; `threads == 1` runs serially on the calling thread).
///
/// Each worker owns an [`EngineWorker`]; the shared source is pulled under a
/// lock with the pulling worker's own pool, so every worker recycles its own
/// function storage independently. `consumer` is called with each translated
/// function (by reference, before its storage is retired) tagged with its
/// input index; it may run concurrently from several workers and must
/// therefore be `Sync`. Translated functions and statistics are bit-identical
/// to the unpooled [`translate_stream_with`] on the same input sequence.
pub fn translate_stream_pooled_with<S>(
    source: S,
    options: &OutOfSsaOptions,
    threads: usize,
    consumer: impl Fn(usize, &Function, &OutOfSsaStats) + Sync,
) -> CorpusStats
where
    S: PooledSource + Send,
{
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = if threads == 0 { available } else { threads }.max(1);
    if threads == 1 {
        let mut source = source;
        let mut worker = EngineWorker::new();
        return translate_stream_pooled_serial(&mut source, &mut worker, options, consumer);
    }

    let results: Mutex<Vec<Option<OutOfSsaStats>>> = Mutex::new(Vec::new());
    drive_pooled_workers(threads, source, |index, mut func, worker| {
        let stats = translate_out_of_ssa_scratch(
            &mut func,
            options,
            &mut worker.analyses,
            &mut worker.scratch,
        );
        consumer(index, &func, &stats);
        worker.pool.retire(func);
        let mut results = results.lock().unwrap_or_else(|e| e.into_inner());
        if results.len() <= index {
            results.resize_with(index + 1, || None);
        }
        results[index] = Some(stats);
    });

    let per_function = results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|stats| stats.expect("every pooled function translated"))
        .collect();
    CorpusStats { per_function, threads }
}

/// Serial fault-isolated pooled streaming translation with a caller-owned
/// [`EngineWorker`]: like [`translate_stream_pooled_serial`], but each
/// function runs under the fault boundary of
/// [`translate_function_isolated`]. On failure the worker's caches are
/// quarantined as usual — and the poisoned function slot is *discarded*
/// from the pool, never recycled, so a partially rewritten body can never
/// leak into a later function's storage.
pub fn translate_stream_pooled_isolated_serial<S>(
    source: &mut S,
    worker: &mut EngineWorker,
    options: &OutOfSsaOptions,
    limits: &Limits,
    consumer: impl FnMut(usize, Result<&Function, &TranslateError>),
) -> IsolatedCorpusStats
where
    S: PooledSource + ?Sized,
{
    translate_stream_pooled_isolated_serial_policy(
        source,
        worker,
        options,
        limits,
        &EnginePolicy::default(),
        consumer,
    )
}

/// Like [`translate_stream_pooled_isolated_serial`], under an
/// [`EnginePolicy`] (see [`translate_function_isolated_policy`] for the
/// per-function contract). A function that fails *every* attempt discards
/// its pool slot exactly like a policy-free failure.
pub fn translate_stream_pooled_isolated_serial_policy<S>(
    source: &mut S,
    worker: &mut EngineWorker,
    options: &OutOfSsaOptions,
    limits: &Limits,
    policy: &EnginePolicy,
    mut consumer: impl FnMut(usize, Result<&Function, &TranslateError>),
) -> IsolatedCorpusStats
where
    S: PooledSource + ?Sized,
{
    let mut results = Vec::new();
    let mut index = 0usize;
    while let Some(mut func) = source.next_into(&mut worker.pool) {
        worker.analyses.invalidate_cfg();
        let result =
            translate_function_isolated_policy_pooled(&mut func, options, limits, policy, worker);
        match &result {
            Ok(_) => {
                consumer(index, Ok(&func));
                worker.pool.retire(func);
            }
            Err(error) => {
                consumer(index, Err(error));
                worker.pool.discard(func);
            }
        }
        results.push(result);
        index += 1;
    }
    IsolatedCorpusStats { results, threads: 1 }
}

/// Fault-isolated pooled streaming translation with the default thread
/// count. See [`translate_stream_pooled_isolated_with`].
pub fn translate_stream_pooled_isolated<S>(
    source: S,
    options: &OutOfSsaOptions,
    limits: &Limits,
    consumer: impl Fn(usize, Result<&Function, &TranslateError>) + Sync,
) -> IsolatedCorpusStats
where
    S: PooledSource + Send,
{
    translate_stream_pooled_isolated_with(source, options, limits, 0, consumer)
}

/// Like [`translate_stream_pooled_isolated_serial`], with an explicit worker
/// count (`0` = one per available core; `threads == 1` runs serially).
/// Failed functions quarantine their worker's caches and *discard* the
/// poisoned pool slot; surviving functions are bit-identical to a
/// fault-free run.
pub fn translate_stream_pooled_isolated_with<S>(
    source: S,
    options: &OutOfSsaOptions,
    limits: &Limits,
    threads: usize,
    consumer: impl Fn(usize, Result<&Function, &TranslateError>) + Sync,
) -> IsolatedCorpusStats
where
    S: PooledSource + Send,
{
    translate_stream_pooled_isolated_policy(
        source,
        options,
        limits,
        &EnginePolicy::default(),
        threads,
        consumer,
    )
}

/// Like [`translate_stream_pooled_isolated_with`], under an
/// [`EnginePolicy`] (see [`translate_function_isolated_policy`] for the
/// per-function contract).
pub fn translate_stream_pooled_isolated_policy<S>(
    source: S,
    options: &OutOfSsaOptions,
    limits: &Limits,
    policy: &EnginePolicy,
    threads: usize,
    consumer: impl Fn(usize, Result<&Function, &TranslateError>) + Sync,
) -> IsolatedCorpusStats
where
    S: PooledSource + Send,
{
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = if threads == 0 { available } else { threads }.max(1);
    if threads == 1 {
        let mut source = source;
        let mut worker = EngineWorker::new();
        return translate_stream_pooled_isolated_serial_policy(
            &mut source,
            &mut worker,
            options,
            limits,
            policy,
            consumer,
        );
    }

    let results: Mutex<Vec<Option<Result<OutOfSsaStats, TranslateError>>>> = Mutex::new(Vec::new());
    drive_pooled_workers(threads, source, |index, mut func, worker| {
        let result =
            translate_function_isolated_policy_pooled(&mut func, options, limits, policy, worker);
        match &result {
            Ok(_) => {
                consumer(index, Ok(&func));
                worker.pool.retire(func);
            }
            Err(error) => {
                consumer(index, Err(error));
                worker.pool.discard(func);
            }
        }
        let mut results = results.lock().unwrap_or_else(|e| e.into_inner());
        if results.len() <= index {
            results.resize_with(index + 1, || None);
        }
        results[index] = Some(result);
    });

    let results = results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|result| result.expect("every pooled function translated"))
        .collect();
    IsolatedCorpusStats { results, threads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::translate_out_of_ssa;
    use ossa_cfggen::{generate_ssa_function, GenConfig};

    fn small_corpus(count: u64) -> Vec<Function> {
        (0..count)
            .map(|seed| generate_ssa_function(format!("c{seed}"), &GenConfig::small(), seed).0)
            .collect()
    }

    #[test]
    fn batch_matches_serial_per_function_translation() {
        let options = OutOfSsaOptions::default();
        let mut serial = small_corpus(12);
        let mut batch = serial.clone();

        let serial_stats: Vec<_> =
            serial.iter_mut().map(|f| translate_out_of_ssa(f, &options)).collect();
        let batch_stats = translate_corpus(&mut batch, &options);

        assert_eq!(serial_stats, batch_stats.per_function);
        for (a, b) in serial.iter().zip(&batch) {
            assert_eq!(a, b, "translated function differs: {}", a.name);
        }
    }

    #[test]
    fn pooled_policy_variant_matches_cloning_variant_and_recycles_pristine() {
        let options = OutOfSsaOptions::default();
        let limits = Limits::default();
        let policy = EnginePolicy::validating(ValidationMode::Structural).with_retries(1);
        let corpus = small_corpus(6);

        let mut analyses = FunctionAnalyses::new();
        let mut scratch = TranslateScratch::new();
        let mut worker = EngineWorker::new();
        for func in &corpus {
            let mut via_clone = func.clone();
            analyses.invalidate_cfg();
            let a = translate_function_isolated_policy(
                &mut via_clone,
                &options,
                &limits,
                &policy,
                &mut analyses,
                &mut scratch,
            );
            let mut via_pool = func.clone();
            worker.analyses.invalidate_cfg();
            let b = translate_function_isolated_policy_pooled(
                &mut via_pool,
                &options,
                &limits,
                &policy,
                &mut worker,
            );
            assert_eq!(a, b);
            assert_eq!(via_clone, via_pool, "pooled pristine changed output: {}", func.name);
        }
        // The pristine snapshot slot is retired back every request: after the
        // first checkout miss, every later snapshot recycles it.
        let pool = worker.pool.stats();
        assert_eq!(pool.checkouts, corpus.len() as u64);
        assert_eq!(pool.retired, corpus.len() as u64);
        assert_eq!(pool.recycled, corpus.len() as u64 - 1);
        assert_eq!(worker.pool.free_len(), 1);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let options = OutOfSsaOptions::sharing();
        let mut one = small_corpus(8);
        let mut four = one.clone();
        let a = translate_corpus_with(&mut one, &options, 1);
        let b = translate_corpus_with(&mut four, &options, 4);
        assert_eq!(a.per_function, b.per_function);
        assert_eq!(one, four);
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn empty_corpus_is_fine() {
        let stats = translate_corpus(&mut [], &OutOfSsaOptions::default());
        assert!(stats.per_function.is_empty());
        assert_eq!(stats.total(), OutOfSsaStats::default());
    }

    #[test]
    fn streaming_matches_batch_translation() {
        let options = OutOfSsaOptions::default();
        let corpus = small_corpus(10);

        let mut batch = corpus.clone();
        let batch_stats = translate_corpus(&mut batch, &options);

        // The streaming input is an iterator — the engine never sees the
        // collection.
        let (streamed, stream_stats) = translate_stream(corpus.iter().cloned(), &options);
        assert_eq!(streamed, batch);
        assert_eq!(stream_stats.per_function, batch_stats.per_function);
    }

    #[test]
    fn streaming_thread_counts_agree() {
        let options = OutOfSsaOptions::sharing();
        let corpus = small_corpus(9);
        let (one, a) = translate_stream_with(corpus.iter().cloned(), &options, 1);
        let (four, b) = translate_stream_with(corpus.iter().cloned(), &options, 4);
        assert_eq!(one, four);
        assert_eq!(a.per_function, b.per_function);
        assert_eq!(b.threads, 4);
    }

    #[test]
    fn empty_stream_is_fine() {
        let (funcs, stats) = translate_stream(std::iter::empty(), &OutOfSsaOptions::default());
        assert!(funcs.is_empty());
        assert!(stats.per_function.is_empty());
        let (funcs, stats) =
            translate_stream_with(std::iter::empty(), &OutOfSsaOptions::default(), 3);
        assert!(funcs.is_empty());
        assert!(stats.per_function.is_empty());
    }

    #[test]
    fn streaming_consumes_the_source_lazily() {
        // A serial stream pulls one function at a time: the source iterator
        // is drained exactly as far as the engine has translated, never
        // collected up front.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let options = OutOfSsaOptions::default();
        let pulled = AtomicUsize::new(0);
        let corpus = small_corpus(5);
        let source = corpus.iter().cloned().inspect(|_| {
            pulled.fetch_add(1, Ordering::Relaxed);
        });
        let (funcs, _) = translate_stream_with(source, &options, 1);
        assert_eq!(funcs.len(), 5);
        assert_eq!(pulled.load(Ordering::Relaxed), 5);
    }

    /// A pool-aware source regenerating `small_corpus(count)` into recycled
    /// slots: the same functions the iterator sources stream, but built with
    /// `generate_ssa_function_into` on checked-out pool storage.
    fn pooled_small_source(count: u64) -> impl FnMut(&mut FunctionPool) -> Option<Function> + Send {
        let mut next = 0u64;
        move |pool: &mut FunctionPool| {
            if next >= count {
                return None;
            }
            let seed = next;
            next += 1;
            let slot = pool.checkout();
            let (func, _) = ossa_cfggen::generate_ssa_function_into(
                slot,
                format!("c{seed}"),
                &GenConfig::small(),
                seed,
            );
            Some(func)
        }
    }

    #[test]
    fn pooled_stream_matches_batch_translation() {
        let options = OutOfSsaOptions::default();
        let mut batch = small_corpus(10);
        let batch_stats = translate_corpus(&mut batch, &options);

        let collected: Mutex<Vec<Option<Function>>> = Mutex::new(Vec::new());
        let stats = translate_stream_pooled(pooled_small_source(10), &options, |index, func, _| {
            let mut collected = collected.lock().unwrap();
            if collected.len() <= index {
                collected.resize_with(index + 1, || None);
            }
            collected[index] = Some(func.clone());
        });

        let collected: Vec<Function> =
            collected.into_inner().unwrap().into_iter().map(Option::unwrap).collect();
        assert_eq!(collected, batch);
        assert_eq!(stats.per_function, batch_stats.per_function);
    }

    #[test]
    fn pooled_serial_recycles_storage_across_passes() {
        let options = OutOfSsaOptions::default();
        let mut worker = EngineWorker::new();

        let mut source = pooled_small_source(6);
        let first =
            translate_stream_pooled_serial(&mut source, &mut worker, &options, |_, _, _| {});
        assert_eq!(first.per_function.len(), 6);
        // Cold pool: every checkout allocated a fresh function.
        assert_eq!(worker.pool.stats().checkouts, 6);
        assert_eq!(worker.pool.stats().recycled, 5);
        assert_eq!(worker.pool.stats().retired, 6);
        assert_eq!(worker.pool.free_len(), 1);

        // Second pass over the same stream with the warm worker: every
        // checkout is a recycled slot, and the results are bit-identical.
        let mut source = pooled_small_source(6);
        let second =
            translate_stream_pooled_serial(&mut source, &mut worker, &options, |_, _, _| {});
        assert_eq!(second.per_function, first.per_function);
        assert_eq!(worker.pool.stats().checkouts, 12);
        assert_eq!(worker.pool.stats().recycled, 11);
    }

    #[test]
    fn pooled_thread_counts_agree() {
        let options = OutOfSsaOptions::sharing();
        let a = translate_stream_pooled_with(pooled_small_source(9), &options, 1, |_, _, _| {});
        let b = translate_stream_pooled_with(pooled_small_source(9), &options, 4, |_, _, _| {});
        assert_eq!(a.per_function, b.per_function);
        assert_eq!(b.threads, 4);
    }

    #[test]
    fn pooled_isolated_matches_plain_pooled_on_healthy_input() {
        let options = OutOfSsaOptions::default();
        let limits = Limits::default();
        let plain = translate_stream_pooled_with(pooled_small_source(7), &options, 1, |_, _, _| {});
        let isolated = translate_stream_pooled_isolated_with(
            pooled_small_source(7),
            &options,
            &limits,
            1,
            |_, result| assert!(result.is_ok()),
        );
        assert_eq!(isolated.num_errors(), 0);
        let ok: Vec<_> = isolated.results.iter().map(|r| r.clone().unwrap()).collect();
        assert_eq!(ok, plain.per_function);
    }

    #[test]
    fn total_aggregates_counters() {
        let options = OutOfSsaOptions::default();
        let mut funcs = small_corpus(4);
        let stats = translate_corpus(&mut funcs, &options);
        let total = stats.total();
        assert_eq!(
            total.phis_removed,
            stats.per_function.iter().map(|s| s.phis_removed).sum::<usize>()
        );
        assert_eq!(
            total.remaining_copies,
            stats.per_function.iter().map(|s| s.remaining_copies).sum::<usize>()
        );
    }
}
