//! Batch out-of-SSA translation over a whole corpus of functions.
//!
//! A JIT (or an AOT compiler doing whole-program work) does not translate
//! one function: it drains a queue of them. [`translate_corpus`] is that
//! batch entry point — each function gets its own [`FunctionAnalyses`]
//! cache, shared across the phases of its translation, and independent
//! functions run in parallel on a scoped-thread worker pool (the standard
//! library only; the build environment has no external crates).
//!
//! Parallel and serial execution produce bit-identical functions and
//! statistics: per-function work is deterministic and results are collected
//! by input index, so [`CorpusStats::per_function`] lines up with the input
//! slice regardless of scheduling.

use std::sync::Mutex;

use ossa_ir::Function;
use ossa_liveness::FunctionAnalyses;

use crate::coalesce::{
    translate_out_of_ssa_scratch, OutOfSsaOptions, OutOfSsaStats, TranslateScratch,
};

/// Statistics of one batch translation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CorpusStats {
    /// Per-function statistics, in input order.
    pub per_function: Vec<OutOfSsaStats>,
    /// Number of worker threads actually used.
    pub threads: usize,
}

impl CorpusStats {
    /// Aggregates the per-function statistics into one total.
    pub fn total(&self) -> OutOfSsaStats {
        let mut total = OutOfSsaStats::default();
        for stats in &self.per_function {
            total.absorb(stats);
        }
        total
    }
}

/// Translates every function of `funcs` out of SSA in place, in parallel,
/// with the default thread count (one worker per available core, capped by
/// the corpus size).
///
/// Results are identical to calling
/// [`translate_out_of_ssa`](crate::translate_out_of_ssa) on each function in
/// order.
pub fn translate_corpus(funcs: &mut [Function], options: &OutOfSsaOptions) -> CorpusStats {
    translate_corpus_with(funcs, options, 0)
}

/// Like [`translate_corpus`], with an explicit worker count (`0` = one per
/// available core). `threads == 1` runs serially on the calling thread.
pub fn translate_corpus_with(
    funcs: &mut [Function],
    options: &OutOfSsaOptions,
    threads: usize,
) -> CorpusStats {
    let threads = effective_threads(threads, funcs.len());
    if threads <= 1 {
        return translate_corpus_serial(funcs, options);
    }

    let num_funcs = funcs.len();
    // Work queue: functions are handed out one at a time so a worker stuck
    // on a large function does not starve the others. Reversed so that
    // popping from the back yields input order.
    let queue: Mutex<Vec<(usize, &mut Function)>> =
        Mutex::new(funcs.iter_mut().enumerate().rev().collect());
    let results: Mutex<Vec<Option<OutOfSsaStats>>> = Mutex::new(vec![None; num_funcs]);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Per-worker caches and scratch, hoisted out of the
                // per-function loop: the analyses are invalidated (not
                // reallocated) between functions and the scratch buffers are
                // reused as-is.
                let mut analyses = FunctionAnalyses::new();
                let mut scratch = TranslateScratch::new();
                loop {
                    // Recover a poisoned lock so that a panic in one worker
                    // propagates as itself, not as a secondary lock error.
                    let mut guard = queue.lock().unwrap_or_else(|e| e.into_inner());
                    let Some((index, func)) = guard.pop() else { return };
                    drop(guard);
                    analyses.invalidate_cfg();
                    let stats =
                        translate_out_of_ssa_scratch(func, options, &mut analyses, &mut scratch);
                    results.lock().unwrap_or_else(|e| e.into_inner())[index] = Some(stats);
                }
            });
        }
    });

    let per_function = results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|stats| stats.expect("every function translated"))
        .collect();
    CorpusStats { per_function, threads }
}

/// Serial reference implementation of the batch API, used by the parity
/// tests and as the `threads == 1` fast path.
pub fn translate_corpus_serial(funcs: &mut [Function], options: &OutOfSsaOptions) -> CorpusStats {
    let mut analyses = FunctionAnalyses::new();
    let mut scratch = TranslateScratch::new();
    let per_function = funcs
        .iter_mut()
        .map(|func| {
            analyses.invalidate_cfg();
            translate_out_of_ssa_scratch(func, options, &mut analyses, &mut scratch)
        })
        .collect();
    CorpusStats { per_function, threads: 1 }
}

fn effective_threads(requested: usize, num_funcs: usize) -> usize {
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = if requested == 0 { available } else { requested };
    threads.clamp(1, num_funcs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::translate_out_of_ssa;
    use ossa_cfggen::{generate_ssa_function, GenConfig};

    fn small_corpus(count: u64) -> Vec<Function> {
        (0..count)
            .map(|seed| generate_ssa_function(format!("c{seed}"), &GenConfig::small(), seed).0)
            .collect()
    }

    #[test]
    fn batch_matches_serial_per_function_translation() {
        let options = OutOfSsaOptions::default();
        let mut serial = small_corpus(12);
        let mut batch = serial.clone();

        let serial_stats: Vec<_> =
            serial.iter_mut().map(|f| translate_out_of_ssa(f, &options)).collect();
        let batch_stats = translate_corpus(&mut batch, &options);

        assert_eq!(serial_stats, batch_stats.per_function);
        for (a, b) in serial.iter().zip(&batch) {
            assert_eq!(a, b, "translated function differs: {}", a.name);
        }
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let options = OutOfSsaOptions::sharing();
        let mut one = small_corpus(8);
        let mut four = one.clone();
        let a = translate_corpus_with(&mut one, &options, 1);
        let b = translate_corpus_with(&mut four, &options, 4);
        assert_eq!(a.per_function, b.per_function);
        assert_eq!(one, four);
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn empty_corpus_is_fine() {
        let stats = translate_corpus(&mut [], &OutOfSsaOptions::default());
        assert!(stats.per_function.is_empty());
        assert_eq!(stats.total(), OutOfSsaStats::default());
    }

    #[test]
    fn total_aggregates_counters() {
        let options = OutOfSsaOptions::default();
        let mut funcs = small_corpus(4);
        let stats = translate_corpus(&mut funcs, &options);
        let total = stats.total();
        assert_eq!(
            total.phis_removed,
            stats.per_function.iter().map(|s| s.phis_removed).sum::<usize>()
        );
        assert_eq!(
            total.remaining_copies,
            stats.per_function.iter().map(|s| s.remaining_copies).sum::<usize>()
        );
    }
}
