//! Congruence classes and interference tests between them.
//!
//! Following Sreedhar et al., coalesced variables are kept in *congruence
//! classes*. Coalescing `a` and `b` is allowed when their classes do not
//! interfere. This module provides:
//!
//! * the class representation: a union-find plus, per class, the member list
//!   kept sorted in pre-DFS order of the dominance tree (ordered by
//!   definition point),
//! * a reference **quadratic** interference test between two classes
//!   (`|X| × |Y|` variable pair queries), and
//! * the paper's **linear** interference test (Section IV-B): a merged walk
//!   of the two ordered lists with a dominance stack, generalized to
//!   value-based interference through "equal intersecting ancestor" chains.
//!
//! Classes may carry a register *label* (pinned variables): two classes with
//! different labels always interfere (Section III-D).
//!
//! All per-value state is held in dense [`SecondaryMap`]s — the class
//! operations sit on the hot path of every coalescing decision. The
//! union-find uses path compression (through interior mutability, so lookups
//! stay `&self`) and union by rank; because rank-based linking makes the
//! *tree root* an implementation detail, the externally meaningful class
//! identity — the value every member is renamed to — is tracked separately
//! as the class's *canonical representative*
//! ([`CongruenceClasses::representative`]), which is always the root the
//! seed's rank-free linking would have chosen, keeping the translated output
//! bit-identical.

use std::cell::Cell;

use ossa_ir::entity::{SecondaryMap, Value};
use ossa_ir::{DominatorTree, Function};
use ossa_liveness::{BlockLiveness, IntersectionTest, LiveRangeInfo};

use crate::value::ValueTable;

/// Ordering key of a value: the pre-DFS number of its definition block and
/// its position inside the block. Values defined earlier in dominance order
/// come first.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DefOrderKey {
    /// Pre-order number of the defining block in the dominator tree.
    pub block_preorder: u32,
    /// Instruction position within the block.
    pub pos: u32,
    /// Tie-breaker: the value index.
    pub value_index: u32,
    /// Post-order number of the defining block in the dominator-tree DFS.
    /// Carried so dominance between two definition points is a pure key
    /// comparison ([`key_def_dominates`]); last in the struct, so the derived
    /// lexicographic order is unchanged (the `value_index` tie-breaker is
    /// unique, comparisons of distinct values never reach this field).
    pub block_postorder: u32,
}

/// Definition-point dominance decided from two cached keys — exactly
/// [`IntersectionTest::def_dominates`]: values without a key (no definition)
/// or defined in unreachable blocks (pre-order `u32::MAX`) dominate nothing,
/// same-block points compare by position, and distinct blocks use the DFS
/// interval of the dominator tree.
#[inline]
pub fn key_def_dominates(a: Option<DefOrderKey>, b: Option<DefOrderKey>) -> bool {
    let (Some(a), Some(b)) = (a, b) else { return false };
    if a.block_preorder == u32::MAX || b.block_preorder == u32::MAX {
        return false;
    }
    if a.block_preorder == b.block_preorder {
        return a.pos <= b.pos;
    }
    a.block_preorder < b.block_preorder && b.block_postorder <= a.block_postorder
}

/// Scratch map recording, for each value walked by the linear interference
/// test, its nearest intersecting equal ancestor in the *other* class
/// (`equal_anc_out` in the paper's Algorithm 2).
///
/// The map is dense and reused across queries: [`EqualAncOut::clear`] resets
/// only the entries touched by the previous query, so the per-query cost is
/// proportional to the class sizes, not to the function.
#[derive(Clone, Debug, Default)]
pub struct EqualAncOut {
    map: SecondaryMap<Value, Option<Value>>,
    touched: Vec<Value>,
    /// Reusable dominance stack for the linear walk (`(value, came from the
    /// red list)`), so repeated queries neither allocate nor re-derive list
    /// membership by scanning.
    dom: Vec<(Value, bool)>,
}

impl EqualAncOut {
    /// Creates an empty scratch map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the entries written since the last clear.
    pub fn clear(&mut self) {
        for value in self.touched.drain(..) {
            self.map[value] = None;
        }
    }

    /// Returns `true` if no entry has been written since the last clear.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Records the equal intersecting ancestor of `value`. Recording `None`
    /// into a slot that already reads `None` is a no-op: the map is all-`None`
    /// between queries, so `touched` holds exactly the values with a `Some`
    /// record. Most walk steps record `None` (the same-value ancestor path is
    /// the rare one), which keeps the per-query clear cost — and the
    /// chain-combine loop of [`CongruenceClasses::merge`], which iterates
    /// `touched` — proportional to the *meaningful* records only.
    fn set(&mut self, value: Value, anc: Option<Value>) {
        if anc.is_none() && self.map.get(value).is_none() {
            return;
        }
        self.map[value] = anc;
        self.touched.push(value);
    }

    /// The recorded ancestor of `value`, if any.
    pub fn get(&self, value: Value) -> Option<Value> {
        *self.map.get(value)
    }
}

/// The congruence classes of a function's values.
#[derive(Clone, Debug, Default)]
pub struct CongruenceClasses {
    /// Union-find parent links. `Cell` so that [`CongruenceClasses::find`]
    /// can compress paths behind a `&self` borrow.
    parent: SecondaryMap<Value, Cell<Option<Value>>>,
    /// Union-by-rank upper bound on the tree height, stored at roots.
    rank: SecondaryMap<Value, u32>,
    /// Canonical representative of a class, stored at the tree root when it
    /// differs from the root itself (`None` = the root is canonical). This
    /// is the value the rewrite renames every member to.
    canon: SecondaryMap<Value, Option<Value>>,
    /// Members of each class, stored at the class root, sorted by
    /// [`DefOrderKey`]. Empty at roots of *singleton* classes — the
    /// one-element list is read from `pool` instead, so construction
    /// performs no per-value heap allocation.
    members: SecondaryMap<Value, Vec<Value>>,
    /// Identity table `pool[i] == vᵢ`, the backing storage for the implicit
    /// singleton member lists.
    pool: Vec<Value>,
    /// Free list of member buffers: every merge retires up to two member
    /// lists and produces one, so recycling them through this pool makes the
    /// merge path allocation-free once the buffers have grown to the sizes a
    /// corpus needs. Buffers are pushed back empty, capacity intact.
    free: Vec<Vec<Value>>,
    /// Scratch root list of [`CongruenceClasses::merge_group`].
    group_roots: Vec<Value>,
    /// Register label of each class root, if any member is pinned.
    labels: SecondaryMap<Value, Option<u32>>,
    /// Definition-order key of every value.
    keys: SecondaryMap<Value, Option<DefOrderKey>>,
    /// For the value-based linear test: nearest dominating member of the
    /// same class with the same value that intersects the value.
    equal_anc_in: SecondaryMap<Value, Option<Value>>,
    /// Merge version of each class, stored at roots: bumped every time the
    /// class gains members. `(root, version)` names an immutable snapshot of
    /// a class — the key the coalescer's verdict cache is invalidated by
    /// (see [`CongruenceClasses::class_version`]).
    version: SecondaryMap<Value, u32>,
    /// Number of interference queries performed (statistics).
    queries: u64,
    /// The slots written since the last reset ([`CongruenceClasses::reset_for`]
    /// universe plus [`CongruenceClasses::add_value`] registrations): every
    /// union-find, member, label, key, chain and version write lands on a
    /// class member or affinity endpoint, all of which the universe covers.
    /// The next `reset_for` only has to scrub these slots.
    dirty: Vec<Value>,
    /// Set by the full [`CongruenceClasses::reset`] path (which touches every
    /// value): the dirty list is not exhaustive, so the next `reset_for`
    /// falls back to the full scrub.
    fully_dirty: bool,
}

impl CongruenceClasses {
    /// Creates singleton classes for every value of `func`, ordering members
    /// by definition point. Definition sites are read from the shared `info`
    /// index instead of being recomputed.
    pub fn new(func: &Function, domtree: &DominatorTree, info: &LiveRangeInfo) -> Self {
        let mut this = Self::default();
        this.reset(func, domtree, info);
        this
    }

    /// Re-initializes the classes for `func` in place, reusing the dense
    /// maps, member lists and singleton pool of a previous function. The
    /// resulting state — and every decision made from it — is identical to
    /// a freshly constructed [`CongruenceClasses::new`]; only the heap
    /// traffic differs. This is what lets [`TranslateScratch`] carry the
    /// class storage across the functions of a corpus.
    ///
    /// [`TranslateScratch`]: crate::coalesce::TranslateScratch
    pub fn reset(&mut self, func: &Function, domtree: &DominatorTree, info: &LiveRangeInfo) {
        self.reset_clear(func);
        for value in func.values() {
            self.fill_value(value, func, domtree, info);
        }
        self.fully_dirty = true;
    }

    /// Like [`CongruenceClasses::reset`], but fills the definition keys and
    /// register labels only for the values of `universe` (the copy-related
    /// universe of the function). Valid because the decision phase reads
    /// keys and labels only for class members and affinity/sharing
    /// endpoints, all of which are copy-related (φ/copy operands) or pinned
    /// — and the universe contains every pinned value by construction. The
    /// remaining slots read as "no key / no label", exactly the default of a
    /// fresh map, so any stale entry from a previous function is
    /// unobservable.
    ///
    /// The scrub is equally restricted: between two `reset_for` calls every
    /// write lands on a slot of the `dirty` list (the previous universe plus
    /// `add_value` registrations), so only those slots need to be returned
    /// to their default — the rest never left it.
    pub fn reset_for(
        &mut self,
        func: &Function,
        domtree: &DominatorTree,
        info: &LiveRangeInfo,
        universe: &[Value],
    ) {
        if self.fully_dirty {
            self.reset_clear(func);
        } else {
            self.reset_clear_dirty(func);
        }
        for &value in universe {
            self.fill_value(value, func, domtree, info);
        }
        self.dirty.clear();
        self.dirty.extend_from_slice(universe);
        self.fully_dirty = false;
    }

    #[inline]
    fn fill_value(
        &mut self,
        value: Value,
        func: &Function,
        domtree: &DominatorTree,
        info: &LiveRangeInfo,
    ) {
        if let Some(site) = info.def(value) {
            self.keys[value] = Some(DefOrderKey {
                block_preorder: domtree.preorder_number(site.block),
                pos: site.pos as u32,
                value_index: value.index() as u32,
                block_postorder: domtree.postorder_number(site.block),
            });
        }
        self.labels[value] = func.pinned_reg(value);
    }

    /// The shared clearing pass of [`CongruenceClasses::reset`] and
    /// [`CongruenceClasses::reset_for`]: reclaim member buffers, truncate
    /// and zero every dense map, and top up the identity pool.
    fn reset_clear(&mut self, func: &Function) {
        let num_values = func.num_values();
        // Reclaim every member buffer into the free list in one pass (the
        // buffers cycle through the pool, so no slot keeps one across
        // functions), then truncate every map: the reset walks below touch
        // only the current function's slots, so the per-function reset cost
        // is O(current function), not O(largest function ever seen).
        for i in 0..self.members.len() {
            let slot = &mut self.members[Value::from_index(i)];
            if slot.capacity() > 0 {
                slot.clear();
                self.free.push(std::mem::take(slot));
            }
        }
        self.parent.truncate(num_values);
        self.rank.truncate(num_values);
        self.canon.truncate(num_values);
        self.members.truncate(num_values);
        self.labels.truncate(num_values);
        self.keys.truncate(num_values);
        self.equal_anc_in.truncate(num_values);
        self.version.truncate(num_values);
        // Restore default-equivalent state on every surviving slot without
        // dropping the per-slot heap allocations.
        for cell in self.parent.values_mut() {
            cell.set(None);
        }
        for rank in self.rank.values_mut() {
            *rank = 0;
        }
        for canon in self.canon.values_mut() {
            *canon = None;
        }
        for label in self.labels.values_mut() {
            *label = None;
        }
        for key in self.keys.values_mut() {
            *key = None;
        }
        for anc in self.equal_anc_in.values_mut() {
            *anc = None;
        }
        for version in self.version.values_mut() {
            *version = 0;
        }
        self.queries = 0;

        self.parent.resize(num_values);
        self.rank.resize(num_values);
        self.canon.resize(num_values);
        self.members.resize(num_values);
        self.labels.resize(num_values);
        self.keys.resize(num_values);
        self.equal_anc_in.resize(num_values);
        self.version.resize(num_values);
        if self.pool.len() < num_values {
            self.pool.reserve_exact(num_values - self.pool.len());
            while self.pool.len() < num_values {
                self.pool.push(Value::from_index(self.pool.len()));
            }
        }
    }

    /// The restricted scrub of [`CongruenceClasses::reset_for`]: returns the
    /// slots of the `dirty` list to their defaults while the maps still have
    /// their previous length (every dirty index was valid then), then
    /// truncates, resizes and tops up the identity pool exactly like the
    /// full pass.
    fn reset_clear_dirty(&mut self, func: &Function) {
        let num_values = func.num_values();
        for i in 0..self.dirty.len() {
            let value = self.dirty[i];
            let slot = &mut self.members[value];
            if slot.capacity() > 0 {
                slot.clear();
                self.free.push(std::mem::take(slot));
            }
            self.parent[value].set(None);
            self.rank[value] = 0;
            self.canon[value] = None;
            self.labels[value] = None;
            self.keys[value] = None;
            self.equal_anc_in[value] = None;
            self.version[value] = 0;
        }
        self.queries = 0;

        self.parent.truncate(num_values);
        self.rank.truncate(num_values);
        self.canon.truncate(num_values);
        self.members.truncate(num_values);
        self.labels.truncate(num_values);
        self.keys.truncate(num_values);
        self.equal_anc_in.truncate(num_values);
        self.version.truncate(num_values);
        self.parent.resize(num_values);
        self.rank.resize(num_values);
        self.canon.resize(num_values);
        self.members.resize(num_values);
        self.labels.resize(num_values);
        self.keys.resize(num_values);
        self.equal_anc_in.resize(num_values);
        self.version.resize(num_values);
        if self.pool.len() < num_values {
            self.pool.reserve_exact(num_values - self.pool.len());
            while self.pool.len() < num_values {
                self.pool.push(Value::from_index(self.pool.len()));
            }
        }
    }

    /// Registers a value created after construction (e.g. a materialized
    /// copy), giving it a singleton class.
    pub fn add_value(&mut self, value: Value, key: DefOrderKey, label: Option<u32>) {
        if !self.fully_dirty {
            self.dirty.push(value);
        }
        self.keys[value] = Some(key);
        self.parent[value] = Cell::new(None);
        self.rank[value] = 0;
        self.canon[value] = None;
        self.equal_anc_in[value] = None;
        self.version[value] = 0;
        self.members[value].clear();
        self.labels[value] = label;
        while self.pool.len() <= value.index() {
            self.pool.push(Value::from_index(self.pool.len()));
        }
    }

    /// The union-find root of the class of `value`, compressing the walked
    /// path. The root is an internal identity (stable key for the member,
    /// label and canon storage); the externally meaningful class name is
    /// [`CongruenceClasses::representative`].
    pub fn find(&self, value: Value) -> Value {
        let mut root = value;
        while let Some(up) = self.parent.get(root).get() {
            root = up;
        }
        // Path compression: point every node on the walked path directly at
        // the root. Only non-root nodes are rewritten, and those were all
        // materialized by the merge that linked them, so the shared default
        // cell of the map is never written through.
        let mut cur = value;
        while cur != root {
            let up = self.parent.get(cur).replace(Some(root)).expect("non-root has a parent");
            cur = up;
        }
        root
    }

    /// The canonical representative of the class of `value`: the value every
    /// member is renamed to by the rewrite. Identical to the tree root the
    /// seed's rank-free linking produced, independent of rank decisions.
    pub fn representative(&self, value: Value) -> Value {
        let root = self.find(value);
        self.canon.get(root).unwrap_or(root)
    }

    /// Returns `true` if `a` and `b` are already coalesced.
    pub fn same_class(&self, a: Value, b: Value) -> bool {
        self.find(a) == self.find(b)
    }

    /// Members of the class of `value`, sorted by definition order.
    pub fn members(&self, value: Value) -> &[Value] {
        let root = self.find(value);
        let list = self.members.get(root);
        if !list.is_empty() {
            return list;
        }
        // Singleton classes are implicit: no per-value list is allocated,
        // the one-element slice comes from the identity pool.
        match self.pool.get(root.index()) {
            Some(slot) => std::slice::from_ref(slot),
            None => &[],
        }
    }

    /// The register label of the class of `value`, if any.
    pub fn label(&self, value: Value) -> Option<u32> {
        *self.labels.get(self.find(value))
    }

    /// The definition-order key of `value`.
    pub fn key(&self, value: Value) -> Option<DefOrderKey> {
        self.keys[value]
    }

    /// Number of variable-to-variable interference queries performed so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// The merge version of the class whose *root* is `root` (callers pass a
    /// [`CongruenceClasses::find`] result). The version is bumped exactly
    /// when the class gains members, and a class's interference-relevant
    /// state — member list, label, members' `equal_anc_in` chains — changes
    /// only then, so `(root, version)` pins an immutable snapshot: equal
    /// pairs on both sides guarantee a cached verdict is still exact.
    pub fn class_version(&self, root: Value) -> u32 {
        *self.version.get(root)
    }

    /// Adds externally performed pair queries to the statistics counter.
    pub fn add_queries(&mut self, count: u64) {
        self.queries += count;
    }

    /// The nearest same-class, same-value, intersecting dominating ancestor
    /// recorded for `value`.
    pub fn equal_anc_in(&self, value: Value) -> Option<Value> {
        self.equal_anc_in[value]
    }

    /// Returns `true` if the labels of the two classes conflict (both are
    /// pinned, to different registers).
    pub fn labels_conflict(&self, a: Value, b: Value) -> bool {
        match (self.label(a), self.label(b)) {
            (Some(ra), Some(rb)) => ra != rb,
            _ => false,
        }
    }

    /// Merges the classes of `a` and `b` without checking interference.
    /// The member lists are merged in definition order and the
    /// equal-intersecting-ancestor chains are combined as in the paper.
    /// The canonical representative of the combined class is the one of
    /// `a`'s class; the tree root is chosen by rank.
    pub fn merge(&mut self, a: Value, b: Value, equal_anc_out: &EqualAncOut) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let canonical = self.canon.get(ra).unwrap_or(ra);
        // Label propagation: as in the seed, a label on `b`'s class wins
        // over one on `a`'s (differently labeled classes always interfere,
        // so conditional merges never see two distinct labels).
        let label = self.labels[rb].or(self.labels[ra]);
        // A root with no materialized member list names a singleton class
        // (its only member is the root itself). Absorbing a singleton into a
        // materialized list is the common shape of the decide loop, and a
        // binary-search insert into the surviving buffer produces exactly the
        // list `merge_sorted_into` would (ties between `None`-keyed values
        // resolve to the left operand there, hence the `<=`/`<` asymmetry)
        // without copying the whole class through a pooled buffer.
        let a_single = self.members[ra].is_empty();
        let b_single = self.members[rb].is_empty();
        let merged = if !a_single && b_single {
            let mut list = std::mem::take(&mut self.members[ra]);
            let kv = self.keys[rb];
            let pos = list.partition_point(|&x| self.keys[x] <= kv);
            list.insert(pos, rb);
            list
        } else if a_single && !b_single {
            let mut list = std::mem::take(&mut self.members[rb]);
            let kv = self.keys[ra];
            let pos = list.partition_point(|&x| self.keys[x] < kv);
            list.insert(pos, ra);
            list
        } else {
            let list_a = std::mem::take(&mut self.members[ra]);
            let list_b = std::mem::take(&mut self.members[rb]);
            let mut merged = self.free.pop().unwrap_or_default();
            {
                let slice_a: &[Value] = if list_a.is_empty() {
                    std::slice::from_ref(&self.pool[ra.index()])
                } else {
                    &list_a
                };
                let slice_b: &[Value] = if list_b.is_empty() {
                    std::slice::from_ref(&self.pool[rb.index()])
                } else {
                    &list_b
                };
                self.merge_sorted_into(slice_a, slice_b, &mut merged);
            }
            // The retired member lists go back to the pool for the next merge.
            if list_a.capacity() > 0 {
                self.free.push(list_a);
            }
            if list_b.capacity() > 0 {
                self.free.push(list_b);
            }
            merged
        };

        // equal_anc_in for the combined class: the later (in ≺ order) of the
        // in-class and out-of-class equal intersecting ancestors. Only the
        // scratch's touched values can change a chain (an untouched member
        // has `equal_anc_out = None`, and `max(x, None) = x`), so the
        // combine walks the touched list — typically a handful of same-value
        // records — instead of every member of the merged class. The scratch
        // must be the one filled by the interference test of this very pair;
        // unconditional merges pass an empty scratch and skip the loop.
        if !equal_anc_out.is_empty() {
            for &member in &equal_anc_out.touched {
                let current = self.equal_anc_in[member];
                let out = equal_anc_out.get(member);
                self.equal_anc_in[member] = self.max_by_key(current, out);
            }
        }

        // Union by rank; the canonical representative rides along with the
        // winning root so the class keeps its external identity.
        let (root, child) = if self.rank[ra] >= self.rank[rb] { (ra, rb) } else { (rb, ra) };
        if self.rank[ra] == self.rank[rb] {
            self.rank[root] += 1;
        }
        self.parent[child] = Cell::new(Some(root));
        self.labels[root] = label;
        self.canon[root] = (canonical != root).then_some(canonical);
        self.members[root] = merged;
        // The surviving root now names a different class: advance its
        // version so cached verdicts keyed on the old snapshot miss. The
        // losing root can never be a root again, so its slot needs no bump.
        self.version[root] = self.version[root].wrapping_add(1);
    }

    /// Merges every value of `group` into one class without interference
    /// checks — the unconditional pre-coalescing of φ-webs (Lemma 1) and
    /// same-register pinned values. One sort instead of `k` incremental
    /// sorted-list merges.
    pub fn merge_group(&mut self, group: &[Value]) {
        let Some((&first, rest)) = group.split_first() else { return };
        let ra = self.find(first);
        let mut roots = std::mem::take(&mut self.group_roots);
        roots.clear();
        roots.push(ra);
        for &value in rest {
            let r = self.find(value);
            if !roots.contains(&r) {
                roots.push(r);
            }
        }
        if roots.len() == 1 {
            self.group_roots = roots;
            return;
        }
        let canonical = self.canon.get(ra).unwrap_or(ra);
        // Buffers in the free list keep their stale contents (only their
        // capacity matters); every consumer clears before filling.
        let mut merged = self.free.pop().unwrap_or_default();
        merged.clear();
        for &root in &roots {
            if self.members[root].is_empty() {
                merged.push(root);
            } else {
                merged.append(&mut self.members[root]);
                // `append` drained the list but kept its buffer; reclaim it.
                let retired = std::mem::take(&mut self.members[root]);
                if retired.capacity() > 0 {
                    self.free.push(retired);
                }
            }
        }
        // The keys are total (every defined value carries a unique
        // `value_index` tie-breaker), so the unstable sort is deterministic
        // and orders exactly like the seed's stable sort; undefined values
        // (no key) fall back to the value index explicitly.
        merged.sort_unstable_by_key(|&v| (self.keys[v], v.index()));
        // Link everything under the highest-rank root (ties resolved to the
        // first, keeping the choice deterministic).
        let mut root = roots[0];
        for &r in &roots[1..] {
            if self.rank[r] > self.rank[root] {
                root = r;
            }
        }
        let top_rank = self.rank[root];
        let mut label = self.labels[root];
        let mut bump = false;
        for &other in &roots {
            if other == root {
                continue;
            }
            bump |= self.rank[other] == top_rank;
            self.parent[other] = Cell::new(Some(root));
            if let Some(reg) = self.labels[other] {
                debug_assert!(
                    label.is_none_or(|r| r == reg),
                    "merge_group called on values pinned to different registers"
                );
                label = Some(reg);
            }
        }
        if bump {
            self.rank[root] = top_rank + 1;
        }
        self.labels[root] = label;
        self.canon[root] = (canonical != root).then_some(canonical);
        let displaced = std::mem::replace(&mut self.members[root], merged);
        if displaced.capacity() > 0 {
            self.free.push(displaced);
        }
        self.version[root] = self.version[root].wrapping_add(1);
        self.group_roots = roots;
    }

    fn max_by_key(&self, a: Option<Value>, b: Option<Value>) -> Option<Value> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(x), Some(y)) => {
                if self.keys[x] >= self.keys[y] {
                    Some(x)
                } else {
                    Some(y)
                }
            }
        }
    }

    /// Merges two definition-ordered member lists into `out` (a recycled
    /// buffer from the free list; cleared here, filled sorted).
    fn merge_sorted_into(&self, a: &[Value], b: &[Value], out: &mut Vec<Value>) {
        out.clear();
        out.reserve(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if self.keys[a[i]] <= self.keys[b[j]] {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
    }

    /// Reference quadratic interference test between the classes of `a` and
    /// `b`: every cross pair is queried. `use_values` selects value-based
    /// interference (intersection + different value) versus plain
    /// intersection.
    pub fn interfere_quadratic<L: BlockLiveness>(
        &mut self,
        a: Value,
        b: Value,
        intersect: &IntersectionTest<'_, L>,
        values: Option<&ValueTable>,
    ) -> bool {
        if self.labels_conflict(a, b) {
            return true;
        }
        let mut queries = 0u64;
        let mut result = false;
        {
            let xs = self.members(a);
            let ys = self.members(b);
            'outer: for &x in xs {
                for &y in ys {
                    queries += 1;
                    if intersect.intersect(x, y) {
                        match values {
                            Some(table) if table.same_value(x, y) => continue,
                            _ => {
                                result = true;
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        self.queries += queries;
        result
    }

    /// The paper's linear interference test between the classes of `a` and
    /// `b` (Algorithm 2 with the value extension). Returns `true` if the two
    /// classes interfere. When they do not and the caller decides to merge
    /// them, the scratch `equal_anc_out` (cleared and filled by this call)
    /// must be passed to [`CongruenceClasses::merge`]. Definition-point
    /// dominance is read from the oracle's own dominator tree
    /// ([`IntersectionTest::def_dominates`]).
    pub fn interfere_linear<L: BlockLiveness>(
        &mut self,
        a: Value,
        b: Value,
        intersect: &IntersectionTest<'_, L>,
        values: Option<&ValueTable>,
        equal_anc_out: &mut EqualAncOut,
    ) -> bool {
        equal_anc_out.clear();
        if self.labels_conflict(a, b) {
            return true;
        }
        // The member lists are borrowed, not cloned: the whole walk is
        // read-only on `self` (the query counter is folded in at the end),
        // and the dominance stack comes from the reusable scratch.
        let queries = std::cell::Cell::new(0u64);
        let mut dom: Vec<(Value, bool)> = std::mem::take(&mut equal_anc_out.dom);
        dom.clear();
        let interference_found = {
            let red = self.members(a);
            let blue = self.members(b);
            let keys = &self.keys;
            let equal_anc_in = &self.equal_anc_in;

            // One step of Algorithm 2: test `current` against its nearest
            // dominating stack ancestor `parent`, walking the equal-ancestor
            // chains. Returns `true` on interference; otherwise records
            // `current`'s nearest intersecting equal ancestor in the scratch.
            // Shared by the full merged walk and the singleton fast path, so
            // the two are the same computation by construction.
            let step = |current: Value,
                        current_in_red: bool,
                        parent: Option<(Value, bool)>,
                        equal_anc_out: &mut EqualAncOut|
             -> bool {
                let Some((parent, parent_in_red)) = parent else {
                    equal_anc_out.set(current, None);
                    return false;
                };
                // interference(current, parent)
                equal_anc_out.set(current, None);
                let same_set = current_in_red == parent_in_red;
                let mut b_chain: Option<Value> = Some(parent);
                if same_set {
                    b_chain = equal_anc_out.get(parent);
                }
                let same_value = match (values, b_chain) {
                    (Some(table), Some(bc)) => table.same_value(current, bc),
                    (None, _) => false,
                    (_, None) => false,
                };
                // Every chain element dominates `current`: the chain starts
                // at the stack parent (a dominating ancestor of `current` by
                // the stack invariant) or at its recorded equal intersecting
                // ancestor (a dominance ancestor of the parent), and each
                // `equal_anc_in` link climbs further towards the root of the
                // class's dominance forest — so the cheaper directional
                // intersection entry applies throughout.
                if values.is_none() || !same_value {
                    // chain_intersect: does current intersect b_chain or one
                    // of its equal intersecting ancestors? The innermost
                    // loop of the default engine's class-interference check.
                    let mut y_opt = b_chain;
                    while let Some(y) = y_opt {
                        queries.set(queries.get() + 1);
                        if intersect.intersect_dominating(y, current) {
                            return true;
                        }
                        y_opt = equal_anc_in[y];
                    }
                    false
                } else {
                    // Same value: no interference, but record the nearest
                    // intersecting equal ancestor in the other chain.
                    let mut tmp = b_chain;
                    while let Some(t) = tmp {
                        queries.set(queries.get() + 1);
                        if intersect.intersect_dominating(t, current) {
                            break;
                        }
                        tmp = equal_anc_in[t];
                    }
                    equal_anc_out.set(current, tmp);
                    false
                }
            };

            // Most queries (three quarters on the bench corpus) have a
            // singleton on one side. The merged walk then degenerates:
            // every step before the singleton `v` only maintains the stack
            // (parents from the same set carry `None` records, so no query
            // is issued), and every step after leaving `v`'s dominated
            // subtree likewise (by the pre-order interval property of
            // dominance, nothing inside the subtree dominates anything after
            // it). The fast path reproduces the walk exactly — including
            // the query count — while touching only `v`'s insertion
            // neighbourhood: a backward scan for `v`'s nearest dominating
            // ancestor (the stack top the full walk would see: the latest
            // dominating predecessor is never popped before `v`, again by
            // the interval property), then the contiguous run of list
            // entries dominated by `v`. Values without a definition key
            // sort first, dominate nothing and issue no queries, so the
            // fast path requires `v` to carry a key and the big side is
            // taken as-is.
            let singleton = if red.len() == 1 && keys[red[0]].is_some() {
                Some((red[0], true, blue, false))
            } else if blue.len() == 1 && keys[blue[0]].is_some() {
                Some((blue[0], false, red, true))
            } else {
                None
            };
            if let Some((v, v_in_red, big, big_in_red)) = singleton {
                let kv = keys[v];
                let idx = big.partition_point(|&x| keys[x] < kv);
                let parent = big[..idx]
                    .iter()
                    .rev()
                    .copied()
                    .find(|&x| key_def_dominates(keys[x], kv))
                    .map(|x| (x, big_in_red));
                let mut found = step(v, v_in_red, parent, equal_anc_out);
                if !found {
                    dom.push((v, v_in_red));
                    for &x in &big[idx..] {
                        let kx = keys[x];
                        if !key_def_dominates(kv, kx) {
                            break;
                        }
                        while let Some(&(top, _)) = dom.last() {
                            if key_def_dominates(keys[top], kx) {
                                break;
                            }
                            dom.pop();
                        }
                        let parent = dom.last().copied();
                        if step(x, big_in_red, parent, equal_anc_out) {
                            found = true;
                            break;
                        }
                        dom.push((x, big_in_red));
                    }
                }
                found
            } else {
                // Merged walk in ≺ order with a dominance stack. The walk
                // knows which list every value was popped from, so list
                // membership rides along on the stack instead of being
                // re-derived by a member-list scan per step (which was
                // quadratic in class size).
                let (mut ir, mut ib) = (0usize, 0usize);
                let mut interference_found = false;
                'walk: while ir < red.len() || ib < blue.len() {
                    let (current, current_in_red) = if ir == red.len() {
                        let v = blue[ib];
                        ib += 1;
                        (v, false)
                    } else if ib == blue.len() {
                        let v = red[ir];
                        ir += 1;
                        (v, true)
                    } else if keys[blue[ib]] < keys[red[ir]] {
                        let v = blue[ib];
                        ib += 1;
                        (v, false)
                    } else {
                        let v = red[ir];
                        ir += 1;
                        (v, true)
                    };

                    // Pop the stack until the top dominates `current`.
                    let kc = keys[current];
                    while let Some(&(top, _)) = dom.last() {
                        if key_def_dominates(keys[top], kc) {
                            break;
                        }
                        dom.pop();
                    }
                    let parent = dom.last().copied();
                    if step(current, current_in_red, parent, equal_anc_out) {
                        interference_found = true;
                        break 'walk;
                    }
                    dom.push((current, current_in_red));
                }
                interference_found
            }
        };
        equal_anc_out.dom = dom;
        self.queries += queries.get();
        interference_found
    }

    /// Batched interference test between the classes of `a` and `b` for the
    /// pairwise strategies: one merged walk of the two definition-ordered
    /// member lists with a dominance stack, testing each value against the
    /// *opposite-class* stack entries — its dominating ancestors — instead
    /// of issuing all `|X| × |Y|` pair queries.
    ///
    /// Verdict-identical to [`CongruenceClasses::interfere_quadratic`] with
    /// the same pair predicate: under every supported strategy two values
    /// can only interfere when one definition dominates the other (the
    /// intersection test returns `false` without dominance; value-based
    /// interference requires an intersection; Chaitin-style interference
    /// requires one value live at the other's definition, which in strict
    /// SSA implies its definition dominates that point; interference-graph
    /// edges are built from intersections). With the lists sorted by
    /// definition order, a value's dominating ancestors are exactly the
    /// stack contents when it is reached — a dominator is never popped
    /// before its dominated successors, by the pre-order interval property
    /// of the dominator tree — so every potentially interfering pair is
    /// tested exactly once, and pairs with no dominance relation are
    /// skipped *unqueried*. That skip is where the query reduction comes
    /// from. Values without a definition sort first, dominate nothing and
    /// are dominated by nothing, so they never pair up; they cannot
    /// interfere under any strategy.
    ///
    /// `pair_interferes` is always called as `(member of a's class, member
    /// of b's class)`, preserving the quadratic loop's orientation, and
    /// every call counts as one query. `skip_pair` (Sreedhar I's exemption
    /// of the candidate copy operands) is honoured without counting,
    /// exactly like the quadratic loop. Label conflicts are the caller's
    /// concern (as with the quadratic test the caller checks them first).
    /// The dominance stack is borrowed from `stack` — the same scratch the
    /// linear test uses — so repeated sweeps do not allocate. Dominance
    /// between walked values is decided from the cached definition keys
    /// ([`key_def_dominates`]), not by consulting the dominator tree per
    /// step.
    pub fn interfere_sweep(
        &mut self,
        a: Value,
        b: Value,
        skip_pair: Option<(Value, Value)>,
        pair_interferes: &mut dyn FnMut(Value, Value) -> bool,
        stack: &mut EqualAncOut,
    ) -> bool {
        let mut queries = 0u64;
        let mut dom: Vec<(Value, bool)> = std::mem::take(&mut stack.dom);
        dom.clear();
        let found = {
            let red = self.members(a);
            let blue = self.members(b);
            let keys = &self.keys;
            let (mut ir, mut ib) = (0usize, 0usize);
            let mut found = false;
            'walk: while ir < red.len() || ib < blue.len() {
                let (current, current_in_red) = if ir == red.len() {
                    let v = blue[ib];
                    ib += 1;
                    (v, false)
                } else if ib == blue.len() {
                    let v = red[ir];
                    ir += 1;
                    (v, true)
                } else if keys[blue[ib]] < keys[red[ir]] {
                    let v = blue[ib];
                    ib += 1;
                    (v, false)
                } else {
                    let v = red[ir];
                    ir += 1;
                    (v, true)
                };

                let kc = keys[current];
                while let Some(&(top, _)) = dom.last() {
                    if key_def_dominates(keys[top], kc) {
                        break;
                    }
                    dom.pop();
                }
                // Nearest ancestor first: an interference, if any, is most
                // likely with the closest dominator still live across
                // `current`, so testing top-down reaches the early exit with
                // fewer queries. The verdict is existential — the test order
                // cannot change it, only the count.
                for &(anc, anc_in_red) in dom.iter().rev() {
                    if anc_in_red == current_in_red {
                        continue;
                    }
                    let (x, y) = if current_in_red { (current, anc) } else { (anc, current) };
                    if let Some((p, q)) = skip_pair {
                        if (x == p && y == q) || (x == q && y == p) {
                            continue;
                        }
                    }
                    queries += 1;
                    if pair_interferes(x, y) {
                        found = true;
                        break 'walk;
                    }
                }
                dom.push((current, current_in_red));
            }
            found
        };
        stack.dom = dom;
        self.queries += queries;
        found
    }

    /// Number of distinct classes among the values of `universe`.
    pub fn num_classes(&self, universe: impl IntoIterator<Item = Value>) -> usize {
        let mut roots: Vec<Value> = universe.into_iter().map(|v| self.find(v)).collect();
        roots.sort();
        roots.dedup();
        roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{BinaryOp, ControlFlowGraph};
    use ossa_liveness::LivenessSets;

    struct Fixture {
        func: Function,
        domtree: DominatorTree,
        liveness: LivenessSets,
        info: LiveRangeInfo,
    }

    impl Fixture {
        fn new(func: Function) -> Self {
            let cfg = ControlFlowGraph::compute(&func);
            let domtree = DominatorTree::compute(&func, &cfg);
            let liveness = LivenessSets::compute(&func, &cfg);
            let info = LiveRangeInfo::compute(&func);
            Self { func, domtree, liveness, info }
        }

        fn intersect(&self) -> IntersectionTest<'_, LivenessSets> {
            IntersectionTest::new(&self.func, &self.domtree, &self.liveness, &self.info)
        }

        fn classes(&self) -> CongruenceClasses {
            CongruenceClasses::new(&self.func, &self.domtree, &self.info)
        }
    }

    fn copies_function() -> (Function, Vec<Value>) {
        let mut b = FunctionBuilder::new("copies", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let a = b.iconst(1);
        let b1 = b.copy(a);
        let c1 = b.copy(a);
        let other = b.iconst(5);
        let s = b.binary(BinaryOp::Add, a, b1);
        let t = b.binary(BinaryOp::Add, s, c1);
        let u = b.binary(BinaryOp::Add, t, other);
        b.ret(Some(u));
        (b.finish(), vec![a, b1, c1, other, s, t, u])
    }

    #[test]
    fn singleton_classes_and_merge() {
        let (f, vals) = copies_function();
        let fx = Fixture::new(f);
        let mut classes = fx.classes();
        let none = EqualAncOut::new();
        let [a, b1, c1, ..] = vals[..] else { panic!() };
        assert!(!classes.same_class(a, b1));
        assert_eq!(classes.members(a), &[a]);
        classes.merge(a, b1, &none);
        assert!(classes.same_class(a, b1));
        assert_eq!(classes.members(b1).len(), 2);
        // Member list stays sorted by definition order.
        assert_eq!(classes.members(a), &[a, b1]);
        classes.merge(c1, a, &none);
        assert_eq!(classes.members(a), &[a, b1, c1]);
        assert_eq!(classes.num_classes(vals.iter().copied()), vals.len() - 2);
    }

    #[test]
    fn quadratic_interference_with_and_without_values() {
        let (f, vals) = copies_function();
        let fx = Fixture::new(f);
        let values = ValueTable::of(&fx.func);
        let intersect = fx.intersect();
        let mut classes = fx.classes();
        let [a, b1, c1, ..] = vals[..] else { panic!() };
        // a and b1 intersect (a used later), so they interfere without
        // values, but have the same value, so they do not interfere with the
        // value-based definition.
        assert!(classes.interfere_quadratic(a, b1, &intersect, None));
        assert!(!classes.interfere_quadratic(a, b1, &intersect, Some(&values)));
        assert!(!classes.interfere_quadratic(a, c1, &intersect, Some(&values)));
        assert!(classes.queries() > 0);
    }

    #[test]
    fn linear_matches_quadratic_on_copy_webs() {
        let (f, vals) = copies_function();
        let fx = Fixture::new(f);
        let values = ValueTable::of(&fx.func);
        let intersect = fx.intersect();
        let [a, b1, c1, other, s, t, u] = vals[..] else { panic!() };
        let pairs = [(a, b1), (a, c1), (b1, c1), (a, other), (s, t), (t, u), (b1, other), (c1, s)];
        let mut scratch = EqualAncOut::new();
        for use_values in [false, true] {
            let table = use_values.then_some(&values);
            for &(x, y) in &pairs {
                let mut classes_q = fx.classes();
                let mut classes_l = fx.classes();
                let quad = classes_q.interfere_quadratic(x, y, &intersect, table);
                let lin = classes_l.interfere_linear(x, y, &intersect, table, &mut scratch);
                assert_eq!(quad, lin, "mismatch for ({x}, {y}) use_values={use_values}");
            }
        }
    }

    #[test]
    fn linear_matches_quadratic_after_merging_classes() {
        let (f, vals) = copies_function();
        let fx = Fixture::new(f);
        let values = ValueTable::of(&fx.func);
        let intersect = fx.intersect();
        let [a, b1, c1, other, s, ..] = vals[..] else { panic!() };
        // Merge {a, b1} and separately {c1, other}; then compare class tests.
        let mut classes_q = fx.classes();
        let mut classes_l = fx.classes();
        let none = EqualAncOut::new();
        for classes in [&mut classes_q, &mut classes_l] {
            classes.merge(a, b1, &none);
            classes.merge(c1, other, &none);
        }
        let mut scratch = EqualAncOut::new();
        let quad = classes_q.interfere_quadratic(a, c1, &intersect, Some(&values));
        let lin = classes_l.interfere_linear(a, c1, &intersect, Some(&values), &mut scratch);
        assert_eq!(quad, lin);
        // And for a pair that must interfere: s vs the {a,b1} class — s has a
        // different value and is live with a.
        let quad = classes_q.interfere_quadratic(s, a, &intersect, Some(&values));
        let lin = classes_l.interfere_linear(s, a, &intersect, Some(&values), &mut scratch);
        assert_eq!(quad, lin);
    }

    #[test]
    fn label_conflicts_force_interference() {
        let (mut f, vals) = copies_function();
        let [a, b1, ..] = vals[..] else { panic!() };
        f.pin_value(a, 0);
        f.pin_value(b1, 1);
        let fx = Fixture::new(f);
        let intersect = fx.intersect();
        let mut classes = fx.classes();
        assert!(classes.labels_conflict(a, b1));
        assert!(classes.interfere_quadratic(a, b1, &intersect, None));
        let mut scratch = EqualAncOut::new();
        assert!(classes.interfere_linear(a, b1, &intersect, None, &mut scratch));
        // Same register: no conflict from labels alone.
        assert!(!classes.labels_conflict(a, a));
    }

    #[test]
    fn merge_keeps_labels() {
        let (mut f, vals) = copies_function();
        let [a, b1, c1, ..] = vals[..] else { panic!() };
        f.pin_value(b1, 3);
        f.pin_value(c1, 4);
        let fx = Fixture::new(f);
        let mut classes = fx.classes();
        assert_eq!(classes.label(a), None);
        classes.merge(a, b1, &EqualAncOut::new());
        assert_eq!(classes.label(a), Some(3));
        // After the merge the {a, b1} class (label 3) conflicts with c1
        // (label 4).
        assert!(classes.labels_conflict(a, c1));
    }

    #[test]
    fn add_value_registers_new_singletons() {
        let (f, vals) = copies_function();
        let fx = Fixture::new(f);
        let mut f2 = fx.func.clone();
        let mut classes = fx.classes();
        let fresh = f2.new_value();
        classes.add_value(
            fresh,
            DefOrderKey {
                block_preorder: 0,
                pos: 99,
                value_index: fresh.index() as u32,
                block_postorder: 0,
            },
            Some(7),
        );
        assert_eq!(classes.members(fresh), &[fresh]);
        assert_eq!(classes.label(fresh), Some(7));
        assert!(!classes.same_class(fresh, vals[0]));
    }

    #[test]
    fn union_find_find_is_idempotent_and_compresses_paths() {
        let (f, vals) = copies_function();
        let fx = Fixture::new(f);
        let mut classes = fx.classes();
        let none = EqualAncOut::new();
        let [a, b1, c1, other, s, t, u] = vals[..] else { panic!() };
        // Build a chain of merges so non-trivial parent paths exist.
        classes.merge(a, b1, &none);
        classes.merge(c1, other, &none);
        classes.merge(a, c1, &none);
        classes.merge(s, t, &none);
        for &v in &[a, b1, c1, other, s, t, u] {
            let root = classes.find(v);
            // Idempotence: the root of a root is itself.
            assert_eq!(classes.find(root), root, "find not idempotent for {v}");
            assert_eq!(classes.find(v), root, "find not stable for {v}");
            // Path compression: after a find, the parent link (if any)
            // points directly at the root.
            if v != root {
                assert_eq!(
                    classes.parent.get(v).get(),
                    Some(root),
                    "path of {v} not compressed to its root {root}"
                );
            }
            // The canonical representative is a member of the class.
            assert!(classes.members(v).contains(&classes.representative(v)));
        }
        // The canonical representative is preserved across rank decisions:
        // `a`'s side named every merge above, so it stays the name.
        assert_eq!(classes.representative(other), a);
        assert_eq!(classes.representative(b1), a);
    }

    #[test]
    fn union_find_ranks_grow_monotonically_and_bound_children() {
        let (f, vals) = copies_function();
        let fx = Fixture::new(f);
        let mut classes = fx.classes();
        let none = EqualAncOut::new();
        let mut last_root_rank = 0u32;
        for window in vals.windows(2) {
            let [x, y] = window[..] else { panic!() };
            classes.merge(x, y, &none);
            let root = classes.find(x);
            let rank = classes.rank[root];
            // Root rank never decreases as the class grows.
            assert!(rank >= last_root_rank, "rank decreased: {rank} < {last_root_rank}");
            last_root_rank = rank;
        }
        // Every non-root has a strictly smaller rank than its parent (the
        // union-by-rank invariant).
        let root = classes.find(vals[0]);
        for &v in &vals {
            if v != root {
                let parent = classes.parent.get(v).get().expect("linked");
                assert!(
                    classes.rank[v] < classes.rank[parent],
                    "rank[{v}] = {} not below rank of parent {parent} = {}",
                    classes.rank[v],
                    classes.rank[parent],
                );
            }
        }
    }

    #[test]
    fn reset_classes_behave_like_freshly_constructed_ones() {
        // Recycle one CongruenceClasses across two rounds with merges in
        // between: after reset, every observable (roots, members, labels,
        // keys, interference answers) matches a fresh construction.
        let (mut f, vals) = copies_function();
        let [a, b1, c1, other, s, ..] = vals[..] else { panic!() };
        f.pin_value(c1, 2);
        let fx = Fixture::new(f);
        let intersect = fx.intersect();
        let values = ValueTable::of(&fx.func);
        let none = EqualAncOut::new();

        let mut recycled = fx.classes();
        // Dirty the state thoroughly.
        recycled.merge(a, b1, &none);
        recycled.merge(s, other, &none);
        recycled.merge_group(&vals);
        let _ = recycled.interfere_quadratic(a, s, &intersect, Some(&values));

        recycled.reset(&fx.func, &fx.domtree, &fx.info);
        let mut fresh = fx.classes();
        let mut scratch_a = EqualAncOut::new();
        let mut scratch_b = EqualAncOut::new();
        for &v in &vals {
            assert_eq!(recycled.find(v), fresh.find(v));
            assert_eq!(recycled.representative(v), fresh.representative(v));
            assert_eq!(recycled.members(v), fresh.members(v));
            assert_eq!(recycled.label(v), fresh.label(v));
            assert_eq!(recycled.key(v), fresh.key(v));
        }
        assert_eq!(recycled.queries(), 0);
        // Decisions after reset track a fresh instance exactly.
        for &(x, y) in &[(a, b1), (b1, c1), (a, s), (c1, other)] {
            assert_eq!(
                recycled.interfere_linear(x, y, &intersect, Some(&values), &mut scratch_a),
                fresh.interfere_linear(x, y, &intersect, Some(&values), &mut scratch_b),
                "linear mismatch for ({x}, {y})"
            );
            recycled.merge(x, y, &scratch_a);
            fresh.merge(x, y, &scratch_b);
            assert_eq!(recycled.members(x), fresh.members(x));
        }
    }

    #[test]
    fn pooled_merges_keep_member_lists_sorted_and_representatives_stable() {
        // The congruence-pool invariant: with member buffers cycling through
        // the free list (merges retire two lists and recycle one, resets
        // reclaim everything), every observable stays exactly as a fresh
        // instance computes it — member lists sorted by definition order
        // with no duplicates, `representative()` a stable member of the
        // class — across several rounds of interleaved merge/merge_group
        // calls on one recycled instance.
        let (f, vals) = copies_function();
        let fx = Fixture::new(f);
        let none = EqualAncOut::new();
        let mut recycled = fx.classes();
        let [a, b1, c1, other, s, t, u] = vals[..] else { panic!() };
        let rounds: [&[(Value, Value)]; 3] = [
            &[(a, b1), (c1, other), (a, c1), (s, t)],
            &[(u, t), (b1, other), (s, a)],
            &[(t, c1), (a, u)],
        ];
        for (round, merges) in rounds.iter().enumerate() {
            recycled.reset(&fx.func, &fx.domtree, &fx.info);
            let mut fresh = fx.classes();
            // Interleave a group merge so the pool sees both retirement
            // paths (pairwise merge and k-way group merge).
            recycled.merge_group(&[s, u]);
            fresh.merge_group(&[s, u]);
            for &(x, y) in merges.iter() {
                recycled.merge(x, y, &none);
                fresh.merge(x, y, &none);
                for &v in &vals {
                    let members = recycled.members(v);
                    assert_eq!(
                        members,
                        fresh.members(v),
                        "round {round}: pooled members of {v} diverged from fresh"
                    );
                    // Sorted by definition order, strictly (no duplicates):
                    // the keys embed the value index, so strict inequality
                    // is both orderedness and dedup.
                    for w in members.windows(2) {
                        assert!(
                            recycled.key(w[0]) < recycled.key(w[1]),
                            "round {round}: members of {v} not strictly def-ordered: {members:?}"
                        );
                    }
                    let rep = recycled.representative(v);
                    assert_eq!(rep, fresh.representative(v), "round {round}: representative");
                    assert!(members.contains(&rep), "round {round}: rep {rep} not a member");
                }
            }
        }
    }

    /// Builds a diamond CFG with copies on one arm, so classes mix values
    /// with and without dominance relations across blocks.
    fn diamond_function() -> (Function, Vec<Value>) {
        let mut b = FunctionBuilder::new("diamond", 1);
        let entry = b.create_block();
        let left = b.create_block();
        let right = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let x0 = b.iconst(7);
        b.branch(p, left, right);
        b.switch_to_block(left);
        let l1 = b.copy(x0);
        let l2 = b.binary(BinaryOp::Add, l1, x0);
        b.jump(join);
        b.switch_to_block(right);
        let r1 = b.iconst(9);
        let r2 = b.binary(BinaryOp::Add, r1, r1);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(left, l2), (right, r2)]);
        let u = b.binary(BinaryOp::Add, m, x0);
        b.ret(Some(u));
        (b.finish(), vec![p, x0, l1, l2, r1, r2, m, u])
    }

    /// The merge-sweep walk is verdict-identical to both the quadratic
    /// member loop and a brute-force all-pairs oracle, over many random
    /// two-class partitions of a multi-block function — including with the
    /// Sreedhar-I `skip_pair` exemption. Only the query count may differ
    /// (the sweep skips dominance-unrelated pairs unqueried).
    #[test]
    fn sweep_matches_quadratic_and_brute_force_on_random_partitions() {
        for fixture in [diamond_function(), copies_function()] {
            let (f, vals) = fixture;
            let fx = Fixture::new(f);
            let intersect = fx.intersect();
            let values = ValueTable::of(&fx.func);
            let mut state = 0x9e3779b97f4a7c15u64;
            let mut next = || {
                // xorshift64*: deterministic, no external PRNG dependency.
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545f4914f6cdd1d)
            };
            for round in 0..64 {
                let (mut group_a, mut group_b) = (Vec::new(), Vec::new());
                for &v in &vals {
                    match next() % 3 {
                        0 => group_a.push(v),
                        1 => group_b.push(v),
                        _ => {}
                    }
                }
                if group_a.is_empty() || group_b.is_empty() {
                    continue;
                }
                let mut classes = fx.classes();
                classes.merge_group(&group_a);
                classes.merge_group(&group_b);
                let (ra, rb) = (classes.find(group_a[0]), classes.find(group_b[0]));
                if ra == rb {
                    continue; // overlapping partition collapsed into one class
                }
                let skip = if next() % 2 == 0 {
                    Some((
                        group_a[next() as usize % group_a.len()],
                        group_b[next() as usize % group_b.len()],
                    ))
                } else {
                    None
                };
                let brute = classes.members(ra).iter().any(|&x| {
                    classes.members(rb).iter().any(|&y| {
                        if let Some((p, q)) = skip {
                            if (x == p && y == q) || (x == q && y == p) {
                                return false;
                            }
                        }
                        intersect.intersect(x, y) && !values.same_value(x, y)
                    })
                });
                let mut stack = EqualAncOut::new();
                let sweep = classes.interfere_sweep(
                    ra,
                    rb,
                    skip,
                    &mut |x, y| intersect.intersect(x, y) && !values.same_value(x, y),
                    &mut stack,
                );
                assert_eq!(
                    sweep, brute,
                    "round {round}: sweep diverged from brute force \
                     (A={group_a:?}, B={group_b:?}, skip={skip:?})"
                );
                if skip.is_none() {
                    let quadratic = classes.interfere_quadratic(ra, rb, &intersect, Some(&values));
                    assert_eq!(sweep, quadratic, "round {round}: sweep vs quadratic");
                }
            }
        }
    }

    #[test]
    fn equal_anc_out_scratch_resets_between_queries() {
        let mut scratch = EqualAncOut::new();
        let v = Value::from_index(3);
        scratch.set(v, Some(Value::from_index(1)));
        assert_eq!(scratch.get(v), Some(Value::from_index(1)));
        scratch.clear();
        assert_eq!(scratch.get(v), None);
    }
}
