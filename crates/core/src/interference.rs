//! Explicit interference graph stored as a half bit-matrix.
//!
//! The paper's baseline configurations (Sreedhar III, and `Us I`/`Us III`
//! without the `InterCheck` option) build an interference graph over the
//! φ-related and copy-related variables. The graph answers `interfere(a, b)`
//! in O(1) but its construction needs the liveness sets and its footprint is
//! quadratic — which is exactly what Figures 6 and 7 measure.

use ossa_ir::entity::Value;
use ossa_ir::{DominatorTree, Function};
use ossa_liveness::{BlockLiveness, IntersectionTest};

use crate::value::ValueTable;

/// Half bit-matrix interference graph over a restricted universe of values.
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    /// Dense index of each universe value (`usize::MAX` = not in universe).
    index_of: Vec<usize>,
    universe: Vec<Value>,
    bits: Vec<u8>,
}

impl InterferenceGraph {
    /// Builds the graph over `universe` using the intersection oracle and,
    /// optionally, value-based interference.
    ///
    /// Instead of querying all `n·(n-1)/2` pairs, the universe is sorted by
    /// definition point (dominator-tree pre-order, then position) and swept
    /// with a dominance stack — the paper's linear-intersection idea applied
    /// at build time. In SSA, two live ranges can only intersect when one
    /// definition dominates the other, and after the stack is popped down to
    /// the dominators of the current value it contains *exactly* the
    /// already-seen values whose definition dominates the current one
    /// (pre-order visits every dominator before the dominated value, and
    /// pre-order subtree ranges are contiguous, so a still-dominating entry
    /// is never popped early). Hence querying current-vs-stack covers every
    /// pair the quadratic loop would have found interfering; values with no
    /// definition never intersect anything and are skipped up front.
    pub fn build<L: BlockLiveness>(
        func: &Function,
        universe: &[Value],
        intersect: &IntersectionTest<'_, L>,
        values: Option<&ValueTable>,
    ) -> Self {
        let mut index_of = vec![usize::MAX; func.num_values()];
        for (i, &v) in universe.iter().enumerate() {
            index_of[v.index()] = i;
        }
        let n = universe.len();
        let bits = vec![0u8; Self::matrix_bytes(n)];
        let mut graph = Self { index_of, universe: universe.to_vec(), bits };

        let domtree = intersect.domtree();
        let info = intersect.info();
        // (pre-order of def block, block index, def position, value index)
        // sort key. The block index disambiguates unreachable blocks (which
        // all share pre-order `u32::MAX`) so that same-block values stay
        // adjacent — same-block definition points dominate by position even
        // when the block is unreachable, and the oracle calls such values
        // intersecting, so the sweep must visit them as one chain. The value
        // index tie-break keeps the sweep deterministic for values defined
        // by the same instruction (e.g. one parallel copy).
        let mut order: Vec<(u32, u32, u32, u32)> = Vec::with_capacity(n);
        for &v in universe {
            if let Some(def) = info.def(v) {
                order.push((
                    domtree.preorder_number(def.block),
                    def.block.index() as u32,
                    def.pos as u32,
                    v.index() as u32,
                ));
            }
        }
        order.sort_unstable();

        let mut stack: Vec<Value> = Vec::new();
        for &(_, _, _, raw) in &order {
            let current = Value::from_index(raw as usize);
            while let Some(&top) = stack.last() {
                if intersect.def_dominates(top, current) {
                    break;
                }
                stack.pop();
            }
            for &above in &stack {
                let interferes = intersect.intersect(above, current)
                    && values.is_none_or(|table| !table.same_value(above, current));
                if interferes {
                    graph.set(graph.index_of[above.index()], graph.index_of[current.index()]);
                }
            }
            stack.push(current);
        }
        graph
    }

    fn matrix_bytes(n: usize) -> usize {
        (n * (n + 1) / 2).div_ceil(8)
    }

    fn bit_index(i: usize, j: usize) -> usize {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        hi * (hi + 1) / 2 + lo
    }

    fn set(&mut self, i: usize, j: usize) {
        let bit = Self::bit_index(i, j);
        self.bits[bit / 8] |= 1 << (bit % 8);
    }

    fn get(&self, i: usize, j: usize) -> bool {
        let bit = Self::bit_index(i, j);
        self.bits[bit / 8] & (1 << (bit % 8)) != 0
    }

    /// Returns `true` if `a` and `b` interfere. Values outside the universe
    /// never interfere according to the graph.
    pub fn interfere(&self, a: Value, b: Value) -> bool {
        if a == b {
            return false;
        }
        let (ia, ib) = (self.index_of[a.index()], self.index_of[b.index()]);
        if ia == usize::MAX || ib == usize::MAX {
            return false;
        }
        self.get(ia, ib)
    }

    /// Returns `true` if `value` belongs to the graph's universe.
    pub fn contains(&self, value: Value) -> bool {
        value.index() < self.index_of.len() && self.index_of[value.index()] != usize::MAX
    }

    /// Number of values in the universe.
    pub fn num_values(&self) -> usize {
        self.universe.len()
    }

    /// Heap bytes used by the bit matrix (the "Measured" interference-graph
    /// footprint of Figure 7).
    pub fn footprint_bytes(&self) -> usize {
        self.bits.capacity() + self.index_of.capacity() * std::mem::size_of::<usize>()
    }

    /// Bytes of the bit matrix alone, matching the paper's "Evaluated"
    /// formula `⌈V/8⌉ × V / 2`.
    pub fn evaluated_bytes(&self) -> usize {
        ossa_liveness::footprint::interference_bit_matrix_bytes(self.universe.len())
    }
}

/// Collects the universe the paper restricts liveness/interference
/// information to: values that appear in φ-functions or copies (sequential
/// or parallel), i.e. the values the coalescer may actually merge.
pub fn copy_related_universe(func: &Function) -> Vec<Value> {
    let mut universe = Vec::new();
    let mut seen = ossa_ir::EntitySet::new();
    let mut scratch = Vec::new();
    copy_related_universe_into(func, &mut universe, &mut seen, &mut scratch);
    universe
}

/// Like [`copy_related_universe`], collecting into recycled buffers: the
/// output vector, the dedup bit-set and the def/use scratch keep their
/// storage across functions when threaded through a corpus driver's
/// scratch.
pub fn copy_related_universe_into(
    func: &Function,
    universe: &mut Vec<Value>,
    seen: &mut ossa_ir::EntitySet<Value>,
    scratch: &mut Vec<Value>,
) {
    universe.clear();
    seen.reset();
    for block in func.blocks() {
        for &inst in func.block_insts(block) {
            let data = func.inst(inst);
            if data.is_phi() || data.is_copy_like() {
                scratch.clear();
                data.collect_defs(func.pools(), scratch);
                data.collect_uses(func.pools(), scratch);
                for &v in scratch.iter() {
                    if seen.insert(v) {
                        universe.push(v);
                    }
                }
            }
        }
    }
    // Pinned values are also copy-related (they get isolated by copies).
    for v in func.values() {
        if func.pinned_reg(v).is_some() && seen.insert(v) {
            universe.push(v);
        }
    }
}

/// Pipeline variant of [`copy_related_universe_into`] that fuses the other
/// two instruction scans of the decision phase into the same pass over the
/// function: the pre-existing plain copies (affinity candidates) and the
/// positions of the parallel copies (copy-sharing sites), both in
/// block/instruction order — the order the separate scans produced.
pub fn copy_related_universe_and_sites_into(
    func: &Function,
    universe: &mut Vec<Value>,
    seen: &mut ossa_ir::EntitySet<Value>,
    scratch: &mut Vec<Value>,
    plain_copies: &mut Vec<crate::insertion::InsertedMove>,
    parallel_sites: &mut Vec<(ossa_ir::Block, u32, ossa_ir::Inst)>,
) {
    universe.clear();
    seen.reset();
    plain_copies.clear();
    parallel_sites.clear();
    for block in func.blocks() {
        for (pos, &inst) in func.block_insts(block).iter().enumerate() {
            let data = func.inst(inst);
            match data {
                ossa_ir::InstData::Copy { dst, src } => {
                    plain_copies.push(crate::insertion::InsertedMove {
                        dst: *dst,
                        src: *src,
                        block,
                    });
                }
                ossa_ir::InstData::ParallelCopy { .. } => {
                    parallel_sites.push((block, pos as u32, inst));
                }
                _ => {}
            }
            if data.is_phi() || data.is_copy_like() {
                scratch.clear();
                data.collect_defs(func.pools(), scratch);
                data.collect_uses(func.pools(), scratch);
                for &v in scratch.iter() {
                    if seen.insert(v) {
                        universe.push(v);
                    }
                }
            }
        }
    }
    for v in func.values() {
        if func.pinned_reg(v).is_some() && seen.insert(v) {
            universe.push(v);
        }
    }
}

/// Helper bundling the dominator tree needed to build an
/// [`InterferenceGraph`] from scratch for a function.
pub fn build_graph_with_sets(
    func: &Function,
    domtree: &DominatorTree,
    liveness: &ossa_liveness::LivenessSets,
    info: &ossa_liveness::LiveRangeInfo,
    values: Option<&ValueTable>,
) -> InterferenceGraph {
    let universe = copy_related_universe(func);
    let intersect = IntersectionTest::new(func, domtree, liveness, info);
    InterferenceGraph::build(func, &universe, &intersect, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{BinaryOp, ControlFlowGraph};
    use ossa_liveness::{LiveRangeInfo, LivenessSets};

    fn analyses(func: &Function) -> (ControlFlowGraph, DominatorTree, LivenessSets, LiveRangeInfo) {
        let cfg = ControlFlowGraph::compute(func);
        let domtree = DominatorTree::compute(func, &cfg);
        let liveness = LivenessSets::compute(func, &cfg);
        let info = LiveRangeInfo::compute(func);
        (cfg, domtree, liveness, info)
    }

    #[test]
    fn graph_matches_pairwise_oracle() {
        let mut b = FunctionBuilder::new("graph", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let a = b.copy(x);
        let c = b.copy(a);
        let s = b.binary(BinaryOp::Add, a, c);
        let t = b.binary(BinaryOp::Add, s, x);
        b.ret(Some(t));
        let f = b.finish();
        let (_, domtree, liveness, info) = analyses(&f);
        let intersect = IntersectionTest::new(&f, &domtree, &liveness, &info);
        let values = ValueTable::of(&f);
        let universe: Vec<Value> = f.values().collect();
        for table in [None, Some(&values)] {
            let graph = InterferenceGraph::build(&f, &universe, &intersect, table);
            for &p in &universe {
                for &q in &universe {
                    if p == q {
                        continue;
                    }
                    let expected =
                        intersect.intersect(p, q) && table.is_none_or(|t| !t.same_value(p, q));
                    assert_eq!(graph.interfere(p, q), expected, "pair ({p}, {q})");
                    assert_eq!(graph.interfere(p, q), graph.interfere(q, p));
                }
            }
        }
    }

    #[test]
    fn universe_is_restricted_to_phi_and_copy_values() {
        let mut b = FunctionBuilder::new("universe", 1);
        let entry = b.create_block();
        let left = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let plain = b.binary(BinaryOp::Add, p, p);
        let copied = b.copy(plain);
        b.branch(p, left, join);
        b.switch_to_block(left);
        let c2 = b.iconst(2);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(entry, copied), (left, c2)]);
        b.ret(Some(m));
        let f = b.finish();
        let universe = copy_related_universe(&f);
        assert!(universe.contains(&copied));
        assert!(universe.contains(&m));
        assert!(universe.contains(&c2));
        assert!(universe.contains(&plain)); // source of a copy
        assert!(!universe.contains(&p)); // never copy- or φ-related
    }

    #[test]
    fn footprint_matches_formula_shape() {
        let mut b = FunctionBuilder::new("fp", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.iconst(1);
        let y = b.copy(x);
        let z = b.copy(y);
        let s = b.binary(BinaryOp::Add, z, y);
        b.ret(Some(s));
        let f = b.finish();
        let (_, domtree, liveness, info) = analyses(&f);
        let graph = build_graph_with_sets(&f, &domtree, &liveness, &info, None);
        assert!(graph.num_values() >= 3);
        assert!(graph.footprint_bytes() >= graph.evaluated_bytes());
    }

    #[test]
    fn values_outside_universe_never_interfere() {
        let mut b = FunctionBuilder::new("outside", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.iconst(1);
        let y = b.copy(x);
        b.ret(Some(y));
        let f = b.finish();
        let (_, domtree, liveness, info) = analyses(&f);
        let intersect = IntersectionTest::new(&f, &domtree, &liveness, &info);
        let graph = InterferenceGraph::build(&f, &[x], &intersect, None);
        assert!(graph.contains(x));
        assert!(!graph.contains(y));
        assert!(!graph.interfere(x, y));
    }
}
