//! The out-of-SSA translation driver: aggressive coalescing of φ-related and
//! constraint-related copies on top of congruence classes.
//!
//! The driver implements every variant compared in the paper's evaluation:
//!
//! * **interference strategies** (Figure 5): [`Strategy::Intersect`],
//!   [`Strategy::SreedharI`], [`Strategy::Chaitin`], [`Strategy::Value`];
//! * **φ processing**: eager (all copies inserted first, Method I style —
//!   the paper's `Us I`) or virtualized (φ-functions handled one at a time,
//!   testing each argument against the φ-node before committing its copy —
//!   the paper's Method III / `Us III` behaviour, which also provides the
//!   "independent set" refinement of the `Value + IS` variant);
//! * **copy sharing** (Section III-B);
//! * **interference information**: explicit bit-matrix graph, intersection
//!   checks over liveness sets (`InterCheck`), or intersection checks over
//!   the fast liveness checker (`InterCheck + LiveCheck`);
//! * **class interference checks**: quadratic or linear (Section IV-B).
//!
//! Analyses are obtained through a shared [`FunctionAnalyses`] cache:
//! [`translate_out_of_ssa_cached`] reuses whatever the caller already
//! computed and invalidates exactly what each phase clobbers, which is what
//! makes the translation cheap enough for a JIT (the paper's Figure 6
//! argument). [`translate_out_of_ssa`] is the convenience entry point that
//! owns a fresh cache.

use std::cell::Cell;
use std::time::Instant;

use ossa_ir::entity::{Block, Inst, SecondaryMap, Value};
use ossa_ir::{DominatorTree, Function, InstData};
use ossa_liveness::{footprint, BlockLiveness, FunctionAnalyses, IntersectionTest};

use crate::congruence::{CongruenceClasses, EqualAncOut};
use crate::insertion::{
    insert_phi_copies_into, isolate_pinned_values, reserve_translation_growth, CopyInsertion,
    InsertedMove,
};
use crate::interference::{copy_related_universe_and_sites_into, InterferenceGraph};
use crate::parallel_copy::{sequentialize_function_with, SeqScratch};
use crate::value::ValueTable;

/// Reusable scratch buffers for repeated translations: the per-parallel-copy
/// sequentialization state, the linear-check ancestor map, the congruence
/// classes, the copy-insertion result, the decision-phase temporaries and
/// the snapshot maps. A corpus driver constructs one per worker and threads
/// it through every function, so the per-copy windmill loop performs no
/// hashing and the whole decision phase reuses its dense storage across
/// functions instead of reallocating it — in steady state the coalesce
/// phase performs (almost) no heap allocation.
#[derive(Debug, Default)]
pub struct TranslateScratch {
    /// Sequentialization scratch (Algorithm 1 state).
    seq: SeqScratch,
    /// `equal_anc_out` scratch of the linear class-interference check.
    equal_anc: EqualAncOut,
    /// Congruence-class storage, [`CongruenceClasses::reset`] per function.
    classes: CongruenceClasses,
    /// Decision-phase output: the class snapshot maps, value table and
    /// sharing bookkeeping, recycled across functions.
    decisions: Decisions,
    /// Parallel-copy destination locations of the virtualized processing.
    move_location: SecondaryMap<Value, Option<(Block, usize)>>,
    /// Copy-insertion result and working storage (webs, moves, caches).
    insertion: CopyInsertion,
    /// The copy-related universe, its dedup set and def/use scratch.
    universe: Vec<Value>,
    universe_seen: ossa_ir::EntitySet<Value>,
    universe_tmp: Vec<Value>,
    /// Pre-existing plain copies, collected by the fused universe scan.
    plain_copies: Vec<InsertedMove>,
    /// Parallel-copy sites `(block, position, inst)` of the fused scan.
    parallel_sites: Vec<(Block, u32, Inst)>,
    /// `(register, value)` pairs of the pinned pre-coalescing scan.
    pinned: Vec<(u32, Value)>,
    /// One register group of pinned values, handed to `merge_group`.
    group: Vec<Value>,
    /// The affinity work list (φ moves, pinned-isolation moves, copies).
    affinities: Vec<InsertedMove>,
    /// Weight-ordered argument moves of one φ-web (virtualized processing).
    arg_moves: Vec<InsertedMove>,
    /// Destinations of φ-related moves, for the affinity filter.
    phi_move_dsts: ossa_ir::EntitySet<Value>,
    /// Sharing rule: `(value representative, universe index)` pairs.
    grouped: Vec<(Value, u32)>,
    /// Sharing rule: per-representative range into `grouped`.
    range_of: SecondaryMap<Value, (u32, u32)>,
    /// Deduplicated parallel-copy entries of the rewrite phase.
    kept: Vec<KeptCopy>,
    /// The surviving pairs written back into the parallel-copy pool.
    kept_pairs: Vec<ossa_ir::CopyPair>,
    /// Stable merge-sort buffer of the affinity orderings (replaces the std
    /// stable sort's internal allocation — the last steady-state allocation
    /// of the decision phase).
    sort_buf: Vec<InsertedMove>,
    /// Memoized positive class-interference verdicts, re-armed per function.
    verdicts: VerdictCache,
}

impl TranslateScratch {
    /// Creates empty scratch buffers; they grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Memoized `true` verdicts of [`classes_interfere`], keyed on the two class
/// roots and their merge versions ([`CongruenceClasses::class_version`]).
///
/// Only *positive* verdicts are stored. Classes only ever grow, and both
/// ingredients of a positive verdict are monotone under growth: an
/// interfering member pair is still present in any later superset of the
/// classes, and labels only transition from unpinned to pinned (a merge
/// never combines two distinct labels — such classes always interfere). So a
/// recorded "interferes" can never be invalidated by later merges, while a
/// "does not interfere" verdict is immediately consumed by a merge that
/// destroys one of the keyed classes (and, on the linear path, comes with
/// `equal_anc_out` chains the merge needs — a cache hit could not supply
/// them). The version half of the key makes hits exact regardless: a lookup
/// only matches while *neither* side's class has changed since the verdict
/// was computed, which is the ISSUE's invalidation contract.
///
/// The table is open-addressed (FNV-1a over the packed key, linear probing,
/// ≤50% load) with generation-stamped slots: [`VerdictCache::begin_round`]
/// re-arms the whole table in O(1) per function instead of zeroing it.
#[derive(Debug, Default)]
struct VerdictCache {
    /// `(packed low key, packed high key, generation)` per slot; a slot is
    /// empty for the current round unless its stamp matches `generation`.
    slots: Vec<(u64, u64, u32)>,
    generation: u32,
    /// Entries stored in the current round, for the load-factor check.
    live: usize,
}

/// Normalized key of one class pair: `(root, version)` of both sides, the
/// lower root index first (interference is symmetric).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct VerdictKey(u64, u64);

impl VerdictKey {
    fn new(ra: Value, va: u32, rb: Value, vb: u32) -> Self {
        let a = ((ra.index() as u64) << 32) | va as u64;
        let b = ((rb.index() as u64) << 32) | vb as u64;
        if a <= b {
            Self(a, b)
        } else {
            Self(b, a)
        }
    }

    fn hash(self) -> u64 {
        // FNV-1a over the 16 key bytes.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [self.0, self.1] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

impl VerdictCache {
    /// Re-arms the cache for the next `decide()` round without touching the
    /// slots: bumping the generation makes every existing entry stale.
    fn begin_round(&mut self) {
        self.live = 0;
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // The stamp wrapped around: entries from 2³² rounds ago would
            // alias the new generation, so flush the slots for real.
            for slot in &mut self.slots {
                *slot = (0, 0, 0);
            }
            self.generation = 1;
        }
    }

    /// Returns `true` if a positive verdict is recorded for `key`.
    fn contains(&self, key: VerdictKey) -> bool {
        if self.live == 0 {
            return false;
        }
        let mask = self.slots.len() - 1;
        let mut i = key.hash() as usize & mask;
        loop {
            let (lo, hi, stamp) = self.slots[i];
            if stamp != self.generation {
                return false;
            }
            if (lo, hi) == (key.0, key.1) {
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    /// Records a positive verdict for `key`.
    fn insert(&mut self, key: VerdictKey) {
        if self.slots.is_empty() {
            self.slots.resize(256, (0, 0, 0));
            if self.generation == 0 {
                self.generation = 1;
            }
        } else if (self.live + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = key.hash() as usize & mask;
        loop {
            let (lo, hi, stamp) = self.slots[i];
            if stamp != self.generation {
                self.slots[i] = (key.0, key.1, self.generation);
                self.live += 1;
                return;
            }
            if (lo, hi) == (key.0, key.1) {
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles the table, re-inserting the current round's entries.
    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![(0, 0, 0); doubled]);
        let mask = self.slots.len() - 1;
        for (lo, hi, stamp) in old {
            if stamp != self.generation {
                continue;
            }
            let mut i = VerdictKey(lo, hi).hash() as usize & mask;
            while self.slots[i].2 == self.generation {
                i = (i + 1) & mask;
            }
            self.slots[i] = (lo, hi, self.generation);
        }
    }
}

/// Sub-stages of the coalesce phase, reported through the profiling probe
/// installed by [`set_coalesce_probe`]. Each probe call marks the *start* of
/// the named sub-stage for the function being translated;
/// [`CoalesceStage::Done`] closes the last one. The `alloc_profile` bench
/// bin uses this to split the phase's allocation count by sub-stage.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CoalesceStage {
    /// Universe construction, value numbering, class reset, pinned groups.
    Setup,
    /// Building and weight-ordering the affinity work list (φ webs; in
    /// virtualized mode this sub-stage includes the per-φ decisions).
    AffinityBuild,
    /// The interference-test + merge loop over the global affinity list.
    Decide,
    /// The copy-sharing post-optimization (Section III-B).
    Sharing,
    /// Snapshotting the classes into the rewrite maps.
    Snapshot,
    /// Applying the decisions to the function.
    Rewrite,
    /// End marker: the coalesce phase of one function is complete.
    Done,
}

thread_local! {
    static COALESCE_PROBE: Cell<Option<fn(CoalesceStage)>> = const { Cell::new(None) };
}

/// Installs (or, with `None`, removes) a per-thread coalesce sub-stage
/// probe. Profiling instrumentation only: the translation invokes the probe
/// at sub-stage boundaries and never otherwise changes behaviour.
pub fn set_coalesce_probe(probe: Option<fn(CoalesceStage)>) {
    COALESCE_PROBE.with(|p| p.set(probe));
}

#[inline]
fn coalesce_probe(stage: CoalesceStage) {
    COALESCE_PROBE.with(|p| {
        if let Some(probe) = p.get() {
            probe(stage);
        }
    });
}

/// Interference definition used when deciding whether two congruence classes
/// may be coalesced (the Figure 5 variants).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Plain live-range intersection.
    Intersect,
    /// Sreedhar et al. SSA-based coalescing: intersection, except that the
    /// two operands of the candidate copy themselves are not checked.
    SreedharI,
    /// Chaitin's conservative test: live at the other's definition and that
    /// definition is not a copy between the two.
    Chaitin,
    /// The paper's value-based interference: intersection *and* different
    /// value.
    Value,
}

/// How φ-related copies are processed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PhiProcessing {
    /// All copies are inserted first (Method I), then coalesced globally by
    /// decreasing weight — the paper's `Us I`.
    Eager,
    /// φ-functions are processed one at a time; each argument is tested
    /// against the φ-node built so far and its copy is only kept when the
    /// test fails — the paper's Method III / `Us III` behaviour (and the
    /// "independent set" refinement of `Value + IS`).
    Virtualized,
}

/// How interference information is obtained.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InterferenceMode {
    /// Build an explicit bit-matrix interference graph (plus liveness sets).
    Graph,
    /// No interference graph: intersection checks against liveness sets
    /// (the paper's `InterCheck`).
    InterCheck,
    /// No interference graph and no liveness sets: intersection checks on
    /// top of the fast liveness checker (the paper's `InterCheck +
    /// LiveCheck`).
    InterCheckLiveCheck,
}

/// How interference between two congruence classes is checked.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ClassCheck {
    /// Pairwise semantics over the two member lists (the reference
    /// [`CongruenceClasses::interfere_quadratic`] definition), executed as a
    /// batched dominance-stack merge-sweep
    /// ([`CongruenceClasses::interfere_sweep`]): verdict-identical to the
    /// all-pairs loop, but pairs with no dominance relation — which cannot
    /// interfere under any strategy — are skipped without a query.
    Quadratic,
    /// The paper's linear merged-walk over the dominance-ordered member
    /// lists (only used with the `Intersect` and `Value` strategies; other
    /// strategies need pair-specific exceptions and fall back to the
    /// quadratic check).
    Linear,
}

/// Options of one out-of-SSA translation run.
#[derive(Clone, Debug)]
pub struct OutOfSsaOptions {
    /// Interference definition for coalescing decisions.
    pub strategy: Strategy,
    /// φ-copy processing order.
    pub phi_processing: PhiProcessing,
    /// Enable the copy-sharing post-optimization (Section III-B).
    pub sharing: bool,
    /// Interference information backend.
    pub interference: InterferenceMode,
    /// Class-to-class interference check.
    pub class_check: ClassCheck,
    /// Weigh copies by statically estimated block frequencies.
    pub weighted: bool,
    /// Sequentialize the remaining parallel copies at the end.
    pub sequentialize: bool,
    /// Early-exit threshold of the profitability-ordered affinity loop. The
    /// global affinity list is processed in decreasing block-frequency
    /// order, so once the weight of the next affinity drops below this
    /// value the entire remaining cold tail is abandoned without
    /// interference tests — everything skipped is at most this profitable.
    /// `0.0` (the default) keeps every affinity and is bit-identical to the
    /// exhaustive loop. Raising it trades static copies in cold blocks for
    /// decision time; the Figure 5 evaluation found no positive threshold
    /// that is equal-or-better on every variant (skipping an affinity can
    /// only leave more copies), so the knob ships disabled by default.
    pub abort_threshold: f64,
}

impl Default for OutOfSsaOptions {
    fn default() -> Self {
        Self {
            strategy: Strategy::Value,
            phi_processing: PhiProcessing::Eager,
            sharing: true,
            interference: InterferenceMode::InterCheckLiveCheck,
            class_check: ClassCheck::Linear,
            weighted: true,
            sequentialize: true,
            abort_threshold: 0.0,
        }
    }
}

impl OutOfSsaOptions {
    /// Figure 5 variant `Intersect`.
    pub fn intersect() -> Self {
        Self {
            strategy: Strategy::Intersect,
            sharing: false,
            class_check: ClassCheck::Quadratic,
            ..Self::default()
        }
    }
    /// Figure 5 variant `Sreedhar I`.
    pub fn sreedhar_i() -> Self {
        Self {
            strategy: Strategy::SreedharI,
            sharing: false,
            class_check: ClassCheck::Quadratic,
            ..Self::default()
        }
    }
    /// Figure 5 variant `Chaitin`.
    pub fn chaitin() -> Self {
        Self {
            strategy: Strategy::Chaitin,
            sharing: false,
            class_check: ClassCheck::Quadratic,
            ..Self::default()
        }
    }
    /// Figure 5 variant `Value`.
    pub fn value() -> Self {
        Self { strategy: Strategy::Value, sharing: false, ..Self::default() }
    }
    /// Figure 5 variant `Sreedhar III` (virtualized processing, Sreedhar's
    /// SSA-based interference rule, interference graph and liveness sets as
    /// in the original method).
    pub fn sreedhar_iii() -> Self {
        Self {
            strategy: Strategy::SreedharI,
            phi_processing: PhiProcessing::Virtualized,
            sharing: false,
            interference: InterferenceMode::Graph,
            class_check: ClassCheck::Quadratic,
            ..Self::default()
        }
    }
    /// Figure 5 variant `Value + IS`.
    pub fn value_is() -> Self {
        Self {
            strategy: Strategy::Value,
            phi_processing: PhiProcessing::Virtualized,
            sharing: false,
            ..Self::default()
        }
    }
    /// Figure 5 variant `Sharing` (`Value + IS` plus copy sharing).
    pub fn sharing() -> Self {
        Self {
            strategy: Strategy::Value,
            phi_processing: PhiProcessing::Virtualized,
            sharing: true,
            ..Self::default()
        }
    }

    /// The seven Figure 5 coalescing variants, in the paper's order — the
    /// single source of truth shared by the bench harness and the oracle
    /// test suites, so a variant added here cannot silently miss coverage.
    pub fn figure5_variants() -> [(&'static str, OutOfSsaOptions); 7] {
        [
            ("Intersect", Self::intersect()),
            ("Sreedhar I", Self::sreedhar_i()),
            ("Chaitin", Self::chaitin()),
            ("Value", Self::value()),
            ("Sreedhar III", Self::sreedhar_iii()),
            ("Value + IS", Self::value_is()),
            ("Sharing", Self::sharing()),
        ]
    }

    /// Figure 6 engine `Us I` with the default (graph + liveness sets)
    /// backend; combine with [`OutOfSsaOptions::with_interference`] and
    /// [`OutOfSsaOptions::with_class_check`] for the other configurations.
    pub fn us_i() -> Self {
        Self {
            strategy: Strategy::Value,
            phi_processing: PhiProcessing::Eager,
            sharing: false,
            interference: InterferenceMode::Graph,
            class_check: ClassCheck::Quadratic,
            ..Self::default()
        }
    }
    /// Figure 6 engine `Us III` (virtualized) with the default backend.
    pub fn us_iii() -> Self {
        Self { phi_processing: PhiProcessing::Virtualized, ..Self::us_i() }
    }

    /// Sets the interference backend.
    pub fn with_interference(mut self, mode: InterferenceMode) -> Self {
        self.interference = mode;
        self
    }
    /// Sets the class-interference check.
    pub fn with_class_check(mut self, check: ClassCheck) -> Self {
        self.class_check = check;
        self
    }
    /// Enables or disables sequentialization of the final parallel copies.
    pub fn with_sequentialize(mut self, sequentialize: bool) -> Self {
        self.sequentialize = sequentialize;
        self
    }
    /// Sets the cold-tail abort threshold of the affinity loop (see
    /// [`OutOfSsaOptions::abort_threshold`]).
    pub fn with_abort_threshold(mut self, threshold: f64) -> Self {
        self.abort_threshold = threshold;
        self
    }

    /// The conservative configuration the recovery ladder retries failed
    /// functions on: the coalescing-minimal `Intersect` variant on the
    /// sets-based [`InterferenceMode::InterCheck`] backend with the
    /// quadratic class check — the simplest, most battle-tested path
    /// through the engine, avoiding the fast liveness checker, the value
    /// table, copy sharing and the cold-tail abort. Sequentialization and
    /// weighting are preserved from `self` so the retry produces output of
    /// the shape the caller asked for.
    pub fn conservative_fallback(&self) -> Self {
        Self {
            strategy: Strategy::Intersect,
            phi_processing: PhiProcessing::Eager,
            sharing: false,
            interference: InterferenceMode::InterCheck,
            class_check: ClassCheck::Quadratic,
            weighted: self.weighted,
            sequentialize: self.sequentialize,
            abort_threshold: 0.0,
        }
    }

    /// The last rung of the service degradation ladder: the
    /// [`OutOfSsaOptions::conservative_fallback`] configuration with the
    /// cold-tail abort threshold set to `+inf`, so *every* affinity is
    /// abandoned — no coalescing beyond the mandatory φ-isolation, the
    /// least work the translation can do while still emitting correct
    /// (copy-heavy) output. Used when a shedding service values latency
    /// over copy quality.
    pub fn minimal_coalescing(&self) -> Self {
        Self { abort_threshold: f64::INFINITY, ..self.conservative_fallback() }
    }
}

/// Memory accounting of one run (Figure 7).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Measured bytes of the interference graph (0 when not built).
    pub interference_graph_bytes: usize,
    /// Evaluated bytes of the interference graph bit-matrix formula.
    pub interference_graph_evaluated: usize,
    /// Evaluated bytes of liveness sets stored as ordered sets (0 when the
    /// fast liveness checker is used instead).
    pub liveness_ordered_bytes: usize,
    /// Evaluated bytes of liveness sets stored as bit-sets.
    pub liveness_bitset_bytes: usize,
    /// Measured bytes of the fast liveness checking structures (0 when
    /// liveness sets are used instead).
    pub livecheck_bytes: usize,
    /// Evaluated bytes of the fast liveness checking structures.
    pub livecheck_evaluated: usize,
    /// Size of the restricted variable universe.
    pub universe_size: usize,
    /// Number of basic blocks.
    pub num_blocks: usize,
}

impl MemoryStats {
    /// Total measured footprint (graph + liveness or liveness-check bytes).
    pub fn total_bytes(&self) -> usize {
        self.interference_graph_bytes + self.liveness_ordered_bytes + self.livecheck_bytes
    }

    /// Adds the counters of `other` to `self` (corpus aggregation).
    pub fn absorb(&mut self, other: &MemoryStats) {
        self.interference_graph_bytes += other.interference_graph_bytes;
        self.interference_graph_evaluated += other.interference_graph_evaluated;
        self.liveness_ordered_bytes += other.liveness_ordered_bytes;
        self.liveness_bitset_bytes += other.liveness_bitset_bytes;
        self.livecheck_bytes += other.livecheck_bytes;
        self.livecheck_evaluated += other.livecheck_evaluated;
        self.universe_size += other.universe_size;
        self.num_blocks += other.num_blocks;
    }
}

/// Wall-clock seconds spent in each phase of one translation (or, after
/// [`OutOfSsaStats::absorb`], summed over a corpus). Timing is measurement,
/// not behaviour: it is deliberately ignored by the `PartialEq` of
/// [`OutOfSsaStats`], which the serial/parallel parity tests rely on.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseSeconds {
    /// Computing the analyses the decision phase consumes: CFG, dominators,
    /// the liveness backend (sets or fast checker) and the def/use index.
    pub liveness: f64,
    /// Coalescing decisions (value table, interference queries, classes)
    /// plus the rewrite applying them.
    pub coalesce: f64,
    /// Sequentialization of the remaining parallel copies.
    pub sequentialize: f64,
}

impl PhaseSeconds {
    /// Adds the phase times of `other` to `self`.
    pub fn absorb(&mut self, other: &PhaseSeconds) {
        self.liveness += other.liveness;
        self.coalesce += other.coalesce;
        self.sequentialize += other.sequentialize;
    }
}

/// Statistics of one out-of-SSA translation.
#[derive(Clone, Debug, Default)]
pub struct OutOfSsaStats {
    /// φ-functions eliminated.
    pub phis_removed: usize,
    /// Moves inserted by copy insertion (φ-related and pinned-related).
    pub moves_inserted: usize,
    /// Moves removed by coalescing (including sharing).
    pub moves_coalesced: usize,
    /// Copies remaining in the final code (after sequentialization when
    /// enabled).
    pub remaining_copies: usize,
    /// Frequency-weighted remaining copies.
    pub remaining_weighted: f64,
    /// Edges split because of terminator-defined φ arguments.
    pub edges_split: usize,
    /// Variable-to-variable interference queries performed.
    pub interference_queries: u64,
    /// Graceful-degradation marker: 1 when the function's CFG is irreducible
    /// and the requested [`InterferenceMode::InterCheckLiveCheck`] backend
    /// (whose fast checker is only sound on reducible CFGs) was replaced by
    /// the data-flow [`ossa_liveness::LivenessSets`] for this function; 0
    /// otherwise.
    /// Corpus aggregation sums it into a fallback count.
    pub liveness_fallbacks: usize,
    /// Validation failures observed while translating this function: 0 on a
    /// clean run, and with a recovery policy the number of attempts whose
    /// output the validator rejected before one succeeded.
    pub validation_failures: usize,
    /// How this function fared under the recovery ladder (always
    /// [`RecoveryOutcome::Clean`] without a policy).
    pub recovery: RecoveryOutcome,
    /// Memory accounting.
    pub memory: MemoryStats,
    /// Per-phase wall-clock timing of this translation.
    pub phase_seconds: PhaseSeconds,
}

/// Per-function verdict of the tiered recovery ladder (see
/// `RecoveryPolicy` in the engine module).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The first attempt succeeded — no recovery was needed (also the value
    /// for every function of engines run without a recovery policy).
    #[default]
    Clean,
    /// A retry on the conservative configuration succeeded.
    Recovered {
        /// The 1-based attempt the function finally translated on.
        attempt: u32,
    },
    /// Every attempt failed; the function's final error was reported.
    GaveUp {
        /// Total attempts made (1 + `max_retries`).
        attempts: u32,
    },
}

/// Equality over the *behavioural* counters only: `phase_seconds` is
/// wall-clock measurement and differs between two otherwise identical runs,
/// so it must not break the serial-vs-parallel bit-identity assertions.
impl PartialEq for OutOfSsaStats {
    fn eq(&self, other: &Self) -> bool {
        self.phis_removed == other.phis_removed
            && self.moves_inserted == other.moves_inserted
            && self.moves_coalesced == other.moves_coalesced
            && self.remaining_copies == other.remaining_copies
            && self.remaining_weighted == other.remaining_weighted
            && self.edges_split == other.edges_split
            && self.interference_queries == other.interference_queries
            && self.liveness_fallbacks == other.liveness_fallbacks
            && self.validation_failures == other.validation_failures
            && self.recovery == other.recovery
            && self.memory == other.memory
    }
}

impl OutOfSsaStats {
    /// Adds the counters of `other` to `self` (corpus aggregation).
    pub fn absorb(&mut self, other: &OutOfSsaStats) {
        self.phis_removed += other.phis_removed;
        self.moves_inserted += other.moves_inserted;
        self.moves_coalesced += other.moves_coalesced;
        self.remaining_copies += other.remaining_copies;
        self.remaining_weighted += other.remaining_weighted;
        self.edges_split += other.edges_split;
        self.interference_queries += other.interference_queries;
        self.liveness_fallbacks += other.liveness_fallbacks;
        self.validation_failures += other.validation_failures;
        // `recovery` is a per-function verdict, not a counter — aggregation
        // counts recovered functions via `IsolatedCorpusStats` instead.
        self.memory.absorb(&other.memory);
        self.phase_seconds.absorb(&other.phase_seconds);
    }
}

/// Runs the out-of-SSA translation on `func` in place, owning a fresh
/// analysis cache.
///
/// The input must be in SSA form; the output contains no φ-function and no
/// parallel copy when [`OutOfSsaOptions::sequentialize`] is set.
///
/// # Panics
/// Panics if `func` fails SSA verification in debug builds (the translation
/// itself assumes a well-formed input).
pub fn translate_out_of_ssa(func: &mut Function, options: &OutOfSsaOptions) -> OutOfSsaStats {
    let mut analyses = FunctionAnalyses::new();
    translate_out_of_ssa_cached(func, options, &mut analyses)
}

/// Runs the out-of-SSA translation on `func` in place, sharing the analyses
/// in `analyses`.
///
/// Whatever the caller already computed (CFG, dominators, liveness) is
/// reused where still valid; on return the cache holds analyses of the
/// *translated* function with only the instruction-dependent parts dropped,
/// so a downstream consumer (e.g. the register allocator) can keep using it.
pub fn translate_out_of_ssa_cached(
    func: &mut Function,
    options: &OutOfSsaOptions,
    analyses: &mut FunctionAnalyses,
) -> OutOfSsaStats {
    let mut scratch = TranslateScratch::new();
    translate_out_of_ssa_scratch(func, options, analyses, &mut scratch)
}

/// Like [`translate_out_of_ssa_cached`], additionally reusing the caller's
/// [`TranslateScratch`] — the entry point the corpus engine drives, with one
/// scratch per worker hoisted out of the per-function loop.
pub fn translate_out_of_ssa_scratch(
    func: &mut Function,
    options: &OutOfSsaOptions,
    analyses: &mut FunctionAnalyses,
    scratch: &mut TranslateScratch,
) -> OutOfSsaStats {
    debug_assert!(ossa_ir::verify_ssa(func).is_ok(), "input must be valid SSA");
    crate::fault::enter_phase(&func.name, crate::fault::TranslatePhase::Coalesce);

    let mut stats = OutOfSsaStats { phis_removed: func.count_phis(), ..OutOfSsaStats::default() };

    // Phase A: live-range splitting for renaming constraints, then Method I
    // copy insertion. Copy insertion may split edges (the br_dec corner
    // case), so the CFG-level caches are invalidated afterwards. The
    // insertion result is scratch-owned and recycled: taken out by value
    // here so `scratch` stays borrowable for `decide`, restored at the end.
    let mut insertion = std::mem::take(&mut scratch.insertion);
    insertion.reset();
    reserve_translation_growth(func, &mut insertion);
    isolate_pinned_values(func, &mut insertion);
    insert_phi_copies_into(func, &mut insertion);
    stats.moves_inserted = insertion.moves.len();
    stats.edges_split = insertion.edges_split;
    if insertion.edges_split > 0 {
        analyses.invalidate_cfg();
    } else if insertion.dirty_blocks.len() * 4 < func.num_blocks() {
        // Insertion confined to few blocks: repair cached liveness
        // incrementally instead of recomputing it whole-function.
        analyses.invalidate_instructions_in_blocks(func, &insertion.dirty_blocks);
    } else {
        analyses.invalidate_instructions();
    }

    // Force the analyses the decision phase consumes, timed as the
    // "liveness" phase (CFG, dominators, the liveness backend and the
    // def/use index — everything below is then cache hits).
    //
    // Graceful degradation: the fast liveness checker's reduced graph is
    // only acyclic — hence its queries only sound — on *reducible* CFGs, so
    // an irreducible function demotes `InterCheckLiveCheck` to the data-flow
    // sets backend (`InterCheck`) for this function only, recorded in
    // `liveness_fallbacks`. The verdict is one cached O(edges) scan.
    crate::fault::enter_phase(&func.name, crate::fault::TranslatePhase::Liveness);
    let phase_start = Instant::now();
    let interference = {
        let func = &*func;
        let _ = analyses.domtree(func);
        let _ = analyses.frequencies(func);
        let _ = analyses.live_range_info(func);
        let mut interference = options.interference;
        if interference == InterferenceMode::InterCheckLiveCheck && !analyses.is_reducible(func) {
            interference = InterferenceMode::InterCheck;
            stats.liveness_fallbacks = 1;
        }
        match interference {
            InterferenceMode::Graph | InterferenceMode::InterCheck => {
                let _ = analyses.liveness_sets(func);
            }
            InterferenceMode::InterCheckLiveCheck => {
                let _ = analyses.fast_liveness(func);
            }
        }
        interference
    };
    stats.phase_seconds.liveness = phase_start.elapsed().as_secs_f64();

    // Phase B: analyses + coalescing decisions (no mutation of `func`). The
    // decisions land in the scratch-owned snapshot maps, whose storage is
    // recycled across functions. Like the insertion result, the universe is
    // taken out of the scratch by value for the duration of `decide`.
    crate::fault::enter_phase(&func.name, crate::fault::TranslatePhase::Coalesce);
    let phase_start = Instant::now();
    coalesce_probe(CoalesceStage::Setup);
    let mut universe = std::mem::take(&mut scratch.universe);
    let mut universe_seen = std::mem::take(&mut scratch.universe_seen);
    let mut universe_tmp = std::mem::take(&mut scratch.universe_tmp);
    let mut plain_copies = std::mem::take(&mut scratch.plain_copies);
    let mut parallel_sites = std::mem::take(&mut scratch.parallel_sites);
    {
        let func = &*func;
        let domtree = analyses.domtree(func);
        let freqs = analyses.frequencies(func);
        let info = analyses.live_range_info(func);
        copy_related_universe_and_sites_into(
            func,
            &mut universe,
            &mut universe_seen,
            &mut universe_tmp,
            &mut plain_copies,
            &mut parallel_sites,
        );
        let universe = &universe[..];
        let plain_copies = &plain_copies[..];
        let parallel_sites = &parallel_sites[..];

        match interference {
            InterferenceMode::Graph | InterferenceMode::InterCheck => {
                let liveness = analyses.liveness_sets(func);
                let intersect = IntersectionTest::new(func, domtree, liveness, info);
                let graph = (interference == InterferenceMode::Graph)
                    .then(|| InterferenceGraph::build(func, universe, &intersect, None));
                let mut mem = MemoryStats {
                    liveness_ordered_bytes: footprint::liveness_ordered_sets_bytes(
                        liveness.total_entries(),
                        4,
                    ),
                    liveness_bitset_bytes: footprint::liveness_bit_sets_bytes(
                        universe.len(),
                        analyses.cfg(func).num_reachable(),
                    ),
                    universe_size: universe.len(),
                    num_blocks: analyses.cfg(func).num_reachable(),
                    ..MemoryStats::default()
                };
                if let Some(graph) = &graph {
                    mem.interference_graph_bytes = graph.footprint_bytes();
                    mem.interference_graph_evaluated = graph.evaluated_bytes();
                }
                stats.memory = mem;
                decide(
                    func,
                    options,
                    &insertion,
                    domtree,
                    freqs,
                    &intersect,
                    graph.as_ref(),
                    universe,
                    plain_copies,
                    parallel_sites,
                    scratch,
                );
            }
            // Only reached when the CFG is reducible: the irreducible case
            // was demoted to `InterCheck` above.
            InterferenceMode::InterCheckLiveCheck => {
                let cfg = analyses.cfg(func);
                let checker = analyses.fast_liveness(func);
                let fast = checker.query(cfg, domtree, info);
                stats.memory = MemoryStats {
                    livecheck_bytes: checker.footprint_bytes(),
                    livecheck_evaluated: footprint::liveness_check_bytes(cfg.num_reachable()),
                    universe_size: universe.len(),
                    num_blocks: cfg.num_reachable(),
                    ..MemoryStats::default()
                };
                let intersect = IntersectionTest::new(func, domtree, &fast, info);
                decide(
                    func,
                    options,
                    &insertion,
                    domtree,
                    freqs,
                    &intersect,
                    None,
                    universe,
                    plain_copies,
                    parallel_sites,
                    scratch,
                );
            }
        }
    }
    stats.interference_queries = scratch.decisions.queries;
    stats.moves_coalesced = scratch.decisions.moves_coalesced;
    scratch.universe = universe;
    scratch.universe_seen = universe_seen;
    scratch.universe_tmp = universe_tmp;
    scratch.plain_copies = plain_copies;
    scratch.parallel_sites = parallel_sites;
    scratch.insertion = insertion;

    // Phase C: rewrite with the chosen classes, drop φs, sequentialize. These
    // are instruction-level mutations: the CFG caches (and the fast liveness
    // precomputation) stay valid, so the frequencies used below and by later
    // consumers are not recomputed.
    coalesce_probe(CoalesceStage::Rewrite);
    rewrite(func, &scratch.decisions, &mut scratch.kept, &mut scratch.kept_pairs);
    coalesce_probe(CoalesceStage::Done);
    stats.phase_seconds.coalesce = phase_start.elapsed().as_secs_f64();
    crate::fault::enter_phase(&func.name, crate::fault::TranslatePhase::Sequentialize);
    let phase_start = Instant::now();
    if options.sequentialize {
        sequentialize_function_with(func, &mut scratch.seq);
    }
    stats.phase_seconds.sequentialize = phase_start.elapsed().as_secs_f64();
    analyses.invalidate_instructions();
    let (remaining, weighted) = count_copies(func, analyses);
    stats.remaining_copies = remaining;
    stats.remaining_weighted = weighted;
    debug_assert!(ossa_ir::verify_cfg(func).is_ok(), "output must stay structurally valid");
    debug_assert_eq!(func.count_phis(), 0);
    stats
}

/// Outcome of the decision phase: the final congruence classes and the moves
/// deleted by the sharing rule. Lives inside [`TranslateScratch`] so that
/// its dense maps are recycled across the functions of a corpus; every field
/// is rebuilt from scratch semantics by [`decide`] for each function.
#[derive(Debug, Default)]
struct Decisions {
    /// Class representative of every value (`None` = itself).
    class_rep: SecondaryMap<Value, Option<Value>>,
    /// Register labels to propagate, per class representative.
    labels: Vec<(Value, u32)>,
    removed_moves: Vec<(Inst, Value)>,
    /// Value table of the decision phase, used by the rewrite to prove that
    /// deduplicated parallel-copy destinations carry equal values.
    values: ValueTable,
    /// Values with at least one use before the rewrite, used to pick which
    /// of two deduplicated destinations must keep its copy.
    used: ossa_ir::EntitySet<Value>,
    queries: u64,
    moves_coalesced: usize,
}

#[allow(clippy::too_many_arguments)]
fn decide<L: BlockLiveness>(
    func: &Function,
    options: &OutOfSsaOptions,
    insertion: &CopyInsertion,
    domtree: &DominatorTree,
    freqs: &ossa_ir::BlockFrequencies,
    intersect: &IntersectionTest<'_, L>,
    graph: Option<&InterferenceGraph>,
    universe: &[Value],
    plain_copies: &[InsertedMove],
    parallel_sites: &[(Block, u32, Inst)],
    scratch: &mut TranslateScratch,
) {
    // Split the scratch into its independent pieces; every map is brought
    // back to fresh-construction semantics for this function while keeping
    // its heap allocations from previous functions.
    let TranslateScratch {
        equal_anc,
        classes,
        decisions,
        move_location,
        pinned,
        group,
        affinities,
        arg_moves,
        phi_move_dsts,
        grouped,
        range_of,
        sort_buf,
        verdicts,
        ..
    } = scratch;
    let Decisions {
        class_rep,
        labels: out_labels,
        removed_moves,
        values: values_slot,
        used,
        queries: out_queries,
        moves_coalesced: out_moves_coalesced,
    } = decisions;
    values_slot.compute_into(func, domtree);
    let values: &ValueTable = values_slot;
    classes.reset_for(func, domtree, intersect.info(), universe);
    verdicts.begin_round();
    let scratch = equal_anc;
    let mut moves_coalesced = 0usize;
    let no_anc = EqualAncOut::new();

    // Pre-coalesce all values pinned to the same register into one labeled
    // class (Section III-D). The `(register, value)` pairs are distinct, so
    // the unstable sort is a deterministic total order that groups each
    // register's values in value order — exactly the member order the
    // per-register scan produced — and pinned groups of different registers
    // are disjoint singleton classes at this point, so the register-sorted
    // group order leaves every decision unchanged while replacing the scan
    // that was quadratic in distinct pinned registers.
    // Every pinned value is a universe member (`copy_related_universe_into`
    // collects them explicitly), so the scan runs over the universe instead
    // of all values; the sort restores the same total order either way.
    pinned.clear();
    for &value in universe {
        if let Some(reg) = func.pinned_reg(value) {
            pinned.push((reg, value));
        }
    }
    pinned.sort_unstable();
    let mut start = 0usize;
    for end in 1..=pinned.len() {
        if end == pinned.len() || pinned[end].0 != pinned[start].0 {
            group.clear();
            group.extend(pinned[start..end].iter().map(|&(_, v)| v));
            classes.merge_group(group);
            start = end;
        }
    }

    let weight = |block: Block| if options.weighted { freqs.frequency(block) } else { 1.0 };

    // φ-web handling. In eager mode the φ moves seed the affinity work list
    // directly (the list the seed called `phi_move_set`).
    coalesce_probe(CoalesceStage::AffinityBuild);
    affinities.clear();
    match options.phi_processing {
        PhiProcessing::Eager => {
            // Pre-coalesce the whole primed web (Lemma 1), then treat the φ
            // moves like any other affinity.
            for web in &insertion.webs {
                classes.merge_group(&web.members);
                affinities.extend(web.moves.iter().copied());
            }
        }
        PhiProcessing::Virtualized => {
            // Process φ-functions one at a time: each related move is tested
            // against the φ-node built so far; its primed value joins the
            // node either way (materialized copy or coalesced). The result
            // move is considered last, and candidates are additionally
            // checked against the *virtual* locations of the remaining
            // argument copies so that materializing one of them later cannot
            // invalidate the class (the lost-copy situation).
            parallel_copy_locations_into(move_location, func);
            for web in &insertion.webs {
                let node = web.members[0];
                let result_move = web.moves[0];
                arg_moves.clear();
                arg_moves.extend_from_slice(&web.moves[1..]);
                sort_moves_by_weight_desc(arg_moves, sort_buf, &weight);
                for m in arg_moves.iter().chain(std::iter::once(&result_move)) {
                    // The primed value of this move (its dst for argument
                    // copies, its src for the result copy).
                    let (primed, original) =
                        if web.members.contains(&m.dst) { (m.dst, m.src) } else { (m.src, m.dst) };
                    if !classes.same_class(primed, node) {
                        classes.merge(node, primed, &no_anc);
                    }
                    if classes.same_class(original, node) {
                        moves_coalesced += 1;
                        continue;
                    }
                    let skip =
                        (options.strategy == Strategy::SreedharI).then_some((primed, original));
                    let interferes = classes_interfere(
                        options, classes, node, original, intersect, values, graph, skip, scratch,
                        verdicts,
                    );
                    let virtual_conflict = !interferes
                        && virtual_copy_conflict(
                            options,
                            classes,
                            original,
                            m,
                            &web.moves[1..],
                            move_location,
                            intersect,
                            values,
                        );
                    if !interferes && !virtual_conflict {
                        classes.merge(node, original, scratch);
                        moves_coalesced += 1;
                    }
                }
            }
        }
    }

    // Remaining affinities: φ moves (eager mode) plus pinned-isolation moves
    // and pre-existing copies, ordered by decreasing weight. φ moves are
    // recognized by destination (every inserted move defines a distinct SSA
    // value), replacing a webs×moves scan that was quadratic in φ count.
    phi_move_dsts.reset();
    for web in &insertion.webs {
        for m in &web.moves {
            phi_move_dsts.insert(m.dst);
        }
    }
    for m in &insertion.moves {
        if !phi_move_dsts.contains(m.dst) {
            affinities.push(*m);
        }
    }
    // Pre-existing plain copies in the function are affinities too. The
    // fused universe scan collected them in the same block/instruction
    // order the instruction walk here used to produce.
    affinities.extend_from_slice(plain_copies);
    sort_moves_by_weight_desc(affinities, sort_buf, &weight);
    coalesce_probe(CoalesceStage::Decide);
    for &m in affinities.iter() {
        // Profitability early exit: the list is sorted by decreasing
        // weight, so once one affinity falls below the abort threshold the
        // whole remaining tail does too — everything skipped is at most
        // `abort_threshold` profitable. Disabled (bit-identical) at 0.0.
        if options.abort_threshold > 0.0 && weight(m.block) < options.abort_threshold {
            break;
        }
        if classes.same_class(m.dst, m.src) {
            moves_coalesced += 1;
            continue;
        }
        let skip = (options.strategy == Strategy::SreedharI).then_some((m.dst, m.src));
        let interferes = classes_interfere(
            options, classes, m.dst, m.src, intersect, values, graph, skip, scratch, verdicts,
        );
        if !interferes {
            classes.merge(m.dst, m.src, scratch);
            moves_coalesced += 1;
        }
    }

    // Copy-sharing post-optimization (Section III-B).
    coalesce_probe(CoalesceStage::Sharing);
    removed_moves.clear();
    if options.sharing {
        // Group the copy-related universe by value representative — one
        // sorted array plus per-representative ranges instead of one `Vec`
        // per representative. The sort is stable in universe order within a
        // group (the seed's push order), which matters: candidate order is
        // decision-relevant. `range_of` is recycled without clearing: every
        // key it is queried with below is `values.value_of(a)` for a
        // universe member `a`, and every such representative gets its range
        // written by this loop first — stale entries of a previous function
        // are never read.
        grouped.clear();
        grouped.extend(universe.iter().enumerate().map(|(i, &v)| (values.value_of(v), i as u32)));
        grouped.sort_unstable();
        range_of.resize(func.num_values());
        let mut start = 0usize;
        for end in 1..=grouped.len() {
            if end == grouped.len() || grouped[end].0 != grouped[start].0 {
                range_of[grouped[start].0] = (start as u32, end as u32);
                start = end;
            }
        }
        // The parallel-copy sites come from the fused universe scan, in the
        // same block/instruction order the nested walk here used to visit.
        for &(block, pos, inst) in parallel_sites {
            {
                let pos = pos as usize;
                let InstData::ParallelCopy { copies } = func.inst(inst) else { continue };
                for copy in func.copy_list(*copies) {
                    let (a, b) = (copy.src, copy.dst);
                    if classes.same_class(a, b) {
                        continue; // already coalesced, move will disappear
                    }
                    let (lo, hi) = *range_of.get(values.value_of(a));
                    for &(_, ci) in &grouped[lo as usize..hi as usize] {
                        let c = universe[ci as usize];
                        if c == a || c == b || classes.same_class(c, a) {
                            continue;
                        }
                        // A candidate defined by this very parallel copy
                        // cannot justify dropping one of its moves: two
                        // moves of the same copy would each justify removing
                        // the other, deleting both.
                        if intersect.info().def(c).is_some_and(|d| d.inst == inst) {
                            continue;
                        }
                        if !intersect.is_live_after(block, pos, c) {
                            continue;
                        }
                        if classes.same_class(c, b) {
                            // Rule 1: b already receives the value through c.
                            removed_moves.push((inst, b));
                            moves_coalesced += 1;
                            break;
                        }
                        // Rule 2: coalesce the classes of b and c (value rule)
                        // and drop the copy.
                        let interferes = classes_interfere(
                            options, classes, b, c, intersect, values, graph, None, scratch,
                            verdicts,
                        );
                        if !interferes {
                            classes.merge(b, c, scratch);
                            removed_moves.push((inst, b));
                            moves_coalesced += 1;
                            break;
                        }
                    }
                }
            }
        }
    }

    // Snapshot the classes into the scratch-owned dense maps for the rewrite
    // phase. Only copy-related universe members can ever be merged (every
    // merge endpoint is a φ/copy operand or a pinned value, and
    // `copy_related_universe_into` collects both), so the union-find and
    // def/use lookups run over the universe only; every other value keeps the
    // `None` entry written by the wholesale clear below, which the rewrite
    // reads as "renames to itself". The clear also guarantees stale entries
    // from a previous function are never observed. The rename target is the
    // *canonical* representative, which is independent of the union-by-rank
    // tree shape.
    coalesce_probe(CoalesceStage::Snapshot);
    class_rep.resize(func.num_values());
    for slot in class_rep.values_mut() {
        *slot = None;
    }
    out_labels.clear();
    used.reset();
    for &value in universe {
        let rep = classes.representative(value);
        class_rep[value] = Some(rep);
        if value == rep {
            if let Some(reg) = classes.label(value) {
                out_labels.push((rep, reg));
            }
        }
        if !intersect.info().uses().uses_of(value).is_empty() {
            used.insert(value);
        }
    }
    *out_queries = classes.queries();
    *out_moves_coalesced = moves_coalesced;
}

/// Stable merge sort of a move list by decreasing block weight, through a
/// caller-owned merge buffer. Behaviourally identical to
/// `items.sort_by(|a, b| weight(b.block).partial_cmp(&weight(a.block))…)` —
/// a stable sort's output is uniquely determined by its comparator — but
/// without the std stable sort's internal allocation (its merge buffer is
/// heap-allocated above ~20 elements), which was the last steady-state
/// allocation of the decision phase.
fn sort_moves_by_weight_desc(
    items: &mut [InsertedMove],
    buf: &mut Vec<InsertedMove>,
    weight: &impl Fn(Block) -> f64,
) {
    let n = items.len();
    if n < 2 {
        return;
    }
    let cmp = |a: &InsertedMove, b: &InsertedMove| {
        weight(b.block).partial_cmp(&weight(a.block)).unwrap_or(std::cmp::Ordering::Equal)
    };
    let mut width = 1;
    while width < n {
        buf.clear();
        let mut start = 0;
        while start < n {
            let mid = (start + width).min(n);
            let end = (start + 2 * width).min(n);
            let (mut l, mut r) = (start, mid);
            while l < mid && r < end {
                // `<=` keeps the left run's element on ties: stability.
                if cmp(&items[l], &items[r]) == std::cmp::Ordering::Greater {
                    buf.push(items[r]);
                    r += 1;
                } else {
                    buf.push(items[l]);
                    l += 1;
                }
            }
            buf.extend_from_slice(&items[l..mid]);
            buf.extend_from_slice(&items[r..end]);
            start = end;
        }
        items.copy_from_slice(buf);
        width *= 2;
    }
}

/// Records the location (block, position) of every parallel-copy destination
/// into the reusable `locations` map, used by the virtualized processing to
/// reason about copies that are not yet committed.
fn parallel_copy_locations_into(
    locations: &mut SecondaryMap<Value, Option<(Block, usize)>>,
    func: &Function,
) {
    locations.truncate(func.num_values());
    for slot in locations.values_mut() {
        *slot = None;
    }
    locations.resize(func.num_values());
    for block in func.blocks() {
        for (pos, &inst) in func.block_insts(block).iter().enumerate() {
            if let InstData::ParallelCopy { copies } = func.inst(inst) {
                for copy in func.copy_list(*copies) {
                    locations[copy.dst] = Some((block, pos));
                }
            }
        }
    }
}

/// Checks whether coalescing the class of `candidate` into the φ-node would
/// conflict with an argument copy of the same φ if that copy later has to be
/// materialized: the materialized primed value lives from the predecessor's
/// parallel copy to the φ, so any class member live at that point (with a
/// different value) would interfere with it.
#[allow(clippy::too_many_arguments)]
fn virtual_copy_conflict<L: BlockLiveness>(
    options: &OutOfSsaOptions,
    classes: &CongruenceClasses,
    candidate: Value,
    current_move: &InsertedMove,
    arg_moves: &[InsertedMove],
    move_location: &SecondaryMap<Value, Option<(Block, usize)>>,
    intersect: &IntersectionTest<'_, L>,
    values: &ValueTable,
) -> bool {
    let members = classes.members(candidate);
    for arg in arg_moves {
        if arg == current_move {
            continue;
        }
        let Some((block, pos)) = *move_location.get(arg.dst) else { continue };
        for &x in members {
            if x == arg.src {
                continue;
            }
            if options.strategy == Strategy::Value && values.same_value(x, arg.src) {
                continue;
            }
            if intersect.is_live_after(block, pos, x) {
                return true;
            }
        }
    }
    false
}

/// Decides whether the classes of `a` and `b` interfere under `options`.
/// When the linear check runs, `scratch` is left holding the
/// `equal_anc_out` chains the caller must pass to a subsequent merge; other
/// paths leave it cleared.
#[allow(clippy::too_many_arguments)]
fn classes_interfere<L: BlockLiveness>(
    options: &OutOfSsaOptions,
    classes: &mut CongruenceClasses,
    a: Value,
    b: Value,
    intersect: &IntersectionTest<'_, L>,
    values: &ValueTable,
    graph: Option<&InterferenceGraph>,
    skip_pair: Option<(Value, Value)>,
    scratch: &mut EqualAncOut,
    cache: &mut VerdictCache,
) -> bool {
    scratch.clear();
    // Resolve both class roots once; every class query below (labels,
    // members, versions) re-finds its argument, and a root resolves in one
    // parent probe — so the walks run on `(ra, rb)` instead of repeating
    // the full path per lookup. The classes of `a` and `b` are unchanged,
    // so every verdict is too.
    let (ra, rb) = (classes.find(a), classes.find(b));
    if classes.labels_conflict(ra, rb) {
        return true;
    }
    // Verdict memoization. Only exact snapshots hit: the key carries both
    // roots *and* their merge versions, so a hit means neither class has
    // changed since the verdict was computed. Excluded when Sreedhar I's
    // candidate-pair exemption is in play — the verdict then depends on the
    // exempted pair, not only on the two classes.
    let cache_key = skip_pair
        .is_none()
        .then(|| VerdictKey::new(ra, classes.class_version(ra), rb, classes.class_version(rb)));
    if let Some(key) = cache_key {
        if cache.contains(key) {
            return true;
        }
    }
    let use_values = options.strategy == Strategy::Value;

    // The linear check is only valid when classes are internally
    // intersection-free up to value equality, which holds for the Intersect
    // and Value strategies.
    let interferes = if options.class_check == ClassCheck::Linear
        && skip_pair.is_none()
        && graph.is_none()
        && matches!(options.strategy, Strategy::Intersect | Strategy::Value)
    {
        classes.interfere_linear(ra, rb, intersect, use_values.then_some(values), scratch)
    } else {
        // Pairwise semantics, executed as a batched merge-sweep over the
        // dominance-ordered member lists: verdict-identical to the all-pairs
        // loop (see [`CongruenceClasses::interfere_sweep`]), with pairs
        // lacking a dominance relation skipped unqueried.
        let pair_intersects = |x: Value, y: Value| -> bool {
            match graph {
                Some(g) if g.contains(x) && g.contains(y) => g.interfere(x, y),
                _ => intersect.intersect(x, y),
            }
        };
        let mut pair_interferes = |x: Value, y: Value| -> bool {
            match options.strategy {
                Strategy::Intersect | Strategy::SreedharI => pair_intersects(x, y),
                Strategy::Chaitin => intersect.chaitin_interfere(x, y),
                Strategy::Value => pair_intersects(x, y) && !values.same_value(x, y),
            }
        };
        classes.interfere_sweep(ra, rb, skip_pair, &mut pair_interferes, scratch)
    };
    if interferes {
        if let Some(key) = cache_key {
            cache.insert(key);
        }
    }
    interferes
}

/// One entry of the parallel-copy deduplication scratch of [`rewrite`].
#[derive(Debug)]
struct KeptCopy {
    pair: ossa_ir::CopyPair,
    orig_src: Value,
    used: bool,
}

/// Rewrites `func` according to the coalescing decisions: every value is
/// renamed to its class representative, φ-functions are removed, coalesced
/// moves disappear and shared moves are dropped. The walk is position-based
/// (removals shift the remainder of the block into place) so no block or
/// instruction list is snapshotted, and the parallel-copy storage is edited
/// in place.
fn rewrite(
    func: &mut Function,
    decisions: &Decisions,
    kept: &mut Vec<KeptCopy>,
    kept_pairs: &mut Vec<ossa_ir::CopyPair>,
) {
    let rep = |v: Value| (*decisions.class_rep.get(v)).unwrap_or(v);

    for bi in 0..func.num_blocks() {
        let block = ossa_ir::Block::from_index(bi);
        let mut pos = 0;
        while pos < func.block_len(block) {
            let inst = func.block_insts(block)[pos];
            if func.inst(inst).is_phi() {
                func.remove_inst(block, inst);
                continue; // same position now holds the next instruction
            }
            if matches!(func.inst(inst), InstData::ParallelCopy { .. }) {
                // Coalescing may map two destinations of one parallel copy
                // to the same representative: either both carry the same
                // value (value-based merge — either copy may be kept), or at
                // least one destination is *dead* (an empty live range never
                // interferes, so merges can pull it in) — then the copy of
                // the used destination must be the one kept. Two *used*
                // destinations with different values can only come from
                // pinning two simultaneously-live values to one register:
                // unsatisfiable, and refusing loudly beats the seed's silent
                // miscompilation.
                kept.clear();
                let InstData::ParallelCopy { copies } = func.inst(inst) else { unreachable!() };
                let removed = |dst: Value| {
                    decisions.removed_moves.iter().any(|&(i, d)| i == inst && d == dst)
                };
                for c in func.copy_list(*copies).iter().filter(|c| !removed(c.dst)) {
                    let pair = ossa_ir::CopyPair { dst: rep(c.dst), src: rep(c.src) };
                    if pair.dst == pair.src {
                        continue;
                    }
                    let this_used = decisions.used.contains(c.dst);
                    match kept.iter_mut().find(|k| k.pair.dst == pair.dst) {
                        None => kept.push(KeptCopy { pair, orig_src: c.src, used: this_used }),
                        Some(first) => {
                            if decisions.values.same_value(first.orig_src, c.src) {
                                first.used |= this_used;
                            } else if first.used && this_used {
                                panic!(
                                    "parallel copy destinations {} coalesced with different \
                                     values ({} vs {}): unsatisfiable register constraints \
                                     in the input",
                                    pair.dst, first.orig_src, c.src
                                );
                            } else if this_used {
                                // The earlier duplicate was dead; this copy
                                // provides the value the uses actually read.
                                *first = KeptCopy { pair, orig_src: c.src, used: true };
                            }
                            // else: this duplicate is dead, drop it.
                        }
                    }
                }
                if kept.is_empty() {
                    func.remove_inst(block, inst);
                    continue;
                }
                // Write the surviving moves back into the instruction's pool
                // block in place (the rewrite only ever shrinks the list).
                kept_pairs.clear();
                kept_pairs.extend(kept.iter().map(|k| k.pair));
                func.set_parallel_copies(inst, kept_pairs);
                pos += 1;
                continue;
            }
            func.map_inst_uses(inst, rep);
            func.map_inst_defs(inst, rep);
            // Plain copies that became self-copies disappear.
            if let InstData::Copy { dst, src } = *func.inst(inst) {
                if dst == src {
                    func.remove_inst(block, inst);
                    continue;
                }
            }
            pos += 1;
        }
    }

    // Propagate class labels (register pins) to the representatives.
    for &(root, reg) in &decisions.labels {
        func.pin_value(root, reg);
    }
}

/// Counts the remaining copies and their frequency-weighted cost, using the
/// cached block frequencies.
fn count_copies(func: &Function, analyses: &FunctionAnalyses) -> (usize, f64) {
    let freqs = analyses.frequencies(func);
    let mut count = 0usize;
    let mut weighted = 0.0f64;
    for block in func.blocks() {
        for &inst in func.block_insts(block) {
            let copies = match func.inst(inst) {
                InstData::Copy { .. } => 1,
                InstData::ParallelCopy { copies } => copies.len(),
                _ => 0,
            };
            count += copies;
            weighted += copies as f64 * freqs.frequency(block);
        }
    }
    (count, weighted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_interp::{same_behaviour, Interpreter};
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::BinaryOp;

    /// The lost-copy problem (paper Figure 4a), with an SSA loop counter so
    /// that executions terminate.
    fn lost_copy() -> Function {
        let mut b = FunctionBuilder::new("lost-copy", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let x1 = b.iconst(1);
        b.jump(header);
        b.switch_to_block(header);
        let x3 = b.declare_value();
        let i_next = b.declare_value();
        let x2 = b.phi(vec![(entry, x1), (header, x3)]);
        let i = b.phi(vec![(entry, p), (header, i_next)]);
        let one = b.iconst(1);
        b.func_mut()
            .append_inst(header, InstData::Binary { op: BinaryOp::Add, dst: x3, args: [x2, one] });
        b.func_mut().append_inst(
            header,
            InstData::Binary { op: BinaryOp::Sub, dst: i_next, args: [i, one] },
        );
        let zero = b.iconst(0);
        let c = b.cmp(ossa_ir::CmpOp::Gt, i_next, zero);
        b.branch(c, header, exit);
        b.switch_to_block(exit);
        b.ret(Some(x2));
        b.finish()
    }

    /// The swap problem (paper Figure 3a), with an SSA loop counter.
    fn swap_problem() -> Function {
        let mut b = FunctionBuilder::new("swap", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let a1 = b.iconst(1);
        let b1 = b.iconst(2);
        b.jump(header);
        b.switch_to_block(header);
        let a2 = b.declare_value();
        let b2 = b.declare_value();
        let i_next = b.declare_value();
        b.phi_to(a2, vec![(entry, a1), (header, b2)]);
        b.phi_to(b2, vec![(entry, b1), (header, a2)]);
        let i = b.phi(vec![(entry, p), (header, i_next)]);
        let one = b.iconst(1);
        b.func_mut().append_inst(
            header,
            InstData::Binary { op: BinaryOp::Sub, dst: i_next, args: [i, one] },
        );
        let zero = b.iconst(0);
        let c = b.cmp(ossa_ir::CmpOp::Gt, i_next, zero);
        b.branch(c, header, exit);
        b.switch_to_block(exit);
        let ten = b.iconst(10);
        let scaled = b.binary(BinaryOp::Mul, a2, ten);
        let s = b.binary(BinaryOp::Add, scaled, b2);
        b.ret(Some(s));
        b.finish()
    }

    fn all_variants() -> Vec<(&'static str, OutOfSsaOptions)> {
        vec![
            ("intersect", OutOfSsaOptions::intersect()),
            ("sreedhar_i", OutOfSsaOptions::sreedhar_i()),
            ("chaitin", OutOfSsaOptions::chaitin()),
            ("value", OutOfSsaOptions::value()),
            ("sreedhar_iii", OutOfSsaOptions::sreedhar_iii()),
            ("value_is", OutOfSsaOptions::value_is()),
            ("sharing", OutOfSsaOptions::sharing()),
            ("us_i", OutOfSsaOptions::us_i()),
            ("us_iii", OutOfSsaOptions::us_iii()),
            (
                "us_i_linear_livecheck",
                OutOfSsaOptions::us_i()
                    .with_interference(InterferenceMode::InterCheckLiveCheck)
                    .with_class_check(ClassCheck::Linear),
            ),
        ]
    }

    #[test]
    fn lost_copy_translation_preserves_behaviour_for_all_variants() {
        let original = lost_copy();
        for (name, options) in all_variants() {
            let mut translated = original.clone();
            let stats = translate_out_of_ssa(&mut translated, &options);
            assert_eq!(translated.count_phis(), 0, "{name}: phis remain");
            for input in [0, 1, 2, 5] {
                let a = Interpreter::new().run(&original, &[input]).unwrap();
                let b = Interpreter::new().run(&translated, &[input]).unwrap();
                assert!(
                    same_behaviour(&a, &b),
                    "{name}: behaviour differs on input {input}\noriginal:\n{}\ntranslated:\n{}",
                    original.display(),
                    translated.display()
                );
            }
            assert!(stats.phis_removed >= 1);
        }
    }

    #[test]
    fn swap_translation_preserves_behaviour_for_all_variants() {
        let original = swap_problem();
        for (name, options) in all_variants() {
            let mut translated = original.clone();
            translate_out_of_ssa(&mut translated, &options);
            for input in [1, 2, 3, 6] {
                let a = Interpreter::new().run(&original, &[input]).unwrap();
                let b = Interpreter::new().run(&translated, &[input]).unwrap();
                assert!(
                    same_behaviour(&a, &b),
                    "{name}: behaviour differs on input {input}\noriginal:\n{}\ntranslated:\n{}",
                    original.display(),
                    translated.display()
                );
            }
        }
    }

    #[test]
    fn value_based_coalescing_removes_more_copies_than_intersection() {
        let mut by_intersect = lost_copy();
        let mut by_value = lost_copy();
        let a = translate_out_of_ssa(&mut by_intersect, &OutOfSsaOptions::intersect());
        let b = translate_out_of_ssa(&mut by_value, &OutOfSsaOptions::sharing());
        assert!(
            b.remaining_copies <= a.remaining_copies,
            "value/sharing ({}) should not be worse than intersect ({})",
            b.remaining_copies,
            a.remaining_copies
        );
    }

    #[test]
    fn swap_problem_keeps_a_cycle_worth_of_copies() {
        // The swap needs a parallel-copy cycle; after sequentialization this
        // materializes as up to three copies but cannot disappear entirely.
        let mut f = swap_problem();
        let stats = translate_out_of_ssa(&mut f, &OutOfSsaOptions::sharing());
        assert!(stats.remaining_copies >= 2, "a swap cannot be fully coalesced");
        assert!(stats.remaining_copies <= 4);
    }

    #[test]
    fn lost_copy_keeps_exactly_one_copy_with_value_strategy() {
        // Figure 4d of the paper: all copies but one can be removed.
        let mut f = lost_copy();
        let stats = translate_out_of_ssa(&mut f, &OutOfSsaOptions::sharing());
        assert_eq!(stats.remaining_copies, 1, "{}", f.display());
    }

    #[test]
    fn memory_stats_reflect_backend_choice() {
        let mut with_graph = lost_copy();
        let g = translate_out_of_ssa(&mut with_graph, &OutOfSsaOptions::us_i());
        assert!(g.memory.interference_graph_bytes > 0);
        assert!(g.memory.liveness_ordered_bytes > 0);
        assert_eq!(g.memory.livecheck_bytes, 0);

        let mut with_livecheck = lost_copy();
        let l = translate_out_of_ssa(
            &mut with_livecheck,
            &OutOfSsaOptions::us_i().with_interference(InterferenceMode::InterCheckLiveCheck),
        );
        assert_eq!(l.memory.interference_graph_bytes, 0);
        assert_eq!(l.memory.liveness_ordered_bytes, 0);
        assert!(l.memory.livecheck_bytes > 0);
    }

    #[test]
    fn pinned_values_keep_their_register_labels() {
        let mut b = FunctionBuilder::new("pinned", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let r = b.call(1, vec![x]);
        let s = b.binary(BinaryOp::Add, r, x);
        b.ret(Some(s));
        let mut f = b.finish();
        f.pin_value(x, 1);
        f.pin_value(r, 0);
        let original = f.clone();
        let stats = translate_out_of_ssa(&mut f, &OutOfSsaOptions::default());
        assert!(stats.moves_inserted >= 2);
        // The translated code still has at least one value pinned to each
        // register label.
        let pinned_regs: Vec<u32> = f.values().filter_map(|v| f.pinned_reg(v)).collect();
        assert!(pinned_regs.contains(&0));
        assert!(pinned_regs.contains(&1));
        // Behaviour is preserved.
        for input in [0, 3, 9] {
            let a = Interpreter::new().run(&original, &[input]).unwrap();
            let b = Interpreter::new().run(&f, &[input]).unwrap();
            assert!(same_behaviour(&a, &b));
        }
    }

    #[test]
    fn coalesced_parallel_copy_destinations_are_deduplicated() {
        // Two destinations of one parallel copy that carry the same value
        // can be coalesced into one class (here forced by pinning both to
        // the same register); the rewrite must emit that destination once,
        // not produce an ill-formed duplicate-destination parallel copy.
        // This is the situation the seed only caught with a debug_assert —
        // release builds silently mis-sequentialized it.
        let mut b = FunctionBuilder::new("dup-dst", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let a = b.iconst(7);
        let x = b.declare_value();
        let y = b.declare_value();
        b.parallel_copy(vec![
            ossa_ir::CopyPair { dst: x, src: a },
            ossa_ir::CopyPair { dst: y, src: a },
        ]);
        let s = b.binary(BinaryOp::Add, x, y);
        b.ret(Some(s));
        let mut f = b.finish();
        // x and y share a register pin, so they are pre-coalesced; a is
        // pinned elsewhere, which keeps it out of their class.
        f.pin_value(x, 1);
        f.pin_value(y, 1);
        f.pin_value(a, 0);
        let original = f.clone();
        translate_out_of_ssa(&mut f, &OutOfSsaOptions::default());
        let want = Interpreter::new().run(&original, &[]).unwrap();
        let got = Interpreter::new().run(&f, &[]).unwrap();
        assert!(same_behaviour(&want, &got), "\n{}", f.display());
    }

    #[test]
    #[should_panic(expected = "unsatisfiable register constraints")]
    fn conflicting_pinned_parallel_copy_destinations_are_rejected() {
        // Two destinations of one parallel copy with *different*-valued
        // sources, force-merged by pinning both to the same register: no
        // correct allocation exists, and the rewrite must refuse to silently
        // drop one of the copies (the seed miscompiled this in release).
        let mut b = FunctionBuilder::new("dup-conflict", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let a = b.iconst(7);
        let c = b.iconst(9);
        let x = b.declare_value();
        let y = b.declare_value();
        b.parallel_copy(vec![
            ossa_ir::CopyPair { dst: x, src: a },
            ossa_ir::CopyPair { dst: y, src: c },
        ]);
        let s = b.binary(BinaryOp::Add, x, y);
        b.ret(Some(s));
        let mut f = b.finish();
        f.pin_value(x, 1);
        f.pin_value(y, 1);
        translate_out_of_ssa(&mut f, &OutOfSsaOptions::default());
    }

    #[test]
    fn cached_translation_matches_fresh_translation() {
        // Translating through a shared (pre-warmed) analysis cache must give
        // exactly the same code and statistics as a fresh run.
        let original = lost_copy();
        for (name, options) in all_variants() {
            let mut fresh = original.clone();
            let fresh_stats = translate_out_of_ssa(&mut fresh, &options);

            let mut cached = original.clone();
            let mut analyses = FunctionAnalyses::new();
            // Pre-warm the cache as an upstream phase would.
            let _ = analyses.liveness_sets(&cached);
            let _ = analyses.fast_liveness(&cached);
            let cached_stats = translate_out_of_ssa_cached(&mut cached, &options, &mut analyses);

            assert_eq!(fresh, cached, "{name}: translated code differs");
            assert_eq!(fresh_stats, cached_stats, "{name}: stats differ");
        }
    }
}
