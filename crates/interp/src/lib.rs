//! # ossa-interp — reference interpreter
//!
//! A small, deterministic interpreter for the `ossa-ir` IR. It executes both
//! SSA functions (φ-functions with parallel semantics, parallel copies) and
//! ordinary post-SSA code, producing an [`Observation`] — the returned value
//! plus the trace of externally visible events (calls and stores).
//!
//! The out-of-SSA translation is required to preserve observable behaviour,
//! so tests run the same inputs through the original SSA function and its
//! translated form and compare the observations.
//!
//! # Examples
//!
//! ```
//! use ossa_ir::builder::FunctionBuilder;
//! use ossa_ir::BinaryOp;
//! use ossa_interp::Interpreter;
//!
//! let mut b = FunctionBuilder::new("double", 1);
//! let entry = b.create_block();
//! b.set_entry(entry);
//! b.switch_to_block(entry);
//! let x = b.param(0);
//! let two = b.iconst(2);
//! let doubled = b.binary(BinaryOp::Mul, x, two);
//! b.ret(Some(doubled));
//! let func = b.finish();
//!
//! let obs = Interpreter::new().run(&func, &[21])?;
//! assert_eq!(obs.returned, Some(42));
//! # Ok::<(), ossa_interp::ExecError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;

use ossa_ir::entity::{Block, Value};
use ossa_ir::{Function, InstData};

/// Default instruction budget for one execution.
pub const DEFAULT_FUEL: u64 = 200_000;

/// An externally visible event produced during execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A call to an opaque function: callee id, argument values, produced
    /// result (the interpreter models calls as a deterministic hash of the
    /// callee and its arguments).
    Call {
        /// Opaque callee identifier.
        callee: u32,
        /// Argument values at the call.
        args: Vec<i64>,
        /// Value returned by the modelled call.
        result: i64,
    },
    /// A store to the abstract memory: address and stored value.
    Store {
        /// Address operand.
        addr: i64,
        /// Stored value.
        value: i64,
    },
}

/// The observable behaviour of one execution.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Observation {
    /// Value returned by the function (`None` for a void return).
    pub returned: Option<i64>,
    /// Ordered trace of calls and stores.
    pub trace: Vec<Event>,
    /// Number of instructions executed.
    pub steps: u64,
}

/// Execution errors. The interpreter is the semantic *oracle* of the test
/// suite, so a malformed program — whatever mangled it — must surface as a
/// typed, reportable error rather than tearing the harness down with a
/// panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The instruction budget was exhausted (probably an infinite loop).
    FuelExhausted,
    /// An instruction read a value that was never written. This indicates a
    /// miscompilation (or executing unreachable code paths of a malformed
    /// function).
    UndefinedValue(Value),
    /// A block had no terminator.
    MissingTerminator(Block),
    /// The function has no entry block.
    NoEntry,
    /// Control reached a φ-function in the entry block — a φ needs an
    /// incoming edge to select its value, and the entry has none.
    PhiInEntry(Block),
    /// A block's φ group is malformed: a non-φ instruction inside the
    /// leading φ group or a φ after it.
    MisplacedPhi(Block),
    /// A φ-function has no argument for the edge control arrived through.
    PhiMissingEdge {
        /// The φ's destination value.
        phi: Value,
        /// The predecessor block the edge came from.
        pred: Block,
    },
}

/// Former name of [`InterpError`], kept as an alias for existing callers.
pub type ExecError = InterpError;

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::FuelExhausted => write!(f, "instruction budget exhausted"),
            InterpError::UndefinedValue(v) => write!(f, "read of undefined value {v}"),
            InterpError::MissingTerminator(b) => write!(f, "block {b} has no terminator"),
            InterpError::NoEntry => write!(f, "function has no entry block"),
            InterpError::PhiInEntry(b) => {
                write!(f, "phi executed in entry block {b} (no incoming edge)")
            }
            InterpError::MisplacedPhi(b) => {
                write!(f, "malformed phi group in block {b}")
            }
            InterpError::PhiMissingEdge { phi, pred } => {
                write!(f, "phi defining {phi} has no argument for the edge from {pred}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// The interpreter. Construct one, optionally adjust the fuel, then
/// [`Interpreter::run`] a function.
#[derive(Clone, Debug)]
pub struct Interpreter {
    fuel: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with the default fuel.
    pub fn new() -> Self {
        Self { fuel: DEFAULT_FUEL }
    }

    /// Sets the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs `func` on `args`.
    ///
    /// # Errors
    /// Returns an error if the instruction budget is exhausted, a value is
    /// read before being written, or the function is structurally broken.
    pub fn run(&self, func: &Function, args: &[i64]) -> Result<Observation, ExecError> {
        if !func.has_entry() {
            return Err(InterpError::NoEntry);
        }
        let mut env: HashMap<Value, i64> = HashMap::new();
        let mut memory: HashMap<i64, i64> = HashMap::new();
        let mut trace = Vec::new();
        let mut steps: u64 = 0;

        let mut block = func.entry();
        let mut pred: Option<Block> = None;

        'blocks: loop {
            // Execute the φ group of the block with parallel semantics.
            let phis = func.phis(block);
            if !phis.is_empty() {
                let from = pred.ok_or(InterpError::PhiInEntry(block))?;
                let mut parallel_reads: Vec<(Value, i64)> = Vec::with_capacity(phis.len());
                for &phi in &phis {
                    steps += 1;
                    if steps > self.fuel {
                        return Err(InterpError::FuelExhausted);
                    }
                    let data = func.inst(phi);
                    let InstData::Phi { dst, .. } = *data else {
                        return Err(InterpError::MisplacedPhi(block));
                    };
                    let arg = data
                        .phi_args(func.pools())
                        .ok_or(InterpError::MisplacedPhi(block))?
                        .iter()
                        .find(|a| a.block == from)
                        .ok_or(InterpError::PhiMissingEdge { phi: dst, pred: from })?;
                    let value = read(&env, arg.value)?;
                    parallel_reads.push((dst, value));
                }
                for (dst, value) in parallel_reads {
                    env.insert(dst, value);
                }
            }

            for &inst in &func.block_insts(block)[func.first_non_phi(block)..] {
                steps += 1;
                if steps > self.fuel {
                    return Err(InterpError::FuelExhausted);
                }
                match func.inst(inst) {
                    InstData::Phi { .. } => return Err(InterpError::MisplacedPhi(block)),
                    InstData::Param { dst, index } => {
                        env.insert(*dst, args.get(*index as usize).copied().unwrap_or(0));
                    }
                    InstData::Const { dst, imm } => {
                        env.insert(*dst, *imm);
                    }
                    InstData::Unary { op, dst, arg } => {
                        let a = read(&env, *arg)?;
                        env.insert(*dst, op.eval(a));
                    }
                    InstData::Binary { op, dst, args } => {
                        let a = read(&env, args[0])?;
                        let b = read(&env, args[1])?;
                        env.insert(*dst, op.eval(a, b));
                    }
                    InstData::Cmp { op, dst, args } => {
                        let a = read(&env, args[0])?;
                        let b = read(&env, args[1])?;
                        env.insert(*dst, op.eval(a, b));
                    }
                    InstData::Copy { dst, src } => {
                        let v = read(&env, *src)?;
                        env.insert(*dst, v);
                    }
                    InstData::ParallelCopy { copies } => {
                        let reads: Vec<(Value, i64)> = func
                            .copy_list(*copies)
                            .iter()
                            .map(|c| read(&env, c.src).map(|v| (c.dst, v)))
                            .collect::<Result<_, _>>()?;
                        for (dst, v) in reads {
                            env.insert(dst, v);
                        }
                    }
                    InstData::Call { dst, callee, args } => {
                        let arg_values: Vec<i64> = func
                            .value_list(*args)
                            .iter()
                            .map(|&a| read(&env, a))
                            .collect::<Result<_, _>>()?;
                        let result = model_call(*callee, &arg_values);
                        trace.push(Event::Call { callee: *callee, args: arg_values, result });
                        if let Some(dst) = dst {
                            env.insert(*dst, result);
                        }
                    }
                    InstData::Load { dst, addr } => {
                        let a = read(&env, *addr)?;
                        env.insert(*dst, memory.get(&a).copied().unwrap_or(0));
                    }
                    InstData::Store { addr, value } => {
                        let a = read(&env, *addr)?;
                        let v = read(&env, *value)?;
                        memory.insert(a, v);
                        trace.push(Event::Store { addr: a, value: v });
                    }
                    InstData::Jump { dest } => {
                        pred = Some(block);
                        block = *dest;
                        continue 'blocks;
                    }
                    InstData::Branch { cond, then_dest, else_dest } => {
                        let c = read(&env, *cond)?;
                        pred = Some(block);
                        block = if c != 0 { *then_dest } else { *else_dest };
                        continue 'blocks;
                    }
                    InstData::BrDec { counter, dec, loop_dest, exit_dest } => {
                        let c = read(&env, *counter)?;
                        let d = c.wrapping_sub(1);
                        env.insert(*dec, d);
                        pred = Some(block);
                        block = if d != 0 { *loop_dest } else { *exit_dest };
                        continue 'blocks;
                    }
                    InstData::Return { value } => {
                        let returned = match value {
                            Some(v) => Some(read(&env, *v)?),
                            None => None,
                        };
                        return Ok(Observation { returned, trace, steps });
                    }
                }
            }
            return Err(InterpError::MissingTerminator(block));
        }
    }
}

fn read(env: &HashMap<Value, i64>, value: Value) -> Result<i64, ExecError> {
    env.get(&value).copied().ok_or(InterpError::UndefinedValue(value))
}

/// Deterministic model of an opaque call: mixes the callee id and arguments.
fn model_call(callee: u32, args: &[i64]) -> i64 {
    let mut acc = (callee as i64).wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64);
    for (i, &a) in args.iter().enumerate() {
        acc = acc.rotate_left(7).wrapping_add(a.wrapping_mul(31).wrapping_add(i as i64 + 1));
    }
    acc
}

/// Runs `func` on each argument vector of `inputs` and collects the
/// observations. Convenience for equivalence tests.
///
/// # Errors
/// Propagates the first execution error.
pub fn run_on_inputs(
    func: &Function,
    inputs: &[Vec<i64>],
    fuel: u64,
) -> Result<Vec<Observation>, ExecError> {
    let interp = Interpreter::new().with_fuel(fuel);
    inputs.iter().map(|args| interp.run(func, args)).collect()
}

/// Compares the observable behaviour (return value and event trace, not step
/// counts) of two observations.
pub fn same_behaviour(a: &Observation, b: &Observation) -> bool {
    a.returned == b.returned && a.trace == b.trace
}

/// Deterministic argument sets for differential runs: `num_sets` vectors of
/// `num_args` small integers in `[-20, 20]`, derived from `seed` with a
/// splitmix64 stream. The one generator shared by the differential
/// validator, the oracle property tests and the degradation suite, so "the
/// inputs we check on" means the same thing everywhere.
pub fn argument_sets(seed: u64, num_sets: usize, num_args: usize) -> Vec<Vec<i64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..num_sets).map(|_| (0..num_args).map(|_| (next() % 41) as i64 - 20).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{BinaryOp, CmpOp, CopyPair};

    #[test]
    fn argument_sets_are_deterministic_bounded_and_seed_sensitive() {
        let a = argument_sets(2009, 4, 3);
        assert_eq!(a, argument_sets(2009, 4, 3));
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|set| set.len() == 3));
        assert!(a.iter().flatten().all(|&v| (-20..=20).contains(&v)));
        assert_ne!(a, argument_sets(2010, 4, 3));
    }

    #[test]
    fn straightline_arithmetic() {
        let mut b = FunctionBuilder::new("arith", 2);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let y = b.param(1);
        let s = b.binary(BinaryOp::Add, x, y);
        let d = b.binary(BinaryOp::Mul, s, s);
        b.ret(Some(d));
        let f = b.finish();
        let obs = Interpreter::new().run(&f, &[3, 4]).unwrap();
        assert_eq!(obs.returned, Some(49));
        assert!(obs.trace.is_empty());
    }

    #[test]
    fn phi_selects_value_from_the_taken_edge() {
        let mut b = FunctionBuilder::new("select", 1);
        let entry = b.create_block();
        let t = b.create_block();
        let e = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        b.branch(p, t, e);
        b.switch_to_block(t);
        let a = b.iconst(100);
        b.jump(join);
        b.switch_to_block(e);
        let c = b.iconst(200);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(t, a), (e, c)]);
        b.ret(Some(m));
        let f = b.finish();
        assert_eq!(Interpreter::new().run(&f, &[1]).unwrap().returned, Some(100));
        assert_eq!(Interpreter::new().run(&f, &[0]).unwrap().returned, Some(200));
    }

    #[test]
    fn swap_phis_have_parallel_semantics() {
        // a = 1, b = 2; loop `n` times swapping (a, b); return a*10+b.
        let mut b = FunctionBuilder::new("swap", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let latch = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        let a1 = b.iconst(1);
        let b1 = b.iconst(2);
        b.jump(header);
        b.switch_to_block(header);
        let i_next = b.declare_value();
        let a2 = b.declare_value();
        let b2 = b.declare_value();
        let i = b.phi(vec![(entry, n), (latch, i_next)]);
        b.phi_to(a2, vec![(entry, a1), (latch, b2)]);
        b.phi_to(b2, vec![(entry, b1), (latch, a2)]);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, i, zero);
        b.branch(c, latch, exit);
        b.switch_to_block(latch);
        let one = b.iconst(1);
        b.func_mut().append_inst(
            latch,
            ossa_ir::InstData::Binary { op: BinaryOp::Sub, dst: i_next, args: [i, one] },
        );
        b.jump(header);
        b.switch_to_block(exit);
        let ten = b.iconst(10);
        let scaled = b.binary(BinaryOp::Mul, a2, ten);
        let packed = b.binary(BinaryOp::Add, scaled, b2);
        b.ret(Some(packed));
        let f = b.finish();
        ossa_ir::verify_ssa(&f).unwrap();
        // 0 iterations: (a, b) = (1, 2) -> 12. 1 iteration: (2, 1) -> 21.
        assert_eq!(Interpreter::new().run(&f, &[0]).unwrap().returned, Some(12));
        assert_eq!(Interpreter::new().run(&f, &[1]).unwrap().returned, Some(21));
        assert_eq!(Interpreter::new().run(&f, &[2]).unwrap().returned, Some(12));
    }

    #[test]
    fn parallel_copy_reads_before_writing() {
        let mut b = FunctionBuilder::new("parcopy", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let a = b.iconst(1);
        let c = b.iconst(2);
        let x = b.declare_value();
        let y = b.declare_value();
        b.parallel_copy(vec![CopyPair { dst: x, src: a }, CopyPair { dst: y, src: c }]);
        // Swap x and y through a parallel copy.
        b.parallel_copy(vec![CopyPair { dst: x, src: y }, CopyPair { dst: y, src: x }]);
        let ten = b.iconst(10);
        let sx = b.binary(BinaryOp::Mul, x, ten);
        let packed = b.binary(BinaryOp::Add, sx, y);
        b.ret(Some(packed));
        let f = b.finish();
        assert_eq!(Interpreter::new().run(&f, &[]).unwrap().returned, Some(21));
    }

    #[test]
    fn br_dec_loops_until_zero() {
        // Executes the body `n` times (counter decremented by the branch).
        let mut b = FunctionBuilder::new("brdec", 1);
        let entry = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        let zero = b.iconst(0);
        b.jump(body);
        b.switch_to_block(body);
        let acc_next = b.declare_value();
        let counter_next = b.declare_value();
        let acc = b.phi(vec![(entry, zero), (body, acc_next)]);
        let counter = b.phi(vec![(entry, n), (body, counter_next)]);
        let one = b.iconst(1);
        b.func_mut().append_inst(
            body,
            ossa_ir::InstData::Binary { op: BinaryOp::Add, dst: acc_next, args: [acc, one] },
        );
        b.func_mut().append_inst(
            body,
            ossa_ir::InstData::BrDec {
                counter,
                dec: counter_next,
                loop_dest: body,
                exit_dest: exit,
            },
        );
        b.switch_to_block(exit);
        b.ret(Some(acc_next));
        let f = b.finish();
        ossa_ir::verify_ssa(&f).unwrap();
        assert_eq!(Interpreter::new().run(&f, &[3]).unwrap().returned, Some(3));
        assert_eq!(Interpreter::new().run(&f, &[1]).unwrap().returned, Some(1));
    }

    #[test]
    fn calls_and_stores_are_traced() {
        let mut b = FunctionBuilder::new("effects", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let r = b.call(7, vec![x]);
        b.store(x, r);
        let loaded = b.load(x);
        b.ret(Some(loaded));
        let f = b.finish();
        let obs = Interpreter::new().run(&f, &[5]).unwrap();
        assert_eq!(obs.trace.len(), 2);
        let Event::Call { callee, result, .. } = &obs.trace[0] else { panic!() };
        assert_eq!(*callee, 7);
        assert_eq!(obs.returned, Some(*result));
        let Event::Store { addr, value } = &obs.trace[1] else { panic!() };
        assert_eq!(*addr, 5);
        assert_eq!(value, result);
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let mut b = FunctionBuilder::new("spin", 0);
        let entry = b.create_block();
        let looping = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        b.jump(looping);
        b.switch_to_block(looping);
        b.jump(looping);
        let f = b.finish();
        let err = Interpreter::new().with_fuel(100).run(&f, &[]).unwrap_err();
        assert_eq!(err, ExecError::FuelExhausted);
    }

    #[test]
    fn undefined_read_is_reported() {
        let mut b = FunctionBuilder::new("undef", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let ghost = b.declare_value();
        b.ret(Some(ghost));
        let f = b.finish();
        let err = Interpreter::new().run(&f, &[]).unwrap_err();
        assert!(matches!(err, ExecError::UndefinedValue(_)));
    }

    #[test]
    fn phi_in_entry_is_a_typed_error() {
        // A φ in the entry block is malformed (there is no incoming edge to
        // select by); the oracle must report it, not panic.
        let mut b = FunctionBuilder::new("phientry", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let c = b.iconst(1);
        let m = b.phi(vec![(entry, c)]);
        b.ret(Some(m));
        let f = b.finish();
        let err = Interpreter::new().run(&f, &[]).unwrap_err();
        assert_eq!(err, InterpError::PhiInEntry(entry));
    }

    #[test]
    fn phi_missing_edge_is_a_typed_error() {
        // The φ only covers the edge from `t`; arriving from `e` must report
        // the missing edge instead of panicking.
        let mut b = FunctionBuilder::new("phiedge", 1);
        let entry = b.create_block();
        let t = b.create_block();
        let e = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        b.branch(p, t, e);
        b.switch_to_block(t);
        let a = b.iconst(100);
        b.jump(join);
        b.switch_to_block(e);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(t, a)]);
        b.ret(Some(m));
        let f = b.finish();
        assert_eq!(Interpreter::new().run(&f, &[1]).unwrap().returned, Some(100));
        let err = Interpreter::new().run(&f, &[0]).unwrap_err();
        assert_eq!(err, InterpError::PhiMissingEdge { phi: m, pred: e });
    }

    #[test]
    fn same_behaviour_ignores_step_counts() {
        let a = Observation { returned: Some(1), trace: vec![], steps: 10 };
        let b = Observation { returned: Some(1), trace: vec![], steps: 99 };
        assert!(same_behaviour(&a, &b));
        let c = Observation { returned: Some(2), trace: vec![], steps: 10 };
        assert!(!same_behaviour(&a, &c));
    }

    #[test]
    fn run_on_inputs_collects_observations() {
        let mut b = FunctionBuilder::new("id", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.ret(Some(x));
        let f = b.finish();
        let obs = run_on_inputs(&f, &[vec![1], vec![2], vec![3]], 1000).unwrap();
        assert_eq!(obs.iter().map(|o| o.returned.unwrap()).collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
