//! Use-site index: for every value, where it is used.
//!
//! φ uses are attributed to the *end of the predecessor block* (position
//! `usize::MAX`), matching the parallel-copy semantics of φ-functions used
//! throughout the paper.
//!
//! The index is stored densely (one slot per value) because
//! [`UseSites::used_after_in_block`] sits on the hot path of every
//! live-range intersection query.

use ossa_ir::entity::{Block, SecondaryMap, Value};
use ossa_ir::{Function, InstData};

/// A single use of a value.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct UseSite {
    /// Block containing the use (for φ arguments, the predecessor block).
    pub block: Block,
    /// Position within the block; `usize::MAX` denotes a φ use at the end of
    /// the predecessor block.
    pub pos: usize,
}

impl UseSite {
    /// Returns `true` if this is a φ use placed at the end of a predecessor.
    pub fn is_phi_edge_use(&self) -> bool {
        self.pos == usize::MAX
    }
}

/// Index of all uses of every value in a function.
#[derive(Clone, Debug, Default)]
pub struct UseSites {
    sites: SecondaryMap<Value, Vec<UseSite>>,
}

impl UseSites {
    /// Builds the use index of `func`.
    pub fn compute(func: &Function) -> Self {
        let mut sites: SecondaryMap<Value, Vec<UseSite>> = SecondaryMap::new();
        sites.resize(func.num_values());
        for block in func.blocks() {
            for (pos, &inst) in func.block_insts(block).iter().enumerate() {
                match func.inst(inst) {
                    InstData::Phi { args, .. } => {
                        for arg in args {
                            sites[arg.value].push(UseSite { block: arg.block, pos: usize::MAX });
                        }
                    }
                    data => {
                        for value in data.uses() {
                            sites[value].push(UseSite { block, pos });
                        }
                    }
                }
            }
        }
        Self { sites }
    }

    /// All uses of `value` (empty slice if never used).
    #[inline]
    pub fn uses_of(&self, value: Value) -> &[UseSite] {
        self.sites.get(value)
    }

    /// Returns `true` if `value` has at least one use.
    pub fn is_used(&self, value: Value) -> bool {
        !self.sites.get(value).is_empty()
    }

    /// Returns `true` if `value` is used in `block` strictly after position
    /// `pos` (φ edge-uses at the end of the block count).
    #[inline]
    pub fn used_after_in_block(&self, value: Value, block: Block, pos: usize) -> bool {
        self.uses_of(value).iter().any(|site| site.block == block && site.pos > pos)
    }

    /// Number of values with at least one use.
    pub fn num_used_values(&self) -> usize {
        self.sites.iter().filter(|(_, sites)| !sites.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::BinaryOp;

    #[test]
    fn use_sites_record_positions_and_phi_edges() {
        let mut b = FunctionBuilder::new("uses", 1);
        let entry = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0); // pos 0
        let y = b.binary(BinaryOp::Add, x, x); // pos 1, uses x twice
        b.jump(join); // pos 2
        b.switch_to_block(join);
        let p = b.phi(vec![(entry, y)]);
        b.ret(Some(p));
        let f = b.finish();
        let uses = UseSites::compute(&f);

        let x_uses = uses.uses_of(x);
        assert_eq!(x_uses.len(), 2);
        assert!(x_uses.iter().all(|s| s.block == entry && s.pos == 1));

        let y_uses = uses.uses_of(y);
        assert_eq!(y_uses.len(), 1);
        assert!(y_uses[0].is_phi_edge_use());
        assert_eq!(y_uses[0].block, entry);

        assert!(uses.is_used(p));
        assert!(uses.used_after_in_block(x, entry, 0));
        assert!(!uses.used_after_in_block(x, entry, 1));
        assert!(uses.used_after_in_block(y, entry, 2)); // φ edge use at end
    }

    #[test]
    fn unused_value_has_no_sites() {
        let mut b = FunctionBuilder::new("unused", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let dead = b.iconst(1);
        b.ret(None);
        let f = b.finish();
        let uses = UseSites::compute(&f);
        assert!(!uses.is_used(dead));
        assert!(uses.uses_of(dead).is_empty());
        assert_eq!(uses.num_used_values(), 0);
    }
}
