//! Use-site index: for every value, where it is used.
//!
//! φ uses are attributed to the *end of the predecessor block* (position
//! `usize::MAX`), matching the parallel-copy semantics of φ-functions used
//! throughout the paper.
//!
//! The index is stored densely (one slot per value) because
//! [`UseSites::used_after_in_block`] sits on the hot path of every
//! live-range intersection query.

use ossa_ir::entity::{Block, Value};
use ossa_ir::Function;

/// A single use of a value.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct UseSite {
    /// Block containing the use (for φ arguments, the predecessor block).
    pub block: Block,
    /// Position within the block; `usize::MAX` denotes a φ use at the end of
    /// the predecessor block.
    pub pos: usize,
}

impl UseSite {
    /// Returns `true` if this is a φ use placed at the end of a predecessor.
    pub fn is_phi_edge_use(&self) -> bool {
        self.pos == usize::MAX
    }
}

/// Index of all uses of every value in a function, stored in compressed
/// sparse-row form: one flat site array plus per-value offsets. Building it
/// performs exactly three allocations regardless of function size (counts,
/// offsets, sites) instead of one `Vec` per used value.
#[derive(Clone, Debug, Default)]
pub struct UseSites {
    /// `offsets[v.index()] .. offsets[v.index() + 1]` indexes `sites`.
    offsets: Vec<u32>,
    /// All use sites, grouped by value, in block-traversal order per value.
    sites: Vec<UseSite>,
    /// Use-collection scratch of [`UseSites::compute_into`], kept so a
    /// recycled recomputation performs no allocation at all.
    scratch: Vec<Value>,
}

impl UseSites {
    /// Builds the use index of `func`.
    pub fn compute(func: &Function) -> Self {
        let mut this = Self::default();
        this.compute_into(func);
        this
    }

    /// Rebuilds the index for `func` in place, reusing the offset and site
    /// arrays of a previous (possibly different) function. Identical to
    /// [`UseSites::compute`] except for the heap traffic: the CSR arrays are
    /// recycled and the per-value counting pass runs inside the offset array
    /// itself (count → prefix-sum → cursor → shift), so a steady-state
    /// recomputation performs no allocation once the arrays have grown.
    pub fn compute_into(&mut self, func: &Function) {
        let num_values = func.num_values();
        let scratch = &mut self.scratch;
        let mut each_use = |func: &Function, f: &mut dyn FnMut(Value, Block, usize)| {
            for block in func.blocks() {
                for (pos, &inst) in func.block_insts(block).iter().enumerate() {
                    match func.inst_phi_args(inst) {
                        Some(args) => {
                            for arg in args {
                                f(arg.value, arg.block, usize::MAX);
                            }
                        }
                        None => {
                            scratch.clear();
                            func.collect_inst_uses(inst, scratch);
                            for &value in scratch.iter() {
                                f(value, block, pos);
                            }
                        }
                    }
                }
            }
        };
        let offsets = &mut self.offsets;
        offsets.clear();
        offsets.resize(num_values + 1, 0);
        each_use(func, &mut |value, _, _| offsets[value.index() + 1] += 1);
        for i in 0..num_values {
            offsets[i + 1] += offsets[i];
        }
        let total = offsets[num_values] as usize;
        let sites = &mut self.sites;
        sites.clear();
        sites.resize(total, UseSite { block: Block::from_index(0), pos: 0 });
        // `offsets[v]` (currently the start of v's range) doubles as the
        // write cursor; afterwards it holds v's end — one shift restores it.
        each_use(func, &mut |value, block, pos| {
            let slot = offsets[value.index()];
            offsets[value.index()] += 1;
            sites[slot as usize] = UseSite { block, pos };
        });
        for i in (1..=num_values).rev() {
            offsets[i] = offsets[i - 1];
        }
        offsets[0] = 0;
    }

    /// All uses of `value` (empty slice if never used).
    #[inline]
    pub fn uses_of(&self, value: Value) -> &[UseSite] {
        let i = value.index();
        match (self.offsets.get(i), self.offsets.get(i + 1)) {
            (Some(&lo), Some(&hi)) => &self.sites[lo as usize..hi as usize],
            _ => &[],
        }
    }

    /// Returns `true` if `value` has at least one use.
    pub fn is_used(&self, value: Value) -> bool {
        !self.uses_of(value).is_empty()
    }

    /// Returns `true` if `value` is used in `block` strictly after position
    /// `pos` (φ edge-uses at the end of the block count).
    #[inline]
    pub fn used_after_in_block(&self, value: Value, block: Block, pos: usize) -> bool {
        self.uses_of(value).iter().any(|site| site.block == block && site.pos > pos)
    }

    /// Number of values with at least one use.
    pub fn num_used_values(&self) -> usize {
        self.offsets.windows(2).filter(|w| w[1] > w[0]).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::BinaryOp;

    #[test]
    fn use_sites_record_positions_and_phi_edges() {
        let mut b = FunctionBuilder::new("uses", 1);
        let entry = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0); // pos 0
        let y = b.binary(BinaryOp::Add, x, x); // pos 1, uses x twice
        b.jump(join); // pos 2
        b.switch_to_block(join);
        let p = b.phi(vec![(entry, y)]);
        b.ret(Some(p));
        let f = b.finish();
        let uses = UseSites::compute(&f);

        let x_uses = uses.uses_of(x);
        assert_eq!(x_uses.len(), 2);
        assert!(x_uses.iter().all(|s| s.block == entry && s.pos == 1));

        let y_uses = uses.uses_of(y);
        assert_eq!(y_uses.len(), 1);
        assert!(y_uses[0].is_phi_edge_use());
        assert_eq!(y_uses[0].block, entry);

        assert!(uses.is_used(p));
        assert!(uses.used_after_in_block(x, entry, 0));
        assert!(!uses.used_after_in_block(x, entry, 1));
        assert!(uses.used_after_in_block(y, entry, 2)); // φ edge use at end
    }

    #[test]
    fn unused_value_has_no_sites() {
        let mut b = FunctionBuilder::new("unused", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let dead = b.iconst(1);
        b.ret(None);
        let f = b.finish();
        let uses = UseSites::compute(&f);
        assert!(!uses.is_used(dead));
        assert!(uses.uses_of(dead).is_empty());
        assert_eq!(uses.num_used_values(), 0);
    }
}
