//! Liveness-level analysis caching on top of [`ossa_ir::AnalysisManager`].
//!
//! [`FunctionAnalyses`] extends the CFG-level manager with the caches the
//! out-of-SSA translation and the register allocator consume: data-flow
//! liveness sets, the fast liveness checker and the per-value
//! definition/use index. Invalidation is two-level:
//!
//! * [`FunctionAnalyses::invalidate_instructions`] — instructions were
//!   inserted, removed or rewritten inside existing blocks. The liveness
//!   sets and the def/use index are dropped, but the CFG analyses *and the
//!   fast liveness precomputation* survive — the latter is the central
//!   engineering point of the `LiveCheck` option (its precomputation depends
//!   only on the CFG);
//! * [`FunctionAnalyses::invalidate_cfg`] — the block structure changed
//!   (edge splitting): everything is dropped.

use std::cell::OnceCell;

use ossa_ir::analysis::AnalysisManager;
use ossa_ir::{BlockFrequencies, ControlFlowGraph, DominatorTree, Function, LoopAnalysis};

use crate::check::FastLiveness;
use crate::intersect::LiveRangeInfo;
use crate::sets::LivenessSets;

/// Lazy cache of every analysis the out-of-SSA pipeline consumes for one
/// function, from the CFG up to liveness.
///
/// # Examples
///
/// ```
/// use ossa_ir::builder::FunctionBuilder;
/// use ossa_liveness::{BlockLiveness, FunctionAnalyses};
///
/// let mut b = FunctionBuilder::new("f", 1);
/// let entry = b.create_block();
/// b.set_entry(entry);
/// b.switch_to_block(entry);
/// let x = b.param(0);
/// let y = b.binary(ossa_ir::BinaryOp::Add, x, x);
/// b.ret(Some(y));
/// let func = b.finish();
///
/// let analyses = FunctionAnalyses::new();
/// assert!(!analyses.liveness_sets(&func).is_live_out(entry, y));
/// // Dominator tree and CFG were computed once and are now cached.
/// assert!(analyses.ir().is_cfg_cached());
/// ```
#[derive(Debug, Default)]
pub struct FunctionAnalyses {
    ir: AnalysisManager,
    liveness: OnceCell<LivenessSets>,
    fast: OnceCell<FastLiveness>,
    info: OnceCell<LiveRangeInfo>,
    /// Shape of the function the CFG caches were computed for — block count,
    /// entry block, and a hash of the CFG edges (stable under
    /// instruction-only mutation) — to catch, in debug builds, a cache being
    /// reused for a *different* function without invalidation, which would
    /// silently return the wrong analyses.
    stamp: std::cell::Cell<Option<(usize, ossa_ir::Block, u64)>>,
    /// Instruction-level shape (instruction and value counts) the
    /// instruction-dependent caches were computed for; cleared by
    /// [`FunctionAnalyses::invalidate_instructions`].
    inst_stamp: std::cell::Cell<Option<(usize, usize)>>,
}

impl FunctionAnalyses {
    /// Creates an empty cache; nothing is computed until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying CFG-level manager.
    pub fn ir(&self) -> &AnalysisManager {
        &self.ir
    }

    #[cfg(debug_assertions)]
    fn check_stamp(&self, func: &Function) {
        // FNV-style fold of the edge list; blocks and terminator targets do
        // not change under instruction-only mutation, so the stamp stays
        // valid exactly as long as the CFG-level caches do.
        let mut edges = 0xcbf2_9ce4_8422_2325u64;
        for block in func.blocks() {
            edges = (edges ^ block.index() as u64).wrapping_mul(0x1000_0000_01b3);
            for succ in func.successors(block) {
                edges = (edges ^ succ.index() as u64).wrapping_mul(0x1000_0000_01b3);
            }
        }
        let shape = (func.num_blocks(), func.entry(), edges);
        match self.stamp.get() {
            None => self.stamp.set(Some(shape)),
            Some(stamp) => debug_assert_eq!(
                stamp, shape,
                "FunctionAnalyses reused for a different function without invalidate_cfg()"
            ),
        }
    }

    #[cfg(not(debug_assertions))]
    fn check_stamp(&self, _func: &Function) {}

    #[cfg(debug_assertions)]
    fn check_inst_stamp(&self, func: &Function) {
        let shape = (func.num_insts(), func.num_values());
        match self.inst_stamp.get() {
            None => self.inst_stamp.set(Some(shape)),
            Some(stamp) => debug_assert_eq!(
                stamp, shape,
                "instructions changed without invalidate_instructions(); liveness and the \
                 def/use index are stale"
            ),
        }
    }

    #[cfg(not(debug_assertions))]
    fn check_inst_stamp(&self, _func: &Function) {}

    /// The control-flow graph, computed on first use.
    pub fn cfg(&self, func: &Function) -> &ControlFlowGraph {
        self.check_stamp(func);
        self.ir.cfg(func)
    }

    /// The dominator tree, computed on first use.
    pub fn domtree(&self, func: &Function) -> &DominatorTree {
        self.check_stamp(func);
        self.ir.domtree(func)
    }

    /// The natural-loop analysis, computed on first use.
    pub fn loops(&self, func: &Function) -> &LoopAnalysis {
        self.check_stamp(func);
        self.ir.loops(func)
    }

    /// The static block-frequency estimate, computed on first use.
    pub fn frequencies(&self, func: &Function) -> &BlockFrequencies {
        self.check_stamp(func);
        self.ir.frequencies(func)
    }

    /// Data-flow liveness sets, computed on first use.
    pub fn liveness_sets(&self, func: &Function) -> &LivenessSets {
        self.check_inst_stamp(func);
        self.cfg(func);
        self.liveness.get_or_init(|| LivenessSets::compute(func, self.ir.cfg(func)))
    }

    /// The CFG-only fast liveness checker, computed on first use.
    pub fn fast_liveness(&self, func: &Function) -> &FastLiveness {
        self.domtree(func);
        self.fast
            .get_or_init(|| FastLiveness::compute(func, self.ir.cfg(func), self.ir.domtree(func)))
    }

    /// The per-value definition and use index, computed on first use.
    pub fn live_range_info(&self, func: &Function) -> &LiveRangeInfo {
        self.check_inst_stamp(func);
        self.check_stamp(func);
        self.info.get_or_init(|| LiveRangeInfo::compute(func))
    }

    /// Drops the caches that depend on the instruction stream (liveness sets
    /// and the def/use index). The CFG analyses and the fast liveness
    /// precomputation stay valid: they only read block structure.
    pub fn invalidate_instructions(&mut self) {
        self.liveness.take();
        self.info.take();
        self.inst_stamp.set(None);
    }

    /// Drops every cached analysis. Must be called after mutations that
    /// change the block structure (edge splitting, new blocks) and before
    /// reusing the cache for a different function.
    pub fn invalidate_cfg(&mut self) {
        self.ir.invalidate_cfg();
        self.fast.take();
        self.stamp.set(None);
        self.invalidate_instructions();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockLiveness;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{BinaryOp, InstData};

    fn simple_function() -> Function {
        let mut b = FunctionBuilder::new("simple", 1);
        let entry = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let y = b.binary(BinaryOp::Add, x, x);
        b.jump(exit);
        b.switch_to_block(exit);
        b.ret(Some(y));
        b.finish()
    }

    #[test]
    fn caches_are_shared_and_lazily_built() {
        let func = simple_function();
        let analyses = FunctionAnalyses::new();
        let sets = analyses.liveness_sets(&func) as *const LivenessSets;
        assert_eq!(sets, analyses.liveness_sets(&func) as *const LivenessSets);
        let info = analyses.live_range_info(&func) as *const LiveRangeInfo;
        assert_eq!(info, analyses.live_range_info(&func) as *const LiveRangeInfo);
    }

    #[test]
    fn instruction_invalidation_keeps_fast_liveness() {
        let mut func = simple_function();
        let mut analyses = FunctionAnalyses::new();
        let before = analyses.fast_liveness(&func) as *const FastLiveness;
        let _ = analyses.liveness_sets(&func);

        // Insert a copy: instruction-level mutation only.
        let entry = func.entry();
        let x = func.values().next().unwrap();
        let clone = func.new_value();
        func.insert_inst(entry, 1, InstData::Copy { dst: clone, src: x });
        analyses.invalidate_instructions();

        // The fast checker is the same cached object; liveness sets and the
        // def/use index are recomputed and see the new instruction.
        assert_eq!(before, analyses.fast_liveness(&func) as *const FastLiveness);
        assert!(analyses.live_range_info(&func).def(clone).is_some());
        assert!(analyses.live_range_info(&func).uses().is_used(x));
        let exit = func.blocks().nth(1).unwrap();
        let y = Function::values(&func).nth(1).unwrap();
        assert!(analyses.liveness_sets(&func).is_live_in(exit, y));
    }

    #[test]
    fn cfg_invalidation_drops_everything() {
        let func = simple_function();
        let mut analyses = FunctionAnalyses::new();
        let _ = analyses.fast_liveness(&func);
        assert!(analyses.ir().is_cfg_cached());
        analyses.invalidate_cfg();
        assert!(!analyses.ir().is_cfg_cached());
    }
}
