//! Liveness-level analysis caching on top of [`ossa_ir::AnalysisManager`].
//!
//! [`FunctionAnalyses`] extends the CFG-level manager with the caches the
//! out-of-SSA translation and the register allocator consume: data-flow
//! liveness sets, the fast liveness checker and the per-value
//! definition/use index. Invalidation is two-level:
//!
//! * [`FunctionAnalyses::invalidate_instructions`] — instructions were
//!   inserted, removed or rewritten inside existing blocks. The liveness
//!   sets and the def/use index are dropped, but the CFG analyses *and the
//!   fast liveness precomputation* survive — the latter is the central
//!   engineering point of the `LiveCheck` option (its precomputation depends
//!   only on the CFG);
//! * [`FunctionAnalyses::invalidate_cfg`] — the block structure changed
//!   (edge splitting): everything is dropped.

use std::cell::{Cell, OnceCell};

use ossa_ir::analysis::{AnalysisManager, IrAnalysisCounts};
use ossa_ir::{
    BlockFrequencies, ControlFlowGraph, DominanceFrontiers, DominatorTree, Function, LoopAnalysis,
};

use crate::check::FastLiveness;
use crate::intersect::LiveRangeInfo;
use crate::sets::LivenessSets;

/// Cumulative compute counters of one [`FunctionAnalyses`]: the CFG-level
/// counters of the underlying [`AnalysisManager`] plus the liveness-level
/// analyses and the number of instruction versions seen.
///
/// A correctly threaded pipeline maintains, for the *same* function:
///
/// * `fast_liveness <= ir.cfg_versions` — the fast checker's precomputation
///   only depends on the CFG, so it is computed at most once per CFG
///   version;
/// * `liveness_sets <= inst_versions` and `live_range_info <= inst_versions`
///   — the instruction-dependent analyses are computed at most once per
///   instruction version.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisCounts {
    /// CFG-level counters of the underlying manager.
    pub ir: IrAnalysisCounts,
    /// Number of [`LivenessSets`] computations.
    pub liveness_sets: u64,
    /// Number of [`FastLiveness`] computations.
    pub fast_liveness: u64,
    /// Number of [`LiveRangeInfo`] computations.
    pub live_range_info: u64,
    /// Number of instruction versions seen (1 + number of instruction-level
    /// invalidations; CFG invalidations count too, since they imply one).
    pub inst_versions: u64,
    /// Number of incremental per-block liveness repairs performed
    /// ([`FunctionAnalyses::invalidate_instructions_in_blocks`] with cached
    /// sets): instruction versions whose liveness was repaired rather than
    /// recomputed whole-function.
    pub liveness_incremental_repairs: u64,
    /// Total number of blocks recomputed across all incremental repairs
    /// (the sum of the repair-region sizes). `liveness_block_recomputes /
    /// liveness_incremental_repairs` being well below the function's block
    /// count is the proof that a single-block copy insertion no longer pays
    /// a whole-function liveness recompute.
    pub liveness_block_recomputes: u64,
}

/// Internal mutable half of [`AnalysisCounts`]: the liveness-level compute
/// counters, bumped behind a `Cell` from the `&self` accessors.
#[derive(Clone, Copy, Debug, Default)]
struct LivenessCounts {
    liveness_sets: u64,
    fast_liveness: u64,
    live_range_info: u64,
    inst_invalidations: u64,
    liveness_incremental_repairs: u64,
    liveness_block_recomputes: u64,
}

/// Lazy cache of every analysis the out-of-SSA pipeline consumes for one
/// function, from the CFG up to liveness.
///
/// # Examples
///
/// ```
/// use ossa_ir::builder::FunctionBuilder;
/// use ossa_liveness::{BlockLiveness, FunctionAnalyses};
///
/// let mut b = FunctionBuilder::new("f", 1);
/// let entry = b.create_block();
/// b.set_entry(entry);
/// b.switch_to_block(entry);
/// let x = b.param(0);
/// let y = b.binary(ossa_ir::BinaryOp::Add, x, x);
/// b.ret(Some(y));
/// let func = b.finish();
///
/// let analyses = FunctionAnalyses::new();
/// assert!(!analyses.liveness_sets(&func).is_live_out(entry, y));
/// // Dominator tree and CFG were computed once and are now cached.
/// assert!(analyses.ir().is_cfg_cached());
/// ```
#[derive(Default)]
pub struct FunctionAnalyses {
    ir: AnalysisManager,
    liveness: OnceCell<LivenessSets>,
    fast: OnceCell<FastLiveness>,
    info: OnceCell<LiveRangeInfo>,
    /// Storage of an invalidated fast-liveness checker, recycled by the next
    /// computation (the checker's per-block bit-sets are the largest
    /// allocation of the default translation configuration).
    spare_fast: Cell<Option<FastLiveness>>,
    /// Storage of invalidated liveness sets, recycled by the next
    /// computation. Liveness sets are dropped on *every* instruction
    /// version, so without this slot the Graph/InterCheck engine variants
    /// reallocate two bit-sets per block per version.
    spare_liveness: Cell<Option<LivenessSets>>,
    /// Storage of an invalidated def/use index, recycled likewise (the index
    /// is recomputed on every instruction version in all configurations).
    spare_info: Cell<Option<LiveRangeInfo>>,
    /// Cached reducibility verdict of the current CFG version — one O(edges)
    /// scan per CFG, shared by every consumer that must decide between the
    /// fast liveness checker and the data-flow sets.
    reducible: Cell<Option<bool>>,
    /// Liveness-level compute counters; the CFG-level ones live in `ir`.
    counts: Cell<LivenessCounts>,
    /// Shape of the function the CFG caches were computed for — block count,
    /// entry block, and a hash of the CFG edges (stable under
    /// instruction-only mutation) — to catch, in debug builds, a cache being
    /// reused for a *different* function without invalidation, which would
    /// silently return the wrong analyses.
    stamp: std::cell::Cell<Option<(usize, ossa_ir::Block, u64)>>,
    /// Instruction-level shape (instruction and value counts) the
    /// instruction-dependent caches were computed for; cleared by
    /// [`FunctionAnalyses::invalidate_instructions`].
    inst_stamp: std::cell::Cell<Option<(usize, usize)>>,
}

impl std::fmt::Debug for FunctionAnalyses {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionAnalyses")
            .field("ir", &self.ir)
            .field("liveness", &self.liveness)
            .field("fast", &self.fast)
            .field("info", &self.info)
            .field("counts", &self.counts.get())
            .finish_non_exhaustive()
    }
}

impl FunctionAnalyses {
    /// Creates an empty cache; nothing is computed until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying CFG-level manager.
    pub fn ir(&self) -> &AnalysisManager {
        &self.ir
    }

    /// The cumulative compute counters, CFG-level and liveness-level (see
    /// [`AnalysisCounts`]).
    pub fn counts(&self) -> AnalysisCounts {
        let counts = self.counts.get();
        AnalysisCounts {
            ir: self.ir.counts(),
            liveness_sets: counts.liveness_sets,
            fast_liveness: counts.fast_liveness,
            live_range_info: counts.live_range_info,
            inst_versions: counts.inst_invalidations + 1,
            liveness_incremental_repairs: counts.liveness_incremental_repairs,
            liveness_block_recomputes: counts.liveness_block_recomputes,
        }
    }

    fn bump(&self, f: impl FnOnce(&mut LivenessCounts)) {
        let mut counts = self.counts.get();
        f(&mut counts);
        self.counts.set(counts);
    }

    #[cfg(debug_assertions)]
    fn check_stamp(&self, func: &Function) {
        // FNV-style fold of the edge list; blocks and terminator targets do
        // not change under instruction-only mutation, so the stamp stays
        // valid exactly as long as the CFG-level caches do.
        let mut edges = 0xcbf2_9ce4_8422_2325u64;
        for block in func.blocks() {
            edges = (edges ^ block.index() as u64).wrapping_mul(0x1000_0000_01b3);
            for succ in func.successors(block) {
                edges = (edges ^ succ.index() as u64).wrapping_mul(0x1000_0000_01b3);
            }
        }
        let shape = (func.num_blocks(), func.entry(), edges);
        match self.stamp.get() {
            None => self.stamp.set(Some(shape)),
            Some(stamp) => debug_assert_eq!(
                stamp, shape,
                "FunctionAnalyses reused for a different function without invalidate_cfg()"
            ),
        }
    }

    #[cfg(not(debug_assertions))]
    fn check_stamp(&self, _func: &Function) {}

    #[cfg(debug_assertions)]
    fn check_inst_stamp(&self, func: &Function) {
        let shape = (func.num_insts(), func.num_values());
        match self.inst_stamp.get() {
            None => self.inst_stamp.set(Some(shape)),
            Some(stamp) => debug_assert_eq!(
                stamp, shape,
                "instructions changed without invalidate_instructions(); liveness and the \
                 def/use index are stale"
            ),
        }
    }

    #[cfg(not(debug_assertions))]
    fn check_inst_stamp(&self, _func: &Function) {}

    /// The control-flow graph, computed on first use.
    pub fn cfg(&self, func: &Function) -> &ControlFlowGraph {
        self.check_stamp(func);
        self.ir.cfg(func)
    }

    /// The dominator tree, computed on first use.
    pub fn domtree(&self, func: &Function) -> &DominatorTree {
        self.check_stamp(func);
        self.ir.domtree(func)
    }

    /// The dominance frontiers, computed on first use.
    pub fn frontiers(&self, func: &Function) -> &DominanceFrontiers {
        self.check_stamp(func);
        self.ir.frontiers(func)
    }

    /// The natural-loop analysis, computed on first use.
    pub fn loops(&self, func: &Function) -> &LoopAnalysis {
        self.check_stamp(func);
        self.ir.loops(func)
    }

    /// The static block-frequency estimate, computed on first use.
    pub fn frequencies(&self, func: &Function) -> &BlockFrequencies {
        self.check_stamp(func);
        self.ir.frequencies(func)
    }

    /// Data-flow liveness sets, computed on first use, recycling the storage
    /// of a previously invalidated computation when available.
    pub fn liveness_sets(&self, func: &Function) -> &LivenessSets {
        self.check_inst_stamp(func);
        self.cfg(func);
        self.liveness.get_or_init(|| {
            self.bump(|c| c.liveness_sets += 1);
            let cfg = self.ir.cfg(func);
            match self.spare_liveness.take() {
                Some(mut sets) => {
                    sets.compute_into(func, cfg);
                    sets
                }
                None => LivenessSets::compute(func, cfg),
            }
        })
    }

    /// Returns `true` if the function's reachable CFG is reducible (every
    /// retreating edge's target dominates its source). Computed on first use
    /// per CFG version and cached — the pipeline consults this before every
    /// `FastLiveness`-backed translation, since the fast checker's reduced
    /// graph is only acyclic (hence only *sound*) on reducible CFGs.
    pub fn is_reducible(&self, func: &Function) -> bool {
        if let Some(verdict) = self.reducible.get() {
            return verdict;
        }
        let verdict = self.cfg(func).is_reducible(self.domtree(func));
        self.reducible.set(Some(verdict));
        verdict
    }

    /// The CFG-only fast liveness checker, computed on first use, recycling
    /// the storage of a previously invalidated checker when available.
    pub fn fast_liveness(&self, func: &Function) -> &FastLiveness {
        self.domtree(func);
        self.fast.get_or_init(|| {
            self.bump(|c| c.fast_liveness += 1);
            let cfg = self.ir.cfg(func);
            let domtree = self.ir.domtree(func);
            match self.spare_fast.take() {
                Some(mut fast) => {
                    fast.recompute(func, cfg, domtree);
                    fast
                }
                None => FastLiveness::compute(func, cfg, domtree),
            }
        })
    }

    /// The per-value definition and use index, computed on first use,
    /// recycling the storage of a previously invalidated index when
    /// available.
    pub fn live_range_info(&self, func: &Function) -> &LiveRangeInfo {
        self.check_inst_stamp(func);
        self.check_stamp(func);
        self.info.get_or_init(|| {
            self.bump(|c| c.live_range_info += 1);
            match self.spare_info.take() {
                Some(mut info) => {
                    info.recompute(func);
                    info
                }
                None => LiveRangeInfo::compute(func),
            }
        })
    }

    /// Drops the caches that depend on the instruction stream (liveness sets
    /// and the def/use index). The CFG analyses and the fast liveness
    /// precomputation stay valid: they only read block structure. The
    /// dropped analyses' storage moves into spare slots and is recycled by
    /// the next computation, so a translation pipeline that invalidates per
    /// phase does not reallocate them per instruction version.
    pub fn invalidate_instructions(&mut self) {
        if let Some(sets) = self.liveness.take() {
            self.spare_liveness.set(Some(sets));
        }
        if let Some(info) = self.info.take() {
            self.spare_info.set(Some(info));
        }
        self.inst_stamp.set(None);
        self.bump(|c| c.inst_invalidations += 1);
    }

    /// Declares instruction-only mutations confined to the listed blocks —
    /// the per-block half of the instruction-version invalidation contract.
    ///
    /// The def/use index is dropped (and recycled) like under
    /// [`FunctionAnalyses::invalidate_instructions`], but cached liveness
    /// sets are *repaired in place* by [`LivenessSets::update_blocks`]
    /// instead of being recomputed whole-function: only the dirty blocks'
    /// transfer functions are rebuilt and only the blocks whose live-in can
    /// transitively change (the dirty blocks' predecessor closure) are
    /// re-solved. The repaired sets are bit-identical to a full recompute.
    ///
    /// `blocks` must list every block whose instruction stream changed since
    /// the sets were (re)computed; the block structure must be unchanged
    /// (otherwise call [`FunctionAnalyses::invalidate_cfg`]). `func` is the
    /// already-mutated function.
    pub fn invalidate_instructions_in_blocks(
        &mut self,
        func: &Function,
        blocks: &[ossa_ir::Block],
    ) {
        if let Some(mut sets) = self.liveness.take() {
            let cfg = self.ir.cfg(func);
            let region = sets.update_blocks(func, cfg, blocks);
            self.bump(|c| {
                c.liveness_incremental_repairs += 1;
                c.liveness_block_recomputes += region as u64;
            });
            // Not `get_or_init`: the cell was just emptied by `take`.
            let _ = self.liveness.set(sets);
        }
        if let Some(info) = self.info.take() {
            self.spare_info.set(Some(info));
        }
        self.inst_stamp.set(None);
        self.bump(|c| c.inst_invalidations += 1);
    }

    /// Drops every cached analysis. Must be called after mutations that
    /// change the block structure (edge splitting, new blocks) and before
    /// reusing the cache for a different function.
    ///
    /// The storage of the dropped CFG-level analyses and of the fast
    /// liveness checker is kept and recycled by the next computation, so a
    /// corpus driver can reuse one cache across many functions without
    /// re-allocating per function.
    pub fn invalidate_cfg(&mut self) {
        self.ir.invalidate_cfg();
        if let Some(fast) = self.fast.take() {
            self.spare_fast.set(Some(fast));
        }
        self.reducible.set(None);
        self.stamp.set(None);
        self.invalidate_instructions();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockLiveness;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{BinaryOp, InstData};

    fn simple_function() -> Function {
        let mut b = FunctionBuilder::new("simple", 1);
        let entry = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let y = b.binary(BinaryOp::Add, x, x);
        b.jump(exit);
        b.switch_to_block(exit);
        b.ret(Some(y));
        b.finish()
    }

    #[test]
    fn caches_are_shared_and_lazily_built() {
        let func = simple_function();
        let analyses = FunctionAnalyses::new();
        let sets = analyses.liveness_sets(&func) as *const LivenessSets;
        assert_eq!(sets, analyses.liveness_sets(&func) as *const LivenessSets);
        let info = analyses.live_range_info(&func) as *const LiveRangeInfo;
        assert_eq!(info, analyses.live_range_info(&func) as *const LiveRangeInfo);
    }

    #[test]
    fn instruction_invalidation_keeps_fast_liveness() {
        let mut func = simple_function();
        let mut analyses = FunctionAnalyses::new();
        let before = analyses.fast_liveness(&func) as *const FastLiveness;
        let _ = analyses.liveness_sets(&func);

        // Insert a copy: instruction-level mutation only.
        let entry = func.entry();
        let x = func.values().next().unwrap();
        let clone = func.new_value();
        func.insert_inst(entry, 1, InstData::Copy { dst: clone, src: x });
        analyses.invalidate_instructions();

        // The fast checker is the same cached object; liveness sets and the
        // def/use index are recomputed and see the new instruction.
        assert_eq!(before, analyses.fast_liveness(&func) as *const FastLiveness);
        assert!(analyses.live_range_info(&func).def(clone).is_some());
        assert!(analyses.live_range_info(&func).uses().is_used(x));
        let exit = func.blocks().nth(1).unwrap();
        let y = Function::values(&func).nth(1).unwrap();
        assert!(analyses.liveness_sets(&func).is_live_in(exit, y));
    }

    #[test]
    fn cfg_invalidation_drops_everything() {
        let func = simple_function();
        let mut analyses = FunctionAnalyses::new();
        let _ = analyses.fast_liveness(&func);
        assert!(analyses.ir().is_cfg_cached());
        analyses.invalidate_cfg();
        assert!(!analyses.ir().is_cfg_cached());
    }

    #[test]
    fn recycled_fast_liveness_matches_fresh_computation() {
        // Reusing one cache across two different functions (the streaming
        // engine's per-worker pattern) recycles the checker storage; queries
        // and the reported footprint must match a fresh computation exactly.
        let mut b = FunctionBuilder::new("loop", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        b.jump(header);
        b.switch_to_block(header);
        b.branch(n, body, exit);
        b.switch_to_block(body);
        b.jump(header);
        b.switch_to_block(exit);
        b.ret(Some(n));
        let looped = b.finish();
        let simple = simple_function();

        let mut analyses = FunctionAnalyses::new();
        for func in [&looped, &simple, &looped] {
            analyses.invalidate_cfg();
            let fresh = FastLiveness::of(func);
            let cached = analyses.fast_liveness(func);
            assert_eq!(cached.footprint_bytes(), fresh.footprint_bytes());
            let info = LiveRangeInfo::compute(func);
            let cfg = analyses.ir().cfg(func);
            let domtree = analyses.ir().domtree(func);
            for block in func.blocks() {
                for value in func.values() {
                    assert_eq!(
                        cached.is_live_in_query(domtree, &info, block, value),
                        fresh.is_live_in_query(domtree, &info, block, value),
                        "live-in mismatch for {value} at {block}"
                    );
                    assert_eq!(
                        cached.is_live_out_query(cfg, domtree, &info, block, value),
                        fresh.is_live_out_query(cfg, domtree, &info, block, value),
                        "live-out mismatch for {value} at {block}"
                    );
                }
            }
        }
    }

    #[test]
    fn compute_counters_track_versions() {
        let mut func = simple_function();
        let mut analyses = FunctionAnalyses::new();
        let counts = analyses.counts();
        assert_eq!(counts.ir.cfg_versions, 1);
        assert_eq!(counts.inst_versions, 1);
        assert_eq!(counts.liveness_sets, 0);

        let _ = analyses.liveness_sets(&func);
        let _ = analyses.liveness_sets(&func);
        let _ = analyses.fast_liveness(&func);
        assert_eq!(analyses.counts().liveness_sets, 1);
        assert_eq!(analyses.counts().fast_liveness, 1);

        // Instruction-only mutation: new instruction version, CFG version
        // unchanged, the fast checker is *not* recomputed.
        let entry = func.entry();
        let x = func.values().next().unwrap();
        let clone = func.new_value();
        func.insert_inst(entry, 1, InstData::Copy { dst: clone, src: x });
        analyses.invalidate_instructions();
        let _ = analyses.liveness_sets(&func);
        let _ = analyses.fast_liveness(&func);
        let counts = analyses.counts();
        assert_eq!(counts.inst_versions, 2);
        assert_eq!(counts.ir.cfg_versions, 1);
        assert_eq!(counts.liveness_sets, 2);
        assert_eq!(counts.fast_liveness, 1);

        // CFG invalidation: everything recomputes exactly once more.
        analyses.invalidate_cfg();
        let _ = analyses.fast_liveness(&func);
        let counts = analyses.counts();
        assert_eq!(counts.ir.cfg_versions, 2);
        assert_eq!(counts.fast_liveness, 2);
        assert_eq!(counts.ir.cfg, 2);
        assert_eq!(counts.ir.domtree, 2);
    }
}
