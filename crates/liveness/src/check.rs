//! Fast liveness *checking* without liveness sets.
//!
//! This is the reproduction of the query-based liveness of Boissinot et al.,
//! "Fast Liveness Checking for SSA-Form Programs" (CGO 2008), which the
//! out-of-SSA paper uses as its `LiveCheck` option. The pre-computed data
//! depends only on the control-flow graph (two bit-sets per basic block), so
//! it stays valid while instructions are inserted or removed — exactly the
//! property the out-of-SSA translation needs when it inserts copies. The
//! per-value part of a query (definition site, use sites) is *not* stored
//! here: it is read from a shared [`LiveRangeInfo`], which the analysis
//! manager invalidates independently when instructions change.
//!
//! The query `is_live_in(q, a)` is answered from:
//!
//! * `reduced_reach[q]` — blocks reachable from `q` using only *forward*
//!   edges (back edges, whose target dominates their source, are removed),
//! * `back_targets[q]` — the transitive closure of back-edge targets
//!   reachable from `q`.
//!
//! `a` is live-in at `q` iff the definition of `a` strictly dominates `q`
//! (SSA live ranges live in the dominance region of their definition) and
//! some use of `a` is reachable from `q`, or from a back-edge target
//! dominated by the definition, in the reduced graph. φ uses count at the
//! end of their predecessor block.
//!
//! The construction assumes a *reducible* CFG (every retreating edge has a
//! target that dominates its source). The synthetic workloads of
//! `ossa-cfggen` and all hand-written tests are reducible; the data-flow
//! [`crate::sets::LivenessSets`] remains available for arbitrary graphs.

use ossa_ir::entity::{Block, EntitySet, SecondaryMap, Value};
use ossa_ir::{ControlFlowGraph, DominatorTree, Function};

use crate::intersect::LiveRangeInfo;
use crate::uses::UseSite;
use crate::BlockLiveness;

/// Query-based liveness checker (the paper's `LiveCheck`).
///
/// Holds only the CFG-dependent precomputation; per-value definition and use
/// information comes from the [`LiveRangeInfo`] passed to each query.
#[derive(Clone, Debug, Default)]
pub struct FastLiveness {
    /// Reachability over forward (non-back) edges, including the block itself.
    reduced_reach: SecondaryMap<Block, EntitySet<Block>>,
    /// Transitive closure of back-edge targets reachable from each block.
    back_targets: SecondaryMap<Block, EntitySet<Block>>,
    num_blocks: usize,
    /// Edge-classification and fixpoint working storage, kept so a recycled
    /// checker ([`FastLiveness::recompute`]) performs no per-block
    /// allocation; never read after the computation finishes.
    scratch: CheckScratch,
}

/// The recycled working storage of one checker computation.
#[derive(Clone, Debug, Default)]
struct CheckScratch {
    forward_succs: SecondaryMap<Block, Vec<Block>>,
    back_edge_targets_of: SecondaryMap<Block, Vec<Block>>,
    direct_targets: SecondaryMap<Block, Vec<Block>>,
    post_order: Vec<Block>,
    set: EntitySet<Block>,
}

/// Clears every list slot of a recycled per-block map and sizes it for
/// `num_blocks`, keeping the per-slot buffers (also beyond `num_blocks`, so
/// a later, larger function reuses them — the per-slot reset is O(1)).
fn reset_block_lists(map: &mut SecondaryMap<Block, Vec<Block>>, num_blocks: usize) {
    for list in map.values_mut() {
        list.clear();
    }
    map.resize(num_blocks);
}

impl FastLiveness {
    /// Builds the checker from the CFG and dominator tree alone.
    pub fn compute(func: &Function, cfg: &ControlFlowGraph, domtree: &DominatorTree) -> Self {
        let mut this = Self::default();
        this.recompute(func, cfg, domtree);
        this
    }

    /// Recomputes the checker in place, reusing the per-block bit-sets and
    /// working storage of a previous computation (possibly of a different
    /// function). The result — including the reported
    /// [`FastLiveness::footprint_bytes`] — is indistinguishable from
    /// [`FastLiveness::compute`]; only the heap traffic differs.
    pub fn recompute(&mut self, func: &Function, cfg: &ControlFlowGraph, domtree: &DominatorTree) {
        let num_blocks = func.num_blocks();
        // Reset every materialized slot but keep its word buffer (the reset
        // is O(1)); a later, larger function reuses the retained bit-sets.
        for set in self.reduced_reach.values_mut() {
            set.reset();
        }
        for set in self.back_targets.values_mut() {
            set.reset();
        }
        self.reduced_reach.resize(num_blocks);
        self.back_targets.resize(num_blocks);
        self.num_blocks = num_blocks;

        // Classify edges: an edge s -> t is a back edge when t dominates s.
        let forward_succs = &mut self.scratch.forward_succs;
        let back_edge_targets_of = &mut self.scratch.back_edge_targets_of;
        reset_block_lists(forward_succs, num_blocks);
        reset_block_lists(back_edge_targets_of, num_blocks);
        for &block in cfg.reverse_post_order() {
            for &succ in cfg.succs(block) {
                if domtree.dominates(succ, block) {
                    back_edge_targets_of[block].push(succ);
                } else {
                    forward_succs[block].push(succ);
                }
            }
        }

        // Reduced reachability: process blocks in reverse of the reverse
        // post-order (i.e. post-order) so successors are ready first. The
        // reduced graph is acyclic for reducible CFGs, so each stored set is
        // final when written and successor sets can be unioned in directly
        // (the seed cloned every successor set before the union).
        let reduced_reach = &mut self.reduced_reach;
        let post_order = &mut self.scratch.post_order;
        post_order.clear();
        post_order.extend(cfg.post_order());
        let scratch = &mut self.scratch.set;
        scratch.reset();
        for &block in &*post_order {
            scratch.clear();
            scratch.insert(block);
            for &succ in &forward_succs[block] {
                scratch.insert(succ);
                scratch.union_with(&reduced_reach[succ]);
            }
            reduced_reach[block].clone_from_set(scratch);
        }

        // Back-edge target closure: T[q] = ∪ { {t} ∪ T[t] | s ∈ R[q], (s→t) back edge }.
        // The direct targets D[q] = { t | s ∈ R[q], (s→t) back edge } depend
        // only on the (final) reduced reachability, so they are computed once
        // instead of per fixpoint pass; the fixpoint itself then runs in
        // place through one reusable scratch bit-set — no per-pass clones.
        let direct_targets = &mut self.scratch.direct_targets;
        reset_block_lists(direct_targets, num_blocks);
        for &block in cfg.reverse_post_order() {
            let targets = &mut direct_targets[block];
            for s in reduced_reach[block].iter() {
                for &t in &back_edge_targets_of[s] {
                    if !targets.contains(&t) {
                        targets.push(t);
                    }
                }
            }
        }
        let back_targets = &mut self.back_targets;
        let mut changed = true;
        while changed {
            crate::fuel::fixpoint_tick();
            changed = false;
            for &block in cfg.reverse_post_order() {
                scratch.clear();
                for &t in &direct_targets[block] {
                    scratch.insert(t);
                    scratch.union_with(&back_targets[t]);
                }
                changed |= back_targets[block].union_with(scratch);
            }
        }
    }

    /// Builds the checker, computing CFG and dominator tree internally.
    pub fn of(func: &Function) -> Self {
        let cfg = ControlFlowGraph::compute(func);
        let domtree = DominatorTree::compute(func, &cfg);
        Self::compute(func, &cfg, &domtree)
    }

    fn use_reachable_from(
        &self,
        domtree: &DominatorTree,
        q: Block,
        def_block: Block,
        uses: &[UseSite],
    ) -> bool {
        // Candidate source blocks: q plus every back-edge target reachable
        // from q that stays inside the dominance region of the definition.
        // A use is "reached" if it lies in the reduced reachability of one of
        // those sources. Uses in the definition block itself only count when
        // the query starts there via a cycle, which the back-target sources
        // capture.
        let hit = |source: Block| -> bool {
            let reach = &self.reduced_reach[source];
            uses.iter().any(|site| reach.contains(site.block))
        };
        if hit(q) {
            return true;
        }
        for t in self.back_targets[q].iter() {
            if t != def_block && domtree.strictly_dominates(def_block, t) && hit(t) {
                return true;
            }
        }
        false
    }

    /// Returns `true` if `value` is live at the entry of `block`, reading the
    /// definition and use sites from `info`.
    pub fn is_live_in_query(
        &self,
        domtree: &DominatorTree,
        info: &LiveRangeInfo,
        block: Block,
        value: Value,
    ) -> bool {
        let Some(def) = info.def(value) else { return false };
        if def.block == block || !domtree.strictly_dominates(def.block, block) {
            return false;
        }
        let uses = info.uses().uses_of(value);
        if uses.is_empty() {
            return false;
        }
        self.use_reachable_from(domtree, block, def.block, uses)
    }

    /// Returns `true` if `value` is live at the exit of `block`.
    pub fn is_live_out_query(
        &self,
        cfg: &ControlFlowGraph,
        domtree: &DominatorTree,
        info: &LiveRangeInfo,
        block: Block,
        value: Value,
    ) -> bool {
        // φ uses on outgoing edges make the value live-out directly; the use
        // index records them at the end of the predecessor block, so no walk
        // over the successors' φs (and no per-query allocation) is needed.
        if info.uses().uses_of(value).iter().any(|s| s.block == block && s.is_phi_edge_use()) {
            return true;
        }
        for &succ in cfg.succs(block) {
            if self.is_live_in_query(domtree, info, succ, value) {
                return true;
            }
        }
        // A value defined in `block` (or live-through) is live-out only via
        // successors, handled above.
        false
    }

    /// Bundles this checker with the analyses its queries need, yielding a
    /// [`BlockLiveness`] oracle.
    pub fn query<'a>(
        &'a self,
        cfg: &'a ControlFlowGraph,
        domtree: &'a DominatorTree,
        info: &'a LiveRangeInfo,
    ) -> FastLivenessQuery<'a> {
        FastLivenessQuery { cfg, domtree, info, checker: self }
    }

    /// Number of blocks covered by the precomputation.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Bytes used by the two per-block bit-sets (the measured footprint of
    /// the `LiveCheck` structures in Figure 7).
    pub fn footprint_bytes(&self) -> usize {
        (0..self.num_blocks)
            .map(Block::from_index)
            .map(|b| {
                self.reduced_reach[b].footprint_bytes() + self.back_targets[b].footprint_bytes()
            })
            .sum()
    }
}

/// A [`BlockLiveness`] adaptor bundling a [`FastLiveness`] checker with the
/// function and analyses it needs for queries. Created by
/// [`FastLiveness::query`].
#[derive(Clone, Debug)]
pub struct FastLivenessQuery<'a> {
    cfg: &'a ControlFlowGraph,
    domtree: &'a DominatorTree,
    info: &'a LiveRangeInfo,
    checker: &'a FastLiveness,
}

impl<'a> FastLivenessQuery<'a> {
    /// Access to the underlying checker (e.g. for footprint statistics).
    pub fn checker(&self) -> &FastLiveness {
        self.checker
    }
}

impl BlockLiveness for FastLivenessQuery<'_> {
    #[inline]
    fn is_live_in(&self, block: Block, value: Value) -> bool {
        self.checker.is_live_in_query(self.domtree, self.info, block, value)
    }

    #[inline]
    fn is_live_out(&self, block: Block, value: Value) -> bool {
        self.checker.is_live_out_query(self.cfg, self.domtree, self.info, block, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::LivenessSets;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{BinaryOp, CmpOp};

    fn check_agreement(func: &Function) {
        let cfg = ControlFlowGraph::compute(func);
        let domtree = DominatorTree::compute(func, &cfg);
        let sets = LivenessSets::compute(func, &cfg);
        let info = LiveRangeInfo::compute(func);
        let checker = FastLiveness::compute(func, &cfg, &domtree);
        let fast = checker.query(&cfg, &domtree, &info);
        for block in cfg.reverse_post_order() {
            for value in func.values() {
                assert_eq!(
                    sets.is_live_in(*block, value),
                    fast.is_live_in(*block, value),
                    "live-in mismatch for {value} at {block} in {}",
                    func.name
                );
                assert_eq!(
                    sets.is_live_out(*block, value),
                    fast.is_live_out(*block, value),
                    "live-out mismatch for {value} at {block} in {}",
                    func.name
                );
            }
        }
    }

    #[test]
    fn agrees_with_dataflow_on_diamond() {
        let mut b = FunctionBuilder::new("diamond", 1);
        let entry = b.create_block();
        let t = b.create_block();
        let e = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        b.branch(c, t, e);
        b.switch_to_block(t);
        let a = b.binary(BinaryOp::Add, x, x);
        b.jump(join);
        b.switch_to_block(e);
        let s = b.binary(BinaryOp::Sub, x, zero);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(t, a), (e, s)]);
        let r = b.binary(BinaryOp::Add, m, x);
        b.ret(Some(r));
        check_agreement(&b.finish());
    }

    #[test]
    fn agrees_with_dataflow_on_loop() {
        let mut b = FunctionBuilder::new("loop", 2);
        let entry = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        let start = b.param(1);
        b.jump(header);
        b.switch_to_block(header);
        let i_next = b.declare_value();
        let i = b.phi(vec![(entry, start), (body, i_next)]);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to_block(body);
        let one = b.iconst(1);
        b.func_mut().append_inst(
            body,
            ossa_ir::InstData::Binary { op: BinaryOp::Add, dst: i_next, args: [i, one] },
        );
        b.jump(header);
        b.switch_to_block(exit);
        b.ret(Some(i));
        check_agreement(&b.finish());
    }

    #[test]
    fn agrees_with_dataflow_on_nested_loops() {
        let mut b = FunctionBuilder::new("nested", 1);
        let entry = b.create_block();
        let outer = b.create_block();
        let inner = b.create_block();
        let inner_body = b.create_block();
        let outer_latch = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        let zero = b.iconst(0);
        b.jump(outer);
        b.switch_to_block(outer);
        let acc_outer_next = b.declare_value();
        let acc_outer = b.phi(vec![(entry, zero), (outer_latch, acc_outer_next)]);
        let c1 = b.cmp(CmpOp::Lt, acc_outer, n);
        b.branch(c1, inner, exit);
        b.switch_to_block(inner);
        let acc_inner_next = b.declare_value();
        let acc_inner = b.phi(vec![(outer, acc_outer), (inner_body, acc_inner_next)]);
        let c2 = b.cmp(CmpOp::Lt, acc_inner, n);
        b.branch(c2, inner_body, outer_latch);
        b.switch_to_block(inner_body);
        let one = b.iconst(1);
        b.func_mut().append_inst(
            inner_body,
            ossa_ir::InstData::Binary {
                op: BinaryOp::Add,
                dst: acc_inner_next,
                args: [acc_inner, one],
            },
        );
        b.jump(inner);
        b.switch_to_block(outer_latch);
        let two = b.iconst(2);
        b.func_mut().append_inst(
            outer_latch,
            ossa_ir::InstData::Binary {
                op: BinaryOp::Add,
                dst: acc_outer_next,
                args: [acc_inner, two],
            },
        );
        b.jump(outer);
        b.switch_to_block(exit);
        b.ret(Some(acc_outer));
        check_agreement(&b.finish());
    }

    #[test]
    fn unused_and_unreachable_values_are_not_live() {
        let mut b = FunctionBuilder::new("dead", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let dead = b.iconst(1);
        b.ret(None);
        let f = b.finish();
        let cfg = ControlFlowGraph::compute(&f);
        let domtree = DominatorTree::compute(&f, &cfg);
        let info = LiveRangeInfo::compute(&f);
        let checker = FastLiveness::compute(&f, &cfg, &domtree);
        let fast = checker.query(&cfg, &domtree, &info);
        assert!(!fast.is_live_in(entry, dead));
        assert!(!fast.is_live_out(entry, dead));
    }

    #[test]
    fn precomputation_survives_instruction_mutation() {
        // The CFG-only precomputation stays valid while instructions are
        // inserted, as long as the block structure is unchanged — the
        // property the out-of-SSA translation exploits.
        let mut b = FunctionBuilder::new("mutate", 1);
        let entry = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        b.jump(exit);
        b.switch_to_block(exit);
        b.ret(Some(x));
        let mut f = b.finish();
        let cfg = ControlFlowGraph::compute(&f);
        let domtree = DominatorTree::compute(&f, &cfg);
        let checker = FastLiveness::compute(&f, &cfg, &domtree);

        // Insert a copy in `exit`; only LiveRangeInfo needs recomputing.
        let clone = f.new_value();
        f.insert_inst(exit, 0, ossa_ir::InstData::Copy { dst: clone, src: x });
        let info = LiveRangeInfo::compute(&f);
        let fast = checker.query(&cfg, &domtree, &info);
        assert!(fast.is_live_in(exit, x));
        assert!(!fast.is_live_out(exit, clone));
    }

    #[test]
    fn footprint_is_reported() {
        let mut b = FunctionBuilder::new("fp", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        b.ret(None);
        let f = b.finish();
        let fast = FastLiveness::of(&f);
        assert!(fast.footprint_bytes() > 0);
        assert_eq!(fast.num_blocks(), 1);
    }
}
