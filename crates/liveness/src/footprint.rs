//! Memory-footprint estimators used by the Figure 7 reproduction.
//!
//! The paper evaluates, besides the measured footprint, a "perfect memory"
//! footprint using closed-form formulas. These helpers implement those exact
//! formulas so the benchmark harness can report both.

/// Bytes of a half (triangular) bit-matrix interference graph over
/// `num_variables` variables: `⌈V/8⌉ × V / 2` (paper, Section IV-D).
pub fn interference_bit_matrix_bytes(num_variables: usize) -> usize {
    num_variables.div_ceil(8) * num_variables / 2
}

/// Bytes of per-block liveness bit-sets: `⌈V/8⌉ × B × 2` — one live-in and
/// one live-out bit-set per basic block (paper, Section IV-D).
pub fn liveness_bit_sets_bytes(num_variables: usize, num_blocks: usize) -> usize {
    num_variables.div_ceil(8) * num_blocks * 2
}

/// Bytes of per-block liveness ordered sets, assuming each element costs
/// `element_bytes` (4 bytes for a `u32` value index): the paper evaluates
/// ordered sets "by counting the size of each set".
pub fn liveness_ordered_sets_bytes(total_entries: usize, element_bytes: usize) -> usize {
    total_entries * element_bytes
}

/// Bytes of the fast-liveness-checking precomputation: two bit-sets of blocks
/// per basic block, `⌈B/8⌉ × B × 2` (paper, Section IV-D).
pub fn liveness_check_bytes(num_blocks: usize) -> usize {
    num_blocks.div_ceil(8) * num_blocks * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_matrix_formula_matches_paper() {
        // 16 variables: ceil(16/8)=2 bytes per row, 16 rows, halved => 16.
        assert_eq!(interference_bit_matrix_bytes(16), 16);
        assert_eq!(interference_bit_matrix_bytes(0), 0);
        assert_eq!(interference_bit_matrix_bytes(9), 2 * 9 / 2);
    }

    #[test]
    fn liveness_bit_sets_formula() {
        assert_eq!(liveness_bit_sets_bytes(16, 10), 2 * 10 * 2);
        assert_eq!(liveness_bit_sets_bytes(0, 10), 0);
    }

    #[test]
    fn ordered_sets_formula() {
        assert_eq!(liveness_ordered_sets_bytes(25, 4), 100);
    }

    #[test]
    fn live_check_formula() {
        assert_eq!(liveness_check_bytes(16), 2 * 16 * 2);
        assert_eq!(liveness_check_bytes(1), 2);
    }

    #[test]
    fn formulas_grow_monotonically() {
        for v in 1..100 {
            assert!(interference_bit_matrix_bytes(v + 1) >= interference_bit_matrix_bytes(v));
            assert!(liveness_bit_sets_bytes(v + 1, 10) >= liveness_bit_sets_bytes(v, 10));
            assert!(liveness_check_bytes(v + 1) >= liveness_check_bytes(v));
        }
    }
}
