//! # ossa-liveness — liveness analysis substrate
//!
//! Liveness information for the out-of-SSA translation, in the two flavours
//! compared by the paper:
//!
//! * [`sets::LivenessSets`] — classic per-block live-in/live-out sets by
//!   backward data-flow analysis (the baseline every Sreedhar-style method
//!   relies on);
//! * [`check::FastLiveness`] — query-based liveness checking whose
//!   precomputation depends only on the CFG (the paper's `LiveCheck`
//!   option, after Boissinot et al. CGO 2008).
//!
//! On top of either backend, [`intersect::IntersectionTest`] answers
//! live-range intersection queries (the paper's `InterCheck` building block)
//! and Chaitin-style interference queries. [`footprint`] contains the
//! closed-form memory estimators used by the Figure 7 reproduction.
//!
//! # Examples
//!
//! ```
//! use ossa_ir::builder::FunctionBuilder;
//! use ossa_ir::BinaryOp;
//! use ossa_liveness::{BlockLiveness, LivenessSets};
//!
//! let mut b = FunctionBuilder::new("f", 1);
//! let entry = b.create_block();
//! b.set_entry(entry);
//! b.switch_to_block(entry);
//! let x = b.param(0);
//! let y = b.binary(BinaryOp::Add, x, x);
//! b.ret(Some(y));
//! let func = b.finish();
//!
//! let liveness = LivenessSets::of(&func);
//! assert!(!liveness.is_live_out(entry, y));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod check;
pub mod footprint;
pub mod fuel;
pub mod intersect;
pub mod sets;
pub mod uses;

use ossa_ir::entity::{Block, Value};

pub use analysis::{AnalysisCounts, FunctionAnalyses};
pub use check::{FastLiveness, FastLivenessQuery};
pub use intersect::{IntersectionTest, LiveRangeInfo};
pub use sets::LivenessSets;
pub use uses::{UseSite, UseSites};

/// Per-block liveness oracle: the common interface of the data-flow liveness
/// sets and the fast liveness checker.
pub trait BlockLiveness {
    /// Returns `true` if `value` is live at the entry of `block`.
    fn is_live_in(&self, block: Block, value: Value) -> bool;
    /// Returns `true` if `value` is live at the exit of `block`.
    fn is_live_out(&self, block: Block, value: Value) -> bool;
}
