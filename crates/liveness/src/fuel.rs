//! Fixpoint-iteration fuel and request cancellation: thread-local budgets on
//! a translation, so a pathological (or maliciously constructed) function
//! exhausts a typed resource limit — and a request past its wall-clock
//! deadline aborts — instead of spinning a worker forever.
//!
//! The liveness computations cannot plumb a `Result` through the lazily
//! initialized analysis caches without taxing every happy-path caller, so
//! both budgets are reported by unwinding with a typed payload
//! ([`FuelExhausted`] / [`Cancelled`]); the fault-isolated engine entry
//! points (`ossa_destruct::fault`) catch the unwind at the per-function
//! boundary and downcast it back into a typed `ResourceExhausted` /
//! `DeadlineExceeded` error. With no budget installed (the default, and the
//! state every non-isolated caller runs in) a tick is a single thread-local
//! read — the fixpoint loops tick once per *pass*, not per block, so the
//! happy-path cost is unmeasurable.
//!
//! The two budgets are deliberately independent thread-locals: fuel is
//! re-installed *per attempt* by the isolated engines (each retry gets a
//! fresh fixpoint budget), while a deadline is installed *per request* by a
//! service worker and spans every retry attempt, so they must never reset
//! each other.

use std::cell::Cell;
use std::time::Instant;

/// Panic payload of an exhausted fixpoint budget. Carried by unwinding from
/// [`fixpoint_tick`] to the nearest `catch_unwind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuelExhausted {
    /// The budget that was installed via [`set_fixpoint_fuel`].
    pub limit: u64,
}

/// Panic payload of a tripped cancellation token: the wall-clock deadline
/// installed via [`set_deadline`] passed. Carried by unwinding from
/// [`cancel_tick`] (or [`fixpoint_tick`]) to the nearest `catch_unwind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

thread_local! {
    /// Remaining passes (`None` = unbounded) and the originally installed
    /// budget, for the error report.
    static REMAINING: Cell<Option<u64>> = const { Cell::new(None) };
    static LIMIT: Cell<u64> = const { Cell::new(0) };
    /// Wall-clock cancellation deadline (`None` = no deadline installed).
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Installs (or, with `None`, removes) the fixpoint budget of the current
/// thread. Isolated engine workers install the budget per function and clear
/// it on the way out, so a budgeted run never leaks into a later caller.
pub fn set_fixpoint_fuel(fuel: Option<u64>) {
    LIMIT.set(fuel.unwrap_or(0));
    REMAINING.set(fuel);
}

/// Installs (or, with `None`, removes) the wall-clock cancellation deadline
/// of the current thread. Service workers install the deadline per request
/// (spanning every retry attempt of that request) and clear it on the way
/// out; engine-level fuel installation never touches it.
pub fn set_deadline(deadline: Option<Instant>) {
    DEADLINE.set(deadline);
}

/// The deadline currently installed on this thread, if any.
pub fn current_deadline() -> Option<Instant> {
    DEADLINE.get()
}

/// Checks the cancellation token; unwinds with [`Cancelled`] when the
/// installed deadline has passed. Called at every pipeline phase boundary
/// (via `ossa_destruct::fault::enter_phase`) and at every fixpoint tick.
/// With no deadline installed the cost is a single thread-local read.
#[inline]
pub fn cancel_tick() {
    if let Some(deadline) = DEADLINE.get() {
        if Instant::now() >= deadline {
            std::panic::panic_any(Cancelled);
        }
    }
}

/// Consumes one unit of fuel; unwinds with [`FuelExhausted`] when the budget
/// is spent (and with [`Cancelled`] when a deadline has passed). Called once
/// per fixpoint *pass* by the liveness solvers.
#[inline]
pub fn fixpoint_tick() {
    cancel_tick();
    if let Some(left) = REMAINING.get() {
        if left == 0 {
            std::panic::panic_any(FuelExhausted { limit: LIMIT.get() });
        }
        REMAINING.set(Some(left - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_by_default() {
        set_fixpoint_fuel(None);
        for _ in 0..10_000 {
            fixpoint_tick();
        }
    }

    #[test]
    fn exhaustion_unwinds_with_the_limit() {
        set_fixpoint_fuel(Some(3));
        let err = std::panic::catch_unwind(|| {
            for _ in 0..10 {
                fixpoint_tick();
            }
        })
        .unwrap_err();
        set_fixpoint_fuel(None);
        let payload = err.downcast_ref::<FuelExhausted>().expect("typed payload");
        assert_eq!(payload.limit, 3);
    }

    #[test]
    fn expired_deadline_unwinds_with_cancelled() {
        set_deadline(Some(Instant::now() - std::time::Duration::from_millis(1)));
        let err = std::panic::catch_unwind(cancel_tick).unwrap_err();
        set_deadline(None);
        assert!(err.downcast_ref::<Cancelled>().is_some(), "typed payload");
    }

    #[test]
    fn deadline_and_fuel_are_independent() {
        // Installing fuel must not clear an armed deadline, and vice versa:
        // the engines re-install fuel per attempt while a service deadline
        // spans the whole request.
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        set_deadline(Some(far));
        set_fixpoint_fuel(Some(2));
        assert_eq!(current_deadline(), Some(far));
        set_fixpoint_fuel(None);
        assert_eq!(current_deadline(), Some(far));
        // Expired deadline wins over remaining fuel inside fixpoint_tick.
        set_deadline(Some(Instant::now() - std::time::Duration::from_millis(1)));
        set_fixpoint_fuel(Some(1000));
        let err = std::panic::catch_unwind(fixpoint_tick).unwrap_err();
        set_deadline(None);
        set_fixpoint_fuel(None);
        assert!(err.downcast_ref::<Cancelled>().is_some());
    }
}
