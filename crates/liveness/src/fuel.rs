//! Fixpoint-iteration fuel: a thread-local budget on data-flow fixpoint
//! passes, so a pathological (or maliciously constructed) function exhausts a
//! typed resource limit instead of spinning a worker forever.
//!
//! The liveness computations cannot plumb a `Result` through the lazily
//! initialized analysis caches without taxing every happy-path caller, so
//! exhaustion is reported by unwinding with a [`FuelExhausted`] payload; the
//! fault-isolated engine entry points (`ossa_destruct::fault`) catch the
//! unwind at the per-function boundary and downcast it back into a typed
//! `ResourceExhausted` error. With no budget installed (the default, and the
//! state every non-isolated caller runs in) a tick is a single thread-local
//! read — the fixpoint loops tick once per *pass*, not per block, so the
//! happy-path cost is unmeasurable.

use std::cell::Cell;

/// Panic payload of an exhausted fixpoint budget. Carried by unwinding from
/// [`fixpoint_tick`] to the nearest `catch_unwind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuelExhausted {
    /// The budget that was installed via [`set_fixpoint_fuel`].
    pub limit: u64,
}

thread_local! {
    /// Remaining passes (`None` = unbounded) and the originally installed
    /// budget, for the error report.
    static REMAINING: Cell<Option<u64>> = const { Cell::new(None) };
    static LIMIT: Cell<u64> = const { Cell::new(0) };
}

/// Installs (or, with `None`, removes) the fixpoint budget of the current
/// thread. Isolated engine workers install the budget per function and clear
/// it on the way out, so a budgeted run never leaks into a later caller.
pub fn set_fixpoint_fuel(fuel: Option<u64>) {
    LIMIT.set(fuel.unwrap_or(0));
    REMAINING.set(fuel);
}

/// Consumes one unit of fuel; unwinds with [`FuelExhausted`] when the budget
/// is spent. Called once per fixpoint *pass* by the liveness solvers.
#[inline]
pub fn fixpoint_tick() {
    if let Some(left) = REMAINING.get() {
        if left == 0 {
            std::panic::panic_any(FuelExhausted { limit: LIMIT.get() });
        }
        REMAINING.set(Some(left - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_by_default() {
        set_fixpoint_fuel(None);
        for _ in 0..10_000 {
            fixpoint_tick();
        }
    }

    #[test]
    fn exhaustion_unwinds_with_the_limit() {
        set_fixpoint_fuel(Some(3));
        let err = std::panic::catch_unwind(|| {
            for _ in 0..10 {
                fixpoint_tick();
            }
        })
        .unwrap_err();
        set_fixpoint_fuel(None);
        let payload = err.downcast_ref::<FuelExhausted>().expect("typed payload");
        assert_eq!(payload.limit, 3);
    }
}
