//! Classic per-block liveness sets computed by backward data-flow analysis.
//!
//! φ-functions follow their parallel-copy semantics: a φ argument is live-out
//! of the corresponding predecessor block (not live-in of the φ's block), and
//! a φ result is not live-in of its block.

use ossa_ir::entity::{Block, EntitySet, SecondaryMap, Value};
use ossa_ir::{ControlFlowGraph, Function};

use crate::BlockLiveness;

/// Live-in and live-out sets for every reachable block of a function.
#[derive(Clone, Debug, Default)]
pub struct LivenessSets {
    live_in: SecondaryMap<Block, EntitySet<Value>>,
    live_out: SecondaryMap<Block, EntitySet<Value>>,
    num_values: usize,
    num_blocks: usize,
    /// Transfer-function storage and fixpoint scratch, kept so a recycled
    /// instance ([`LivenessSets::compute_into`]) performs no per-block
    /// allocation; never read after the computation finishes.
    scratch: SetsScratch,
}

/// The recycled working storage of one liveness computation. The per-block
/// transfer functions (`gen`/`kill`/`edge_phi_uses`) survive between runs —
/// they are what [`LivenessSets::update_blocks`] repairs incrementally.
#[derive(Clone, Debug, Default)]
struct SetsScratch {
    gen: SecondaryMap<Block, EntitySet<Value>>,
    kill: SecondaryMap<Block, EntitySet<Value>>,
    edge_phi_uses: SecondaryMap<Block, Vec<Value>>,
    defs: Vec<Value>,
    uses: Vec<Value>,
    out: EntitySet<Value>,
    post_order: Vec<Block>,
    /// Incremental repair: the affected region (dirty blocks plus their
    /// transitive predecessors), its membership set, and the region in
    /// post-order (so the fixpoint iterates the region, not the function).
    region: Vec<Block>,
    in_region: EntitySet<Block>,
    region_post: Vec<Block>,
}

/// Empties every bit-set slot of a recycled per-block map and sizes it for
/// `num_blocks`, keeping the word-vector capacities (also beyond
/// `num_blocks`: the per-slot reset is O(1), and retaining the buffers lets
/// a later, larger function reuse them instead of reallocating).
fn reset_block_sets(map: &mut SecondaryMap<Block, EntitySet<Value>>, num_blocks: usize) {
    for set in map.values_mut() {
        set.reset();
    }
    map.resize(num_blocks);
}

/// Computes the transfer function (upward-exposed uses and kills) of one
/// block into `gen[block]`/`kill[block]`, which must be empty on entry. φ
/// handling matches the paper's semantics: φ uses belong to predecessors and
/// the φ def kills the value locally (it is not upward exposed).
fn compute_block_transfer(
    func: &Function,
    block: Block,
    gen: &mut SecondaryMap<Block, EntitySet<Value>>,
    kill: &mut SecondaryMap<Block, EntitySet<Value>>,
    scratch_defs: &mut Vec<Value>,
    scratch_uses: &mut Vec<Value>,
) {
    let gen_set = &mut gen[block];
    for &inst in func.block_insts(block) {
        let data = func.inst(inst);
        if data.is_phi() {
            scratch_defs.clear();
            data.collect_defs(func.pools(), scratch_defs);
            for &d in &*scratch_defs {
                kill[block].insert(d);
            }
            continue;
        }
        scratch_uses.clear();
        data.collect_uses(func.pools(), scratch_uses);
        for &u in &*scratch_uses {
            if !kill[block].contains(u) {
                gen_set.insert(u);
            }
        }
        scratch_defs.clear();
        data.collect_defs(func.pools(), scratch_defs);
        for &d in &*scratch_defs {
            kill[block].insert(d);
        }
    }
}

impl LivenessSets {
    /// Computes liveness sets for `func` using `cfg`.
    pub fn compute(func: &Function, cfg: &ControlFlowGraph) -> Self {
        let mut this = Self::default();
        this.compute_into(func, cfg);
        this
    }

    /// Recomputes the sets for `func` in place, reusing the per-block
    /// bit-sets and fixpoint scratch of a previous (possibly different)
    /// function. The resulting sets are identical to a fresh
    /// [`LivenessSets::compute`]; only the heap traffic differs — which is
    /// what lets [`crate::FunctionAnalyses`] recycle the analysis across
    /// instruction versions instead of reallocating it per invalidation.
    pub fn compute_into(&mut self, func: &Function, cfg: &ControlFlowGraph) {
        let num_blocks = func.num_blocks();
        let num_values = func.num_values();
        self.num_values = num_values;
        self.num_blocks = num_blocks;

        // Per-block upward-exposed uses and definitions (φ handled specially).
        let scratch = &mut self.scratch;
        let gen = &mut scratch.gen;
        let kill = &mut scratch.kill;
        reset_block_sets(gen, num_blocks);
        reset_block_sets(kill, num_blocks);

        let scratch_defs = &mut scratch.defs;
        let scratch_uses = &mut scratch.uses;
        for &block in cfg.reverse_post_order() {
            compute_block_transfer(func, block, gen, kill, scratch_defs, scratch_uses);
        }

        reset_block_sets(&mut self.live_in, num_blocks);
        reset_block_sets(&mut self.live_out, num_blocks);

        // φ uses attributed to the end of their predecessor, collected once
        // instead of re-walking every successor's φ group per fixpoint pass.
        let edge_phi_uses = &mut scratch.edge_phi_uses;
        for list in edge_phi_uses.values_mut() {
            list.clear();
        }
        edge_phi_uses.resize(num_blocks);
        for &block in cfg.reverse_post_order() {
            for &inst in func.block_insts(block) {
                if let Some(args) = func.inst_phi_args(inst) {
                    for arg in args {
                        edge_phi_uses[arg.block].push(arg.value);
                    }
                }
            }
        }

        // Backward fixpoint over the post-order, in place: the stored sets
        // only ever grow, so the transfer can union directly into them —
        // gen/kill are the precomputed per-block transfer functions and the
        // `live_in ∪= live_out \ kill` step is a single word-level pass. The
        // only scratch is one reusable bit-set for the successor union.
        let post_order = &mut scratch.post_order;
        post_order.clear();
        post_order.extend(cfg.post_order());
        let scratch_out = &mut scratch.out;
        scratch_out.reset();
        for &block in cfg.reverse_post_order() {
            self.live_in[block].union_with(&gen[block]);
        }
        let mut changed = true;
        while changed {
            crate::fuel::fixpoint_tick();
            changed = false;
            for &block in &*post_order {
                // live_out(B) ∪= ∪_succ S (live_in(S) \ phi_defs(S)) ∪ phi_uses_from(B in S)
                scratch_out.clear();
                for &succ in cfg.succs(block) {
                    // live_in(S) already excludes φ defs of S by construction.
                    scratch_out.union_with(&self.live_in[succ]);
                }
                for &value in &edge_phi_uses[block] {
                    scratch_out.insert(value);
                }
                let out_grew = self.live_out[block].union_with(scratch_out);
                // live_in(B) = gen(B) ∪ (live_out(B) \ kill(B)); gen was
                // seeded above, so only the data-flow part remains.
                if out_grew {
                    self.live_in[block].union_with_andnot(scratch_out, &kill[block]);
                    changed = true;
                }
            }
        }
    }

    /// Incrementally repairs the sets after instruction-only edits confined
    /// to the `dirty` blocks, under the same CFG the sets were computed for.
    /// Returns the number of blocks whose sets were recomputed — the repair
    /// *region*: the reachable dirty blocks plus their transitive
    /// predecessors (liveness flows backward, so no other block's sets can
    /// change). Blocks outside the region keep their sets untouched; the
    /// result is bit-identical to a full [`LivenessSets::compute_into`].
    ///
    /// Callers must list *every* block whose instruction stream changed
    /// (including φ rewrites — the φ block's predecessors are in the region
    /// by construction, so their edge uses are repaired too). Block-structure
    /// mutations require a full recompute instead.
    pub fn update_blocks(
        &mut self,
        func: &Function,
        cfg: &ControlFlowGraph,
        dirty: &[Block],
    ) -> usize {
        debug_assert_eq!(self.num_blocks, func.num_blocks(), "CFG changed; full recompute needed");
        self.num_values = func.num_values();
        let SetsScratch {
            gen,
            kill,
            edge_phi_uses,
            defs,
            uses,
            out,
            post_order,
            region,
            in_region,
            region_post,
        } = &mut self.scratch;

        // The affected region: reachable dirty blocks closed under
        // predecessors.
        region.clear();
        in_region.reset();
        for &block in dirty {
            if cfg.is_reachable(block) && in_region.insert(block) {
                region.push(block);
            }
        }
        let mut i = 0;
        while i < region.len() {
            let block = region[i];
            i += 1;
            for &pred in cfg.preds(block) {
                if cfg.is_reachable(pred) && in_region.insert(pred) {
                    region.push(pred);
                }
            }
        }
        if region.is_empty() {
            return 0;
        }

        // Recompute the transfer functions of the dirty blocks only (the
        // other region blocks' instructions are unchanged).
        for &block in dirty {
            if !cfg.is_reachable(block) {
                continue;
            }
            gen[block].reset();
            kill[block].reset();
            compute_block_transfer(func, block, gen, kill, defs, uses);
        }

        // Rebuild the φ edge-uses of every region block (its successors may
        // include dirty φ blocks; non-region blocks have no dirty successor,
        // so their entries are still exact).
        for &block in region.iter() {
            edge_phi_uses[block].clear();
        }
        for &block in region.iter() {
            for &succ in cfg.succs(block) {
                // Scan the whole block, exactly like the full computation:
                // no assumption that φs form the leading group.
                for &inst in func.block_insts(succ) {
                    if let Some(args) = func.inst_phi_args(inst) {
                        for arg in args {
                            if arg.block == block {
                                edge_phi_uses[block].push(arg.value);
                            }
                        }
                    }
                }
            }
        }

        // Restricted fixpoint: reset the region's sets, seed live-in from
        // gen, and iterate the backward transfer over region blocks only,
        // reading the (final, unaffected) live-in of out-of-region
        // successors where edges leave the region. Converges to the global
        // least fixpoint restricted to the region.
        for &block in region.iter() {
            self.live_in[block].reset();
            self.live_out[block].reset();
            self.live_in[block].union_with(&gen[block]);
        }
        // Materialize the region in post-order once (one filter pass over
        // the saved traversal), so each fixpoint pass costs O(region), not
        // O(function).
        region_post.clear();
        region_post.extend(post_order.iter().copied().filter(|&b| in_region.contains(b)));
        out.reset();
        let mut changed = true;
        while changed {
            crate::fuel::fixpoint_tick();
            changed = false;
            for &block in region_post.iter() {
                out.clear();
                for &succ in cfg.succs(block) {
                    out.union_with(&self.live_in[succ]);
                }
                for &value in &edge_phi_uses[block] {
                    out.insert(value);
                }
                let out_grew = self.live_out[block].union_with(out);
                if out_grew {
                    self.live_in[block].union_with_andnot(out, &kill[block]);
                    changed = true;
                }
            }
        }
        region.len()
    }

    /// Computes liveness sets, building the CFG internally.
    pub fn of(func: &Function) -> Self {
        let cfg = ControlFlowGraph::compute(func);
        Self::compute(func, &cfg)
    }

    /// The live-in set of `block`.
    pub fn live_in(&self, block: Block) -> &EntitySet<Value> {
        &self.live_in[block]
    }

    /// The live-out set of `block`.
    pub fn live_out(&self, block: Block) -> &EntitySet<Value> {
        &self.live_out[block]
    }

    /// Live-in set as a sorted vector (the "ordered set" representation whose
    /// footprint Figure 7 compares against bit-sets).
    pub fn ordered_live_in(&self, block: Block) -> Vec<Value> {
        self.live_in[block].iter().collect()
    }

    /// Live-out set as a sorted vector.
    pub fn ordered_live_out(&self, block: Block) -> Vec<Value> {
        self.live_out[block].iter().collect()
    }

    /// Number of values the analysis was computed over.
    pub fn num_values(&self) -> usize {
        self.num_values
    }

    /// Number of blocks the analysis was computed over.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Total number of `(block, value)` membership entries across all live-in
    /// and live-out sets — the size driver for the ordered-set footprint.
    pub fn total_entries(&self) -> usize {
        (0..self.num_blocks)
            .map(Block::from_index)
            .map(|b| self.live_in[b].len() + self.live_out[b].len())
            .sum()
    }
}

impl BlockLiveness for LivenessSets {
    #[inline]
    fn is_live_in(&self, block: Block, value: Value) -> bool {
        self.live_in[block].contains(value)
    }

    #[inline]
    fn is_live_out(&self, block: Block, value: Value) -> bool {
        self.live_out[block].contains(value)
    }
}

/// Reference implementation of a per-block liveness query by explicit path
/// search, used to cross-check both [`LivenessSets`] and
/// [`crate::check::FastLiveness`] in tests. `O(blocks)` per query.
pub fn is_live_in_by_search(
    func: &Function,
    cfg: &ControlFlowGraph,
    block: Block,
    value: Value,
) -> bool {
    // value is live-in at `block` if some path from `block` reaches a use of
    // `value` without passing through its definition (excluded: the def block
    // itself stops the search *after* the def position).
    let defs = func.def_sites();
    let Some(def) = defs[value] else { return false };
    if !cfg.is_reachable(block) {
        return false;
    }
    // Uses per block with positions; φ uses attributed to the predecessor end.
    let mut stack = vec![block];
    let mut visited = EntitySet::<Block>::with_capacity(func.num_blocks());
    while let Some(b) = stack.pop() {
        if !visited.insert(b) {
            continue;
        }
        // Does b contain a use of `value` before any redefinition?
        let mut found_use = false;
        let mut blocked = false;
        for (pos, &inst) in func.block_insts(b).iter().enumerate() {
            let data = func.inst(inst);
            let is_use =
                if data.is_phi() { false } else { data.uses(func.pools()).contains(&value) };
            if is_use {
                found_use = true;
                break;
            }
            // φ uses at end of predecessor handled below via successors scan.
            if def.block == b && def.pos == pos {
                blocked = true;
                break;
            }
        }
        if found_use {
            return true;
        }
        if blocked {
            continue;
        }
        // φ uses on edges out of b.
        for succ in func.successors(b) {
            if func.phi_inputs_from(succ, b).iter().any(|&(_, v)| v == value) {
                return true;
            }
        }
        for succ in func.successors(b) {
            stack.push(succ);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{BinaryOp, InstData};

    /// Lost-copy-like loop:
    /// entry: x1 = const 1; jump header
    /// header: x2 = phi [(entry,x1),(body,x3)]; x3 = x2+1; br p, body, exit
    /// body: jump header
    /// exit: return x2
    fn lost_copy() -> (Function, Vec<Block>, Vec<Value>) {
        let mut b = FunctionBuilder::new("lostcopy", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let x1 = b.iconst(1);
        b.jump(header);
        b.switch_to_block(header);
        let x3 = b.declare_value();
        let one = b.declare_value();
        let x2 = b.phi(vec![(entry, x1), (body, x3)]);
        b.func_mut().append_inst(header, InstData::Const { dst: one, imm: 1 });
        b.func_mut()
            .append_inst(header, InstData::Binary { op: BinaryOp::Add, dst: x3, args: [x2, one] });
        b.branch(p, body, exit);
        b.switch_to_block(body);
        b.jump(header);
        b.switch_to_block(exit);
        b.ret(Some(x2));
        (b.finish(), vec![entry, header, body, exit], vec![p, x1, x2, x3])
    }

    #[test]
    fn liveness_of_lost_copy_loop() {
        let (f, blocks, values) = lost_copy();
        let [entry, header, body, exit] = blocks[..] else { panic!() };
        let [p, x1, x2, x3] = values[..] else { panic!() };
        let live = LivenessSets::of(&f);

        // x1 flows only on the edge entry->header (φ use).
        assert!(live.is_live_out(entry, x1));
        assert!(!live.is_live_in(header, x1));
        // x2 (φ def) is not live-in of header but is live-out (used in exit).
        assert!(!live.is_live_in(header, x2));
        assert!(live.is_live_out(header, x2));
        assert!(live.is_live_in(exit, x2));
        // x3 is live-out of header only towards body (φ use on body->header).
        assert!(live.is_live_out(body, x3));
        assert!(live.is_live_in(body, x3));
        assert!(!live.is_live_in(exit, x3));
        // The branch condition p is live throughout the loop.
        assert!(live.is_live_in(header, p));
        assert!(live.is_live_out(entry, p));
        assert!(!live.is_live_out(exit, p));
    }

    #[test]
    fn phi_def_not_live_in_and_args_live_out_of_preds() {
        let mut b = FunctionBuilder::new("phi", 1);
        let entry = b.create_block();
        let left = b.create_block();
        let right = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let c = b.param(0);
        let a = b.iconst(1);
        b.branch(c, left, right);
        b.switch_to_block(left);
        let l = b.iconst(10);
        b.jump(join);
        b.switch_to_block(right);
        let r = b.iconst(20);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(left, l), (right, r)]);
        b.ret(Some(m));
        let f = b.finish();
        let live = LivenessSets::of(&f);
        assert!(live.is_live_out(left, l));
        assert!(live.is_live_out(right, r));
        assert!(!live.is_live_in(join, l));
        assert!(!live.is_live_in(join, r));
        assert!(!live.is_live_in(join, m));
        assert!(!live.is_live_out(entry, a));
    }

    #[test]
    fn straightline_liveness_is_empty_at_boundaries() {
        let mut b = FunctionBuilder::new("line", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.iconst(3);
        let y = b.binary(BinaryOp::Add, x, x);
        b.ret(Some(y));
        let f = b.finish();
        let live = LivenessSets::of(&f);
        assert_eq!(live.live_in(entry).len(), 0);
        assert_eq!(live.live_out(entry).len(), 0);
        assert_eq!(live.total_entries(), 0);
    }

    #[test]
    fn dataflow_agrees_with_path_search() {
        let (f, blocks, values) = lost_copy();
        let cfg = ControlFlowGraph::compute(&f);
        let live = LivenessSets::compute(&f, &cfg);
        for &b in &blocks {
            for &v in &values {
                assert_eq!(
                    live.is_live_in(b, v),
                    is_live_in_by_search(&f, &cfg, b, v),
                    "live-in mismatch for {v} at {b}"
                );
            }
        }
    }

    #[test]
    fn ordered_sets_are_sorted() {
        let (f, blocks, _) = lost_copy();
        let live = LivenessSets::of(&f);
        for &b in &blocks {
            let ordered = live.ordered_live_in(b);
            let mut sorted = ordered.clone();
            sorted.sort();
            assert_eq!(ordered, sorted);
        }
    }
}
