//! Live-range intersection tests.
//!
//! Section IV-A of the paper surveys ways to decide whether the live ranges
//! of two SSA variables intersect. This module implements the
//! dominance-based test of Budimlić et al. on top of any per-block liveness
//! oracle (data-flow sets or the fast liveness checker): the variable whose
//! definition dominates the definition of the other intersects it iff it is
//! live *just after* that second definition point.

use ossa_ir::entity::{Block, SecondaryMap, Value};
use ossa_ir::{DefSite, DominatorTree, Function, InstData};

use crate::uses::UseSites;
use crate::BlockLiveness;

/// Pre-computed per-value information needed by intersection queries.
#[derive(Clone, Debug, Default)]
pub struct LiveRangeInfo {
    defs: SecondaryMap<Value, Option<DefSite>>,
    uses: UseSites,
    /// Def-collection scratch of [`LiveRangeInfo::recompute`], kept so a
    /// recycled recomputation performs no allocation at all.
    scratch: Vec<Value>,
}

impl LiveRangeInfo {
    /// Builds the per-value definition and use index of `func`.
    pub fn compute(func: &Function) -> Self {
        let mut this = Self::default();
        this.recompute(func);
        this
    }

    /// Rebuilds the index for `func` in place, reusing the storage of a
    /// previous (possibly different) function — identical to
    /// [`LiveRangeInfo::compute`] except for the heap traffic. This is what
    /// lets [`crate::FunctionAnalyses`] recycle the index across instruction
    /// versions instead of reallocating it after every invalidation.
    pub fn recompute(&mut self, func: &Function) {
        func.def_sites_into(&mut self.defs, &mut self.scratch);
        self.uses.compute_into(func);
    }

    /// Definition site of `value`, if it has one.
    #[inline]
    pub fn def(&self, value: Value) -> Option<DefSite> {
        self.defs[value]
    }

    /// Use index.
    #[inline]
    pub fn uses(&self) -> &UseSites {
        &self.uses
    }

    /// Returns `true` if `value` has no use at all (its live range is a
    /// single point and never intersects anything).
    pub fn is_dead(&self, value: Value) -> bool {
        !self.uses.is_used(value)
    }
}

/// Live-range intersection oracle parameterized by a per-block liveness
/// backend `L` (either [`crate::sets::LivenessSets`] — the paper's
/// `InterCheck` — or [`crate::check::FastLivenessQuery`] — `InterCheck +
/// LiveCheck`).
#[derive(Clone, Debug)]
pub struct IntersectionTest<'a, L> {
    func: &'a Function,
    domtree: &'a DominatorTree,
    liveness: &'a L,
    info: &'a LiveRangeInfo,
}

impl<'a, L: BlockLiveness> IntersectionTest<'a, L> {
    /// Creates the oracle.
    pub fn new(
        func: &'a Function,
        domtree: &'a DominatorTree,
        liveness: &'a L,
        info: &'a LiveRangeInfo,
    ) -> Self {
        Self { func, domtree, liveness, info }
    }

    /// Returns `true` if `value` is live just after the program point
    /// `(block, pos)` (i.e. live-out of the instruction at that position).
    ///
    /// This sits in the innermost loops of the sharing rule and of
    /// `virtual_copy_conflict`, so the block-local position test is inlined
    /// (one comparison instead of a dominance-point call) and the whole
    /// query reduces to at most one use-site scan plus one word-indexed
    /// bit-set read in the liveness backend.
    #[inline]
    pub fn is_live_after(&self, block: Block, pos: usize, value: Value) -> bool {
        let Some(def) = self.info.def(value) else { return false };
        // Not yet defined at this point: definitely not live (SSA dominance).
        if def.block == block {
            if def.pos > pos {
                return false;
            }
        } else if !self.domtree.strictly_dominates(def.block, block) {
            return false;
        }
        // Used later in the same block (φ edge-uses count as "end of block")?
        if self.info.uses().used_after_in_block(value, block, pos) {
            return true;
        }
        self.liveness.is_live_out(block, value)
    }

    /// Returns `true` if `value` is live just *before* the program point
    /// `(block, pos)`.
    #[inline]
    pub fn is_live_before(&self, block: Block, pos: usize, value: Value) -> bool {
        let Some(def) = self.info.def(value) else { return false };
        // Block-local position test inlined, folding the seed's separate
        // same-block guard and dominance-point call into one comparison.
        if def.block == block {
            if def.pos >= pos {
                return false;
            }
        } else if !self.domtree.strictly_dominates(def.block, block) {
            return false;
        }
        if self.info.uses().used_after_in_block(value, block, pos.saturating_sub(1)) {
            return true;
        }
        self.liveness.is_live_out(block, value)
    }

    /// Returns `true` if the live ranges of `a` and `b` intersect
    /// (Budimlić-style dominance test).
    #[inline]
    pub fn intersect(&self, a: Value, b: Value) -> bool {
        if a == b {
            return true;
        }
        let (Some(def_a), Some(def_b)) = (self.info.def(a), self.info.def(b)) else {
            return false;
        };
        // Values without any use have an empty live range and intersect nothing.
        if self.info.is_dead(a) || self.info.is_dead(b) {
            return false;
        }
        // Two live values defined by the very same instruction (e.g. the same
        // parallel copy) are simultaneously live right after it.
        if def_a.block == def_b.block && def_a.pos == def_b.pos {
            return true;
        }
        let a_dominates_b =
            self.domtree.dominates_point((def_a.block, def_a.pos), (def_b.block, def_b.pos));
        let (dominating, dominated, dominated_def) = if a_dominates_b {
            (a, b, def_b)
        } else if self.domtree.dominates_point((def_b.block, def_b.pos), (def_a.block, def_a.pos)) {
            (b, a, def_a)
        } else {
            // Neither definition dominates the other: in SSA (with the
            // dominance property) the live ranges cannot intersect.
            return false;
        };
        let _ = dominated;
        // They intersect iff the dominating value is live just after the
        // definition point of the dominated one.
        self.is_live_after(dominated_def.block, dominated_def.pos, dominating)
    }

    /// Like [`IntersectionTest::intersect`] for a pair with a known
    /// dominance orientation — the definition point of `dominating`
    /// dominates that of `dominated` (as e.g. the dominance-stack invariant
    /// of the linear class-interference walk guarantees). Skips the two
    /// dominance-point probes of the symmetric entry and the redundant
    /// definition guard inside the liveness query; the verdict is identical
    /// to `intersect(dominated, dominating)`.
    #[inline]
    pub fn intersect_dominating(&self, dominating: Value, dominated: Value) -> bool {
        if dominating == dominated {
            return true;
        }
        let (Some(def_a), Some(def_b)) = (self.info.def(dominating), self.info.def(dominated))
        else {
            return false;
        };
        // The dead checks and the used-after scan share the dominating
        // value's use slice, so it is loaded once.
        let uses_a = self.info.uses().uses_of(dominating);
        if uses_a.is_empty() || self.info.is_dead(dominated) {
            return false;
        }
        if def_a.block == def_b.block && def_a.pos == def_b.pos {
            return true;
        }
        debug_assert!(self
            .domtree
            .dominates_point((def_a.block, def_a.pos), (def_b.block, def_b.pos)));
        // `is_live_after(def_b.block, def_b.pos, dominating)` with the
        // defined-before guard already discharged by the dominance premise.
        if uses_a.iter().any(|site| site.block == def_b.block && site.pos > def_b.pos) {
            return true;
        }
        self.liveness.is_live_out(def_b.block, dominating)
    }

    /// Chaitin-style conservative interference: `a` and `b` interfere if one
    /// is live at the definition point of the other and that definition is
    /// not a copy between the two (Section III-A).
    pub fn chaitin_interfere(&self, a: Value, b: Value) -> bool {
        if a == b {
            return false;
        }
        let (Some(def_a), Some(def_b)) = (self.info.def(a), self.info.def(b)) else {
            return false;
        };
        // `defined = other` must be the very copy performed by the defining
        // instruction for Chaitin's exemption to apply.
        let copy_between = |def: DefSite, defined: Value, other: Value| -> bool {
            match self.func.inst(def.inst) {
                InstData::Copy { dst, src } => *dst == defined && *src == other,
                InstData::ParallelCopy { copies } => {
                    self.func.copy_list(*copies).iter().any(|c| c.dst == defined && c.src == other)
                }
                _ => false,
            }
        };
        // b live at def(a), and def(a) is not a copy a = b.
        if self.is_live_after(def_a.block, def_a.pos, b) && !copy_between(def_a, a, b) {
            return true;
        }
        if self.is_live_after(def_b.block, def_b.pos, a) && !copy_between(def_b, b, a) {
            return true;
        }
        false
    }

    /// Returns `true` if the definition point of `x` dominates the
    /// definition point of `y` (false when either has no definition). The
    /// ordering predicate shared by the dominance-stack sweeps (linear class
    /// interference, interference-graph build).
    #[inline]
    pub fn def_dominates(&self, x: Value, y: Value) -> bool {
        match (self.info.def(x), self.info.def(y)) {
            (Some(dx), Some(dy)) => {
                self.domtree.dominates_point((dx.block, dx.pos), (dy.block, dy.pos))
            }
            _ => false,
        }
    }

    /// Access to the per-value info (definition sites, uses).
    pub fn info(&self) -> &LiveRangeInfo {
        self.info
    }

    /// Access to the dominator tree used by the oracle.
    pub fn domtree(&self) -> &DominatorTree {
        self.domtree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::LivenessSets;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{BinaryOp, ControlFlowGraph};

    struct Fixture {
        func: Function,
        domtree: DominatorTree,
        liveness: LivenessSets,
        info: LiveRangeInfo,
    }

    impl Fixture {
        fn new(func: Function) -> Self {
            let cfg = ControlFlowGraph::compute(&func);
            let domtree = DominatorTree::compute(&func, &cfg);
            let liveness = LivenessSets::compute(&func, &cfg);
            let info = LiveRangeInfo::compute(&func);
            Self { func, domtree, liveness, info }
        }

        fn test(&self) -> IntersectionTest<'_, LivenessSets> {
            IntersectionTest::new(&self.func, &self.domtree, &self.liveness, &self.info)
        }
    }

    /// entry: a = 1; b = copy a; c = copy a; use = a+b; ret use
    /// a, b intersect (b defined while a live); b, c intersect; etc.
    fn copies_function() -> (Function, Vec<Value>) {
        let mut b = FunctionBuilder::new("copies", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let a = b.iconst(1);
        let b1 = b.copy(a);
        let c1 = b.copy(a);
        let s = b.binary(BinaryOp::Add, a, b1);
        let t = b.binary(BinaryOp::Add, s, c1);
        b.ret(Some(t));
        (b.finish(), vec![a, b1, c1, s, t])
    }

    #[test]
    fn straightline_intersections() {
        let (f, vals) = copies_function();
        let fx = Fixture::new(f);
        let it = fx.test();
        let [a, b1, c1, s, t] = vals[..] else { panic!() };
        // a is used at the add after both copies: intersects both copies.
        assert!(it.intersect(a, b1));
        assert!(it.intersect(a, c1));
        // b and c: b is live at def of c (used later by the add chain).
        assert!(it.intersect(b1, c1));
        // s and t: s dies at the def of t... s is used exactly by t's def, so
        // s is not live *after* t's def point: no intersection.
        assert!(!it.intersect(s, t));
        // Symmetry.
        assert_eq!(it.intersect(b1, a), it.intersect(a, b1));
        assert_eq!(it.intersect(c1, b1), it.intersect(b1, c1));
        // Reflexive by convention.
        assert!(it.intersect(a, a));
    }

    #[test]
    fn chaitin_ignores_copy_definitions() {
        let (f, vals) = copies_function();
        let fx = Fixture::new(f);
        let it = fx.test();
        let [a, b1, c1, ..] = vals[..] else { panic!() };
        // live ranges of a and b intersect, but b's def is the copy b = a:
        // Chaitin does not consider them interfering.
        assert!(it.intersect(a, b1));
        assert!(!it.chaitin_interfere(a, b1));
        assert!(!it.chaitin_interfere(a, c1));
        // b and c both copies of a, but their defs are copies of a (not of
        // each other), so Chaitin says they interfere.
        assert!(it.chaitin_interfere(b1, c1));
    }

    #[test]
    fn disjoint_branches_do_not_intersect() {
        let mut b = FunctionBuilder::new("branches", 1);
        let entry = b.create_block();
        let left = b.create_block();
        let right = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        b.branch(p, left, right);
        b.switch_to_block(left);
        let x = b.iconst(1);
        b.jump(join);
        b.switch_to_block(right);
        let y = b.iconst(2);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(left, x), (right, y)]);
        b.ret(Some(m));
        let f = b.finish();
        let fx = Fixture::new(f);
        let it = fx.test();
        // x and y live on disjoint paths.
        assert!(!it.intersect(x, y));
        // Neither intersects the φ result (they die at the end of their blocks).
        assert!(!it.intersect(x, m));
        assert!(!it.intersect(y, m));
        // p intersects x: p dies at the branch... actually p's last use is the
        // branch in entry, and x is defined in left: no intersection.
        assert!(!it.intersect(p, x));
    }

    #[test]
    fn live_after_and_before_queries() {
        let (f, vals) = copies_function();
        let fx = Fixture::new(f);
        let it = fx.test();
        let entry = fx.func.entry();
        let [a, b1, _c1, s, t] = vals[..] else { panic!() };
        // After inst 0 (def of a): a live (used later), b not yet defined.
        assert!(it.is_live_after(entry, 0, a));
        assert!(!it.is_live_after(entry, 0, b1));
        // After inst 3 (s = a + b): a dead, s live.
        assert!(!it.is_live_after(entry, 3, a));
        assert!(it.is_live_after(entry, 3, s));
        // Before inst 4 (t = s + c): s live; t not yet.
        assert!(it.is_live_before(entry, 4, s));
        assert!(!it.is_live_before(entry, 4, t));
        // After the return nothing is live.
        assert!(!it.is_live_after(entry, 5, t));
    }

    #[test]
    fn values_defined_by_same_parallel_copy_conflict() {
        let mut b = FunctionBuilder::new("parcopy", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let a = b.iconst(1);
        let c = b.iconst(2);
        let x = b.declare_value();
        let y = b.declare_value();
        b.parallel_copy(vec![
            ossa_ir::CopyPair { dst: x, src: a },
            ossa_ir::CopyPair { dst: y, src: c },
        ]);
        let s = b.binary(BinaryOp::Add, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let fx = Fixture::new(f);
        let it = fx.test();
        assert!(it.intersect(x, y));
    }

    #[test]
    fn dead_value_does_not_intersect() {
        let mut b = FunctionBuilder::new("dead", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let live = b.iconst(1);
        let dead = b.iconst(2);
        let r = b.binary(BinaryOp::Add, live, live);
        b.ret(Some(r));
        let f = b.finish();
        let fx = Fixture::new(f);
        let it = fx.test();
        assert!(fx.info.is_dead(dead));
        assert!(!it.intersect(dead, live));
        assert!(!it.intersect(live, dead));
    }
}
