//! Deterministic scripted-overload segment shared by the report binaries.
//!
//! Drives a [`TranslationService`] through every gate of its overload model
//! with the workers *paused*, so queue depth is scripted rather than
//! scheduled: shed-oldest eviction, a deadline expiring in the queue, and
//! the global degradation ladder stepping up under depth and back down
//! during the drain. Because no translation races the submissions, every
//! resulting counter is a fixed function of the submission count —
//! machine-independent, so `bench_gate` can hold the report fields derived
//! from it to *exact* equality with the committed baseline:
//!
//! * `shed` = submissions − capacity (everything past the bounded queue
//!   evicts the oldest entry),
//! * `expired_in_queue` = 2 (the two already-expired requests submitted
//!   last, where the oldest-first shed cannot reach them),
//! * `degraded_transitions` = 2 and `recovered_transitions` = 2 (the level
//!   walks 0 → 1 → 2 as the scripted depth crosses the thresholds, and
//!   2 → 1 → 0 as the drain empties the queue).

use std::time::Duration;

use ossa_ir::Function;
use ossa_service::{
    AdmissionPolicy, DegradationConfig, ServiceConfig, ServiceStats, TranslationService,
};

/// Runs the scripted overload over `functions` (at least 8) and returns the
/// final service statistics. See the module docs for the exact counter
/// values the script guarantees.
pub fn scripted_overload_stats(functions: &[Function]) -> ServiceStats {
    assert!(functions.len() >= 8, "the scripted overload needs at least 8 functions");
    let capacity = functions.len() / 2;
    let service = TranslationService::start(ServiceConfig {
        workers: 1,
        queue_capacity: capacity,
        admission: AdmissionPolicy::ShedOldest,
        degradation: DegradationConfig {
            degrade_depth: capacity / 2,
            severe_depth: capacity - 1,
            recover_depth: 1,
        },
        ..ServiceConfig::default()
    });
    service.pause();
    let mut tickets: Vec<_> = functions
        .iter()
        .map(|func| service.submit(func.clone()).expect("shed-oldest admission never refuses"))
        .collect();
    // Two requests whose deadline has already passed, submitted last so the
    // shed policy (oldest first) cannot evict them: they deterministically
    // expire at dequeue instead of translating.
    for func in functions.iter().take(2) {
        tickets.push(
            service
                .submit_with_deadline(func.clone(), Some(Duration::ZERO))
                .expect("shed-oldest admission never refuses"),
        );
    }
    service.resume();
    for ticket in tickets {
        let _ = ticket.wait();
    }
    service.shutdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_overload_counters_are_exactly_predicted() {
        let functions: Vec<Function> =
            crate::corpus(0.05).into_iter().flat_map(|w| w.functions).take(12).collect();
        assert!(functions.len() >= 8);
        let capacity = functions.len() / 2;
        let stats = scripted_overload_stats(&functions);
        assert_eq!(stats.accepted, functions.len() as u64 + 2);
        assert_eq!(stats.shed, (functions.len() + 2 - capacity) as u64);
        assert_eq!(stats.expired_in_queue, 2);
        assert_eq!(stats.degraded_transitions, 2);
        assert_eq!(stats.recovered_transitions, 2);
        assert_eq!(stats.completed, capacity as u64 - 2);
        assert_eq!(stats.resolved(), stats.accepted);
        assert_eq!(stats.level, 0, "the drain recovers the level fully");
    }
}
