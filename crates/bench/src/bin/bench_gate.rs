//! CI bench regression gate.
//!
//! Compares the serial-translation seconds of a freshly produced
//! `BENCH_fig6.json` against the committed `BENCH_baseline.json` and exits
//! non-zero when the current numbers regress beyond a tolerance, failing the
//! CI job. Checked:
//!
//! 1. `batch_serial_seconds`, `seed_style_serial_seconds`,
//!    `streaming_serial_seconds` and `batch_serial_validated_seconds` (the
//!    self-checking engine: serial batch under Structural output validation)
//!    each within `(1 + tolerance)` of the committed baseline (absolute
//!    trajectory);
//! 2. `batch_serial_seconds ≤ seed_style_serial_seconds × 1.10` (the batch
//!    engine must not fall behind the naive per-function loop — the
//!    regression an earlier PR fixed);
//! 3. `streaming_serial_seconds ≤ batch_serial_seconds × 1.10` (draining an
//!    iterator must stay within noise of draining a slice — the streaming
//!    front end adds a queue pull and an output move per function, nothing
//!    that may grow with function size);
//! 4. the per-phase seconds (`liveness`/`coalesce`/`sequentialize`) each
//!    within tolerance of the baseline, with a 1 ms absolute floor so the
//!    sub-millisecond phases do not flap on scheduler jitter — a phase-local
//!    regression can no longer hide behind an improvement elsewhere;
//! 5. the serial allocation counts (`seed_style`/`batch`/`streaming`) and
//!    the serial interference-query count
//!    (`batch_serial_interference_queries`) within their own tight
//!    tolerance (`BENCH_GATE_ALLOC_TOLERANCE`, default 2%) of the baseline
//!    — both counters are deterministic and machine-independent, so the
//!    wide timing tolerance of hosted runners must not apply: steady-state
//!    allocation-freedom and the coalescer's batched-query reduction cannot
//!    silently regress even when timing jitter masks them;
//! 6. the pooled streaming engine's steady-state allocations per translated
//!    function (`streaming_steady_state_allocations`) within the allocation
//!    tolerance of the baseline, and — machine-independently, within the
//!    current report alone — *flat across corpus scale*: the per-function
//!    count measured over 2× the corpus
//!    (`streaming_steady_state_allocations_2x`) must match the 1× count
//!    within the allocation tolerance plus a half-allocation floor. A
//!    steady-state cost that grows with how many functions have already
//!    streamed through (a leaked cache, storage that is not recycled)
//!    fails here even on a noisy runner;
//! 7. the per-phase timing, allocation-count and Figure 5 static-copy
//!    fields are present, so the perf trajectory never silently loses
//!    instrumentation.
//!
//! 8. the translation *service* report (`service_bench --json`):
//!    `service_throughput_fns_per_sec` as a **lower** bound (the saturated
//!    service must not lose throughput) and `service_p99_seconds` as an
//!    upper bound (per-request translate tail latency stays bounded), both
//!    under the timing tolerance, plus the deterministic scripted-overload
//!    counters (shed / queue-expiry / degradation transitions) to *exact*
//!    equality — the overload model's behaviour is machine-independent, so
//!    any drift is a semantic change, not noise.
//!
//! Usage: `bench_gate [current.json] [baseline.json] [service.json]
//! [service_baseline.json]`, defaulting to `BENCH_fig6.json`,
//! `BENCH_baseline.json`, `BENCH_service.json` and
//! `BENCH_service_baseline.json`. The service comparison runs whenever
//! either service file exists (CI always produces one); a missing
//! counterpart is then a failure, not a skip. The tolerance defaults to
//! 0.15 and can be overridden with `BENCH_GATE_TOLERANCE` (a fraction, e.g.
//! `0.25`) for noisier machines.

use std::process::ExitCode;

/// Extracts the number following `"key":` in `json`. Whitespace-tolerant,
/// no external dependencies (the build environment is offline).
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Collects every `"key": <number>` field name of `json`, in order of
/// appearance (the same dependency-free scanning discipline as
/// [`extract_number`]).
fn numeric_keys(json: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = json;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else { break };
        let key = &after[..end];
        let tail = after[end + 1..].trim_start();
        if let Some(value) = tail.strip_prefix(':') {
            let value = value.trim_start();
            if value.starts_with(|c: char| c.is_ascii_digit() || c == '-')
                && !keys.iter().any(|k| k == key)
            {
                keys.push(key.to_string());
            }
        }
        rest = &after[end + 1..];
    }
    keys
}

/// Prints a field-by-field comparison of every numeric field of the two
/// reports — run when a *gated* field is missing, so the CI log shows at a
/// glance which side lost which instrumentation (a renamed field shows up as
/// one MISSING on each side) instead of a bare per-key error.
fn print_field_diff(current: &str, current_path: &str, baseline: &str, baseline_path: &str) {
    eprintln!("numeric-field diff ({current_path} vs {baseline_path}):");
    let mut keys = numeric_keys(current);
    for key in numeric_keys(baseline) {
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    for key in &keys {
        match (extract_number(current, key), extract_number(baseline, key)) {
            (Some(cur), Some(base)) => eprintln!("  {key}: {cur} vs {base}"),
            (Some(cur), None) => eprintln!("  {key}: {cur} vs MISSING from {baseline_path}"),
            (None, Some(base)) => eprintln!("  {key}: MISSING from {current_path} vs {base}"),
            (None, None) => {}
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let current_path = args.first().cloned().unwrap_or_else(|| "BENCH_fig6.json".to_string());
    let baseline_path = args.get(1).cloned().unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let service_path = args.get(2).cloned().unwrap_or_else(|| "BENCH_service.json".to_string());
    let service_baseline_path =
        args.get(3).cloned().unwrap_or_else(|| "BENCH_service_baseline.json".to_string());
    let tolerance: f64 =
        std::env::var("BENCH_GATE_TOLERANCE").ok().and_then(|t| t.parse().ok()).unwrap_or(0.15);

    let read = |path: &str| -> Option<String> {
        match std::fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(err) => {
                eprintln!("bench_gate: cannot read {path}: {err}");
                None
            }
        }
    };
    let (Some(current), Some(baseline)) = (read(&current_path), read(&baseline_path)) else {
        return ExitCode::FAILURE;
    };

    let mut failures = 0u32;
    let mut missing_fields = false;

    // The seconds comparisons are meaningless across different corpus
    // scales: a report regenerated at a smaller scale would pass trivially.
    match (extract_number(&current, "scale"), extract_number(&baseline, "scale")) {
        (Some(cur), Some(base)) if cur == base => {}
        (cur, base) => {
            eprintln!(
                "scale mismatch: current {cur:?} vs baseline {base:?} — regenerate {current_path} \
                 at the baseline's scale"
            );
            failures += 1;
        }
    }

    // Allocation counts are deterministic and machine-independent, so they
    // get their own tight tolerance (`BENCH_GATE_ALLOC_TOLERANCE`, default
    // 2%) instead of the timing tolerance — on hosted runners the timing
    // tolerance is widened to 35%, which would let a sizeable allocation
    // regression land silently.
    let alloc_tolerance: f64 = std::env::var("BENCH_GATE_ALLOC_TOLERANCE")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.02);

    // One comparison for every baseline-gated key. `tol` is the relative
    // tolerance (timing or allocation); `floor` is an absolute slack added
    // to the limit — 0 for the totals and counts, 1 ms for the per-phase
    // seconds, whose baselines are sub-millisecond and would otherwise flap
    // on scheduler jitter.
    let mut check_vs_baseline = |key: &str, unit: &str, tol: f64, floor: f64| match (
        extract_number(&current, key),
        extract_number(&baseline, key),
    ) {
        (Some(cur), Some(base)) => {
            let limit = base * (1.0 + tol) + floor;
            let verdict = if cur <= limit { "ok" } else { "REGRESSION" };
            println!(
                "{key}: current {cur:.6}{unit} vs baseline {base:.6}{unit} (limit {limit:.6}{unit}) — {verdict}"
            );
            if cur > limit {
                failures += 1;
            }
        }
        (cur, _) => {
            eprintln!(
                "{key}: missing from {}",
                if cur.is_none() { &current_path } else { &baseline_path }
            );
            failures += 1;
            missing_fields = true;
        }
    };
    check_vs_baseline("batch_serial_seconds", "s", tolerance, 0.0);
    check_vs_baseline("seed_style_serial_seconds", "s", tolerance, 0.0);
    check_vs_baseline("streaming_serial_seconds", "s", tolerance, 0.0);
    // The self-checking engine (serial batch under Structural output
    // validation): tracked against the baseline so the cost of "always
    // validate" stays on the trajectory — a validator that quietly turns
    // quadratic fails here, not in a user's JIT.
    check_vs_baseline("batch_serial_validated_seconds", "s", tolerance, 0.0);
    // Per-phase bounds: a regression localized to one phase must fail even
    // when another phase's improvement hides it in the total.
    check_vs_baseline("liveness", "s", tolerance, 0.001);
    check_vs_baseline("coalesce", "s", tolerance, 0.001);
    check_vs_baseline("sequentialize", "s", tolerance, 0.001);
    check_vs_baseline("seed_style_serial_allocations", "", alloc_tolerance, 0.0);
    check_vs_baseline("batch_serial_allocations", "", alloc_tolerance, 0.0);
    check_vs_baseline("streaming_serial_allocations", "", alloc_tolerance, 0.0);
    // Interference queries are as deterministic as allocation counts: the
    // decide() loop issues them in a fixed order, so the 2% tolerance only
    // absorbs deliberate, reviewed churn — a lost batching optimisation
    // (e.g. the merge-sweep falling back to per-pair tests) fails here even
    // when the timing gate's jitter headroom would hide it.
    check_vs_baseline("batch_serial_interference_queries", "", alloc_tolerance, 0.0);
    // Pooled streaming steady state, per translated function. The
    // half-allocation floor keeps a near-zero baseline from turning harmless
    // sub-allocation jitter into a failure while still catching any real
    // per-function cost.
    check_vs_baseline("streaming_steady_state_allocations", "", alloc_tolerance, 0.5);

    // Steady-state flatness across corpus scale, current report only (both
    // numbers come from the same run on the same machine, so no timing
    // tolerance applies): per-function allocations over 2× the corpus must
    // match the 1× measurement. This is the O(1)-heap-traffic invariant —
    // if translating function N+1 costs more because N functions already
    // streamed through, the 2× number exceeds the 1× number.
    match (
        extract_number(&current, "streaming_steady_state_allocations_2x"),
        extract_number(&current, "streaming_steady_state_allocations"),
    ) {
        (Some(at_2x), Some(at_1x)) => {
            let limit = at_1x * (1.0 + alloc_tolerance) + 0.5;
            let verdict = if at_2x <= limit { "ok" } else { "REGRESSION" };
            println!(
                "streaming steady-state flatness: {at_2x:.4} allocs/function at 2x vs {at_1x:.4} \
                 at 1x (limit {limit:.4}) — {verdict}"
            );
            if at_2x > limit {
                failures += 1;
            }
        }
        (at_2x, _) => {
            eprintln!(
                "streaming flatness check: {} missing from {current_path}",
                if at_2x.is_none() {
                    "streaming_steady_state_allocations_2x"
                } else {
                    "streaming_steady_state_allocations"
                }
            );
            failures += 1;
            missing_fields = true;
        }
    }

    // Relative invariants, independent of machine speed, between two keys of
    // the *current* report (both sides sampled interleaved, min-of-5, so a
    // systematic gap is well above shared-runner noise at 10% slack).
    let mut check_relative = |num_key: &str, den_key: &str, slack: f64| match (
        extract_number(&current, num_key),
        extract_number(&current, den_key),
    ) {
        (Some(num), Some(den)) => {
            let verdict = if num <= den * slack { "ok" } else { "REGRESSION" };
            println!("{num_key} ≤ {slack:.2} × {den_key}: {num:.6}s vs {den:.6}s — {verdict}");
            if num > den * slack {
                failures += 1;
            }
        }
        (num, _) => {
            eprintln!(
                "relative check {num_key} vs {den_key}: {} missing from {current_path}",
                if num.is_none() { num_key } else { den_key }
            );
            failures += 1;
        }
    };
    // The batch engine must not fall behind the seed-style per-function loop
    // (the regression an earlier PR fixed), and the streaming front end must
    // not fall behind the batch engine (pulling the corpus from an iterator
    // adds a queue pull and an output move per function, nothing that may
    // grow with function size).
    check_relative("batch_serial_seconds", "seed_style_serial_seconds", 1.10);
    check_relative("streaming_serial_seconds", "batch_serial_seconds", 1.10);

    // Instrumentation presence: the Figure 5 static-copy counts (the
    // ROADMAP quality check tracks the Sreedhar III vs Sharing ordering
    // across PRs through them). The timing and allocation fields are
    // already exercised by the baseline comparisons above.
    if !current.contains("\"figure5_static_copies\"") {
        eprintln!("figure5_static_copies: instrumentation field missing from {current_path}");
        failures += 1;
    }

    // A gated field went missing: show the full numeric-field diff so the
    // CI log localizes the lost (or renamed) instrumentation immediately.
    if missing_fields {
        print_field_diff(&current, &current_path, &baseline, &baseline_path);
    }

    // The translation-service gate: runs whenever either service report
    // exists (the explicit-skip alternative would let CI silently drop the
    // overload-model trajectory by failing to produce the report).
    let service_requested = args.len() > 2
        || std::path::Path::new(&service_path).exists()
        || std::path::Path::new(&service_baseline_path).exists();
    if service_requested {
        let (Some(svc_cur), Some(svc_base)) = (read(&service_path), read(&service_baseline_path))
        else {
            return ExitCode::FAILURE;
        };
        match (extract_number(&svc_cur, "scale"), extract_number(&svc_base, "scale")) {
            (Some(cur), Some(base)) if cur == base => {}
            (cur, base) => {
                eprintln!(
                    "service scale mismatch: current {cur:?} vs baseline {base:?} — regenerate \
                     {service_path} at the baseline's scale"
                );
                failures += 1;
            }
        }
        let mut service_missing = false;
        // Throughput is the one lower-bounded gate: the saturated service
        // must keep up with the baseline within the timing tolerance.
        match (
            extract_number(&svc_cur, "service_throughput_fns_per_sec"),
            extract_number(&svc_base, "service_throughput_fns_per_sec"),
        ) {
            (Some(cur), Some(base)) => {
                let limit = base * (1.0 - tolerance);
                let verdict = if cur >= limit { "ok" } else { "REGRESSION" };
                println!(
                    "service_throughput_fns_per_sec: current {cur:.0} vs baseline {base:.0} \
                     (floor {limit:.0}) — {verdict}"
                );
                if cur < limit {
                    failures += 1;
                }
            }
            (cur, _) => {
                eprintln!(
                    "service_throughput_fns_per_sec: missing from {}",
                    if cur.is_none() { &service_path } else { &service_baseline_path }
                );
                failures += 1;
                service_missing = true;
            }
        }
        // Tail latency upper bound. The 2 ms absolute floor covers one
        // scheduler preemption landing inside the timed window on a shared
        // runner (the baseline p99 is tens of microseconds, so a relative
        // tolerance alone would flap); a real tail regression — a lock
        // convoy, serialized workers — is well above it.
        match (
            extract_number(&svc_cur, "service_p99_seconds"),
            extract_number(&svc_base, "service_p99_seconds"),
        ) {
            (Some(cur), Some(base)) => {
                let limit = base * (1.0 + tolerance) + 0.002;
                let verdict = if cur <= limit { "ok" } else { "REGRESSION" };
                println!(
                    "service_p99_seconds: current {cur:.6}s vs baseline {base:.6}s (limit \
                     {limit:.6}s) — {verdict}"
                );
                if cur > limit {
                    failures += 1;
                }
            }
            (cur, _) => {
                eprintln!(
                    "service_p99_seconds: missing from {}",
                    if cur.is_none() { &service_path } else { &service_baseline_path }
                );
                failures += 1;
                service_missing = true;
            }
        }
        // The scripted-overload counters are deterministic functions of the
        // corpus scale: exact equality, no tolerance.
        for key in [
            "service_overload_shed",
            "service_overload_expired_in_queue",
            "service_overload_degraded_transitions",
            "service_overload_recovered_transitions",
        ] {
            match (extract_number(&svc_cur, key), extract_number(&svc_base, key)) {
                (Some(cur), Some(base)) => {
                    let verdict = if cur == base { "ok" } else { "REGRESSION" };
                    println!("{key}: current {cur} vs baseline {base} (exact) — {verdict}");
                    if cur != base {
                        failures += 1;
                    }
                }
                (cur, _) => {
                    eprintln!(
                        "{key}: missing from {}",
                        if cur.is_none() { &service_path } else { &service_baseline_path }
                    );
                    failures += 1;
                    service_missing = true;
                }
            }
        }
        if service_missing {
            print_field_diff(&svc_cur, &service_path, &svc_base, &service_baseline_path);
        }
    } else {
        println!("service report absent on both sides — service gate skipped");
    }

    if failures > 0 {
        eprintln!("bench_gate: {failures} check(s) failed (tolerance {tolerance})");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: all checks passed (tolerance {tolerance})");
        ExitCode::SUCCESS
    }
}
