//! Throughput and tail-latency report of the overload-resilient translation
//! service ([`ossa_service`]), plus its CI smoke check.
//!
//! Default mode measures three things over the simulated SPEC corpus and
//! writes a flat JSON report (default `BENCH_service.json`):
//!
//! 1. **Serial capacity** — the direct batch engine over the corpus, the
//!    calibration figure the service throughput is compared against;
//! 2. **Saturated service throughput and tail latency** — a closed-loop run
//!    (the whole corpus admitted at once, persistent workers draining it):
//!    `service_throughput_fns_per_sec` (gated by `bench_gate` as a *lower*
//!    bound) and per-request translate-latency quantiles
//!    `service_p50_seconds` / `service_p95_seconds` / `service_p99_seconds`
//!    (p99 gated as an *upper* bound). Min-of-N across samples, like the
//!    other timing reports;
//! 3. **Scripted overload counters** — the deterministic pause-script of
//!    [`ossa_bench::service_load::scripted_overload_stats`]: shed, queue
//!    expiry and degradation-ladder transitions, machine-independent and
//!    gated to exact equality.
//!
//! `--smoke` instead runs a small corpus with assertions on: every
//! submission admitted, every accepted request resolved exactly once with a
//! typed outcome, every output bit-identical to the direct isolated engine,
//! and the scripted overload producing exactly its predicted counters. Any
//! violation exits non-zero (the CI `service` job runs this).
//!
//! Usage: `service_bench [scale] [--smoke] [--workers N] [--samples N]
//! [--json PATH]` (defaults: the shared corpus scale, 2 workers, 3 samples).

use std::time::Instant;

use ossa_bench::service_load::scripted_overload_stats;
use ossa_bench::{corpus, DEFAULT_SCALE};
use ossa_destruct::{
    translate_corpus_serial, translate_function_isolated_policy, EnginePolicy, Limits,
    OutOfSsaOptions, TranslateScratch, ValidationMode,
};
use ossa_ir::Function;
use ossa_liveness::FunctionAnalyses;
use ossa_service::{ServiceConfig, ServiceResponse, ServiceStats, TranslationService};

fn flatten(scale: f64) -> Vec<Function> {
    corpus(scale).into_iter().flat_map(|w| w.functions).collect()
}

/// Warm-up requests per worker that [`service_pass`] pushes through the
/// service before the timed window (they count toward the final
/// [`ServiceStats`], not toward the returned responses).
const WARMUP_PER_WORKER: usize = 4;

/// Minimum serial batch-engine seconds over `samples` runs (after one
/// warm-up), the capacity calibration.
fn serial_seconds(functions: &[Function], options: &OutOfSsaOptions, samples: usize) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..=samples.max(1) {
        let mut work = functions.to_vec();
        let start = Instant::now();
        let _ = translate_corpus_serial(&mut work, options);
        let elapsed = start.elapsed().as_secs_f64();
        if i > 0 {
            best = best.min(elapsed);
        }
    }
    best
}

/// One closed-loop saturated pass: the whole corpus admitted up front,
/// `workers` persistent workers draining it. The workers are warmed with a
/// few requests before the timed window, so the measured quantiles reflect
/// the steady state of a persistent service rather than the one-off pool
/// and cache growth of a cold engine (which would otherwise own the p99 of
/// a small corpus). Returns the wall-clock of the submit-to-last-reply
/// window, the timed responses in submission order, and the final service
/// statistics.
fn service_pass(
    functions: &[Function],
    workers: usize,
    validation: ValidationMode,
) -> (f64, Vec<ServiceResponse>, ServiceStats) {
    let service = TranslationService::start(ServiceConfig {
        workers,
        queue_capacity: functions.len().max(1),
        validation,
        ..ServiceConfig::default()
    });
    let warmups: Vec<_> = functions
        .iter()
        .take(WARMUP_PER_WORKER * workers)
        .map(|func| service.submit(func.clone()).expect("queue sized to the whole corpus"))
        .collect();
    for ticket in warmups {
        let _ = ticket.wait();
    }
    let work = functions.to_vec();
    let start = Instant::now();
    let tickets: Vec<_> = work
        .into_iter()
        .map(|func| service.submit(func).expect("queue sized to the whole corpus"))
        .collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let wall = start.elapsed().as_secs_f64();
    (wall, responses, service.shutdown())
}

/// Upper-bound quantile of a sorted sample set (the value at the ceiling
/// rank, conservative like the service histograms).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The direct isolated-engine reference outputs (rung-0 configuration) the
/// smoke check holds the service to, bit for bit.
fn references(functions: &[Function], validation: ValidationMode) -> Vec<Function> {
    let options = OutOfSsaOptions::default();
    let policy = EnginePolicy::validating(validation);
    let mut analyses = FunctionAnalyses::new();
    let mut scratch = TranslateScratch::new();
    functions
        .iter()
        .map(|func| {
            let mut func = func.clone();
            analyses.invalidate_cfg();
            translate_function_isolated_policy(
                &mut func,
                &options,
                &Limits::default(),
                &policy,
                &mut analyses,
                &mut scratch,
            )
            .expect("healthy corpus function translates");
            func
        })
        .collect()
}

fn smoke(scale: f64, workers: usize) {
    let functions = flatten(scale);
    let validation = ValidationMode::Structural;
    let expected = references(&functions, validation);

    let (_, responses, stats) = service_pass(&functions, workers, validation);
    assert_eq!(responses.len(), functions.len(), "one reply per accepted request");
    let mut ids = std::collections::BTreeSet::new();
    for (i, response) in responses.iter().enumerate() {
        assert!(ids.insert(response.id), "duplicate reply for request {}", response.id);
        let completed = response
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("request {i} failed on a healthy corpus: {e}"));
        assert_eq!(completed.rung, 0, "request {i}: no overload, full fidelity");
        assert_eq!(
            completed.func, expected[i],
            "request {i} ({}): service output diverged from the direct engine",
            expected[i].name
        );
    }
    let warmup = functions.len().min(WARMUP_PER_WORKER * workers) as u64;
    assert_eq!(stats.completed, functions.len() as u64 + warmup);
    assert_eq!(stats.failed + stats.shed + stats.expired_in_queue + stats.deadline_exceeded, 0);
    assert_eq!(stats.resolved(), stats.accepted);

    let segment: Vec<Function> = functions.iter().take(16).cloned().collect();
    let capacity = segment.len() / 2;
    let overload = scripted_overload_stats(&segment);
    assert_eq!(overload.shed, (segment.len() + 2 - capacity) as u64);
    assert_eq!(overload.expired_in_queue, 2);
    assert_eq!(overload.degraded_transitions, 2);
    assert_eq!(overload.recovered_transitions, 2);
    assert_eq!(overload.resolved(), overload.accepted);
    assert_eq!(overload.level, 0, "the drain recovers the degradation level");

    println!(
        "service_bench --smoke: all checks passed ({} functions, {workers} workers, \
         {} scripted-overload requests)",
        functions.len(),
        overload.accepted
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale: Option<f64> = None;
    let mut workers = 2usize;
    let mut samples = 3usize;
    let mut json_path = "BENCH_service.json".to_string();
    let mut smoke_mode = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke_mode = true;
                i += 1;
            }
            "--workers" => {
                workers = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(workers);
                i += 2;
            }
            "--samples" => {
                samples = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(samples);
                i += 2;
            }
            "--json" => {
                json_path = args.get(i + 1).cloned().unwrap_or(json_path);
                i += 2;
            }
            other => {
                if let Ok(s) = other.parse::<f64>() {
                    scale = Some(s);
                } else {
                    eprintln!("unknown argument: {other}");
                    eprintln!(
                        "usage: service_bench [scale] [--smoke] [--workers N] [--samples N] \
                         [--json PATH]"
                    );
                    std::process::exit(2);
                }
                i += 1;
            }
        }
    }

    if smoke_mode {
        // The smoke check is correctness, not timing: a small corpus keeps
        // the CI job fast unless a scale was given explicitly.
        smoke(scale.unwrap_or(0.1), workers);
        return;
    }
    let scale = scale.unwrap_or(DEFAULT_SCALE);
    let functions = flatten(scale);
    let options = OutOfSsaOptions::default();

    let serial = serial_seconds(&functions, &options, samples);
    let capacity = functions.len() as f64 / serial;
    println!(
        "serial capacity at scale {scale}: {} functions in {serial:.4}s ({capacity:.0} fns/s)",
        functions.len()
    );

    // Warm-up pass, then min-of-N: best throughput and best quantiles
    // across the samples (per-request translate latency, not queue wait —
    // a saturated closed loop makes queue wait proportional to corpus
    // size, which would gate the corpus, not the service).
    let _ = service_pass(&functions, workers, ValidationMode::Off);
    let mut throughput = 0.0f64;
    let mut p50 = f64::INFINITY;
    let mut p95 = f64::INFINITY;
    let mut p99 = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let (wall, responses, stats) = service_pass(&functions, workers, ValidationMode::Off);
        assert_eq!(
            stats.failed, 0,
            "a healthy corpus function failed through the service — not a perf regression, a bug"
        );
        throughput = throughput.max(functions.len() as f64 / wall);
        let mut latencies: Vec<f64> = responses
            .iter()
            .map(|r| r.outcome.as_ref().expect("healthy corpus").translate_seconds)
            .collect();
        latencies.sort_by(|a, b| a.total_cmp(b));
        p50 = p50.min(quantile(&latencies, 0.50));
        p95 = p95.min(quantile(&latencies, 0.95));
        p99 = p99.min(quantile(&latencies, 0.99));
    }
    println!(
        "service ({workers} workers, saturated): {throughput:.0} fns/s, translate latency \
         p50 {p50:.6}s  p95 {p95:.6}s  p99 {p99:.6}s"
    );

    let segment: Vec<Function> = functions.iter().take(16).cloned().collect();
    let overload = scripted_overload_stats(&segment);
    println!(
        "scripted overload: {} accepted, {} shed, {} expired in queue, {} degraded / {} \
         recovered transitions",
        overload.accepted,
        overload.shed,
        overload.expired_in_queue,
        overload.degraded_transitions,
        overload.recovered_transitions
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"functions\": {},\n", functions.len()));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"serial_capacity_fns_per_sec\": {capacity:.2},\n"));
    json.push_str(&format!("  \"service_throughput_fns_per_sec\": {throughput:.2},\n"));
    json.push_str(&format!("  \"service_p50_seconds\": {p50:.6},\n"));
    json.push_str(&format!("  \"service_p95_seconds\": {p95:.6},\n"));
    json.push_str(&format!("  \"service_p99_seconds\": {p99:.6},\n"));
    json.push_str(&format!("  \"service_overload_accepted\": {},\n", overload.accepted));
    json.push_str(&format!("  \"service_overload_completed\": {},\n", overload.completed));
    json.push_str(&format!("  \"service_overload_shed\": {},\n", overload.shed));
    json.push_str(&format!(
        "  \"service_overload_expired_in_queue\": {},\n",
        overload.expired_in_queue
    ));
    json.push_str(&format!(
        "  \"service_overload_degraded_transitions\": {},\n",
        overload.degraded_transitions
    ));
    json.push_str(&format!(
        "  \"service_overload_recovered_transitions\": {}\n",
        overload.recovered_transitions
    ));
    json.push_str("}\n");
    std::fs::write(&json_path, json).expect("write service report JSON");
    println!("wrote {json_path}");
}
