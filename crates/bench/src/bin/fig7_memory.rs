//! Figure 7 reproduction: memory footprint of the interference graph,
//! liveness sets and liveness-checking structures, per engine configuration.

use ossa_bench::{corpus, memory_report, DEFAULT_SCALE};

fn main() {
    let scale =
        std::env::args().nth(1).and_then(|s| s.parse::<f64>().ok()).unwrap_or(DEFAULT_SCALE);
    let corpus = corpus(scale);
    let report = memory_report(&corpus);
    let baseline = report[0].measured_bytes.max(1);

    println!("Figure 7 — memory footprint (sum over corpus), scale {scale}\n");
    println!(
        "{:<44}{:>14}{:>14}{:>22}{:>20}",
        "engine", "measured (B)", "vs Sreedhar", "evaluated ordered (B)", "evaluated bitset (B)"
    );
    for row in &report {
        println!(
            "{:<44}{:>14}{:>14.3}{:>22}{:>20}",
            row.engine,
            row.measured_bytes,
            row.measured_bytes as f64 / baseline as f64,
            row.evaluated_ordered_bytes,
            row.evaluated_bitset_bytes
        );
    }
}
