//! Full-corpus self-check: translate the benchmark corpus under
//! *Differential* validation and a one-retry recovery policy, and fail the
//! process if any function comes out of the engine with an error.
//!
//! This is the CI end of the self-checking-translation design: every
//! function's pre-translation behaviour is replayed against its translated
//! output on the shared deterministic argument sets, so a silent miscompile
//! anywhere in the translation (the lost-copy/swap hazards the paper's
//! algorithms exist to avoid) turns into a red job instead of wrong code.
//! On a healthy engine the run reports zero validation failures and zero
//! recoveries; the report JSON records the counters either way so the CI
//! artifact shows exactly what the oracle replayed.
//!
//! Usage: `validate_corpus [scale] [--json PATH]` (default scale 1.0,
//! default report `VALIDATE_corpus.json`).

use std::process::ExitCode;

use ossa_destruct::{EnginePolicy, Limits, OutOfSsaOptions, ValidationMode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut json_path = "VALIDATE_corpus.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                if let Some(path) = args.get(i + 1) {
                    json_path = path.clone();
                }
                i += 2;
            }
            other => {
                match other.parse::<f64>() {
                    Ok(s) => scale = s,
                    Err(_) => {
                        eprintln!("unknown argument: {other}");
                        eprintln!("usage: validate_corpus [scale] [--json PATH]");
                        return ExitCode::from(2);
                    }
                }
                i += 1;
            }
        }
    }

    let corpus = ossa_bench::corpus(scale);
    let mut work: Vec<_> = corpus.iter().flat_map(|w| w.functions.iter().cloned()).collect();
    let total_functions = work.len();
    let options = OutOfSsaOptions::default();
    let policy = EnginePolicy::validating(ValidationMode::Differential).with_retries(1);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "validate_corpus: {total_functions} functions at scale {scale}, differential \
         validation, 1 conservative retry, {threads} threads"
    );
    let start = std::time::Instant::now();
    let stats = ossa_destruct::translate_corpus_isolated_policy(
        &mut work,
        &options,
        &Limits::UNBOUNDED,
        &policy,
        threads,
    );
    let seconds = start.elapsed().as_secs_f64();

    let errors: Vec<(usize, String)> = stats
        .results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e.to_string())))
        .collect();
    let validation_failures = stats.validation_failures();
    let recovered = stats.recovered_functions();
    let liveness_fallbacks = stats.total().liveness_fallbacks;

    println!("  translated {total_functions} functions in {seconds:.3}s");
    println!(
        "  {validation_failures} validation failures, {recovered} recovered, \
         {} errors, {liveness_fallbacks} liveness fallbacks",
        errors.len()
    );
    for (i, err) in &errors {
        eprintln!("  function #{i} failed: {err}");
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str("  \"mode\": \"differential\",\n");
    json.push_str(&format!("  \"functions\": {total_functions},\n"));
    json.push_str(&format!("  \"seconds\": {seconds:.6},\n"));
    json.push_str(&format!("  \"validation_failures\": {validation_failures},\n"));
    json.push_str(&format!("  \"recovered_functions\": {recovered},\n"));
    json.push_str(&format!("  \"liveness_fallbacks\": {liveness_fallbacks},\n"));
    json.push_str(&format!("  \"errors\": {}\n", errors.len()));
    json.push_str("}\n");
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(err) => eprintln!("failed to write {json_path}: {err}"),
    }

    if errors.is_empty() {
        println!("validate_corpus: every function validated");
        ExitCode::SUCCESS
    } else {
        eprintln!("validate_corpus: {} function(s) failed validation", errors.len());
        ExitCode::FAILURE
    }
}
