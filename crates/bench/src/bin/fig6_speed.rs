//! Figure 6 reproduction: out-of-SSA translation time for the different
//! engine configurations, normalized to `Sreedhar III`, plus the batch
//! corpus engine (serial vs parallel) and a machine-readable
//! `BENCH_fig6.json` for the performance trajectory of future changes.

use std::fmt::Write as _;

use ossa_bench::alloc::allocation_count;
use ossa_bench::{
    corpus, format_normalized, quality_report, run_variant_seed_style, run_variant_streaming,
    speed_report, DEFAULT_SCALE,
};
use ossa_destruct::{EnginePolicy, Limits, OutOfSsaOptions, PhaseSeconds, ValidationMode};

/// Counting allocator: the JSON reports how many heap allocations each
/// serial engine performs over the corpus, so allocation regressions on the
/// hot paths are as visible as time regressions.
#[global_allocator]
static ALLOC: ossa_bench::alloc::CountingAllocator = ossa_bench::alloc::CountingAllocator;

fn main() {
    let scale =
        std::env::args().nth(1).and_then(|s| s.parse::<f64>().ok()).unwrap_or(DEFAULT_SCALE);
    let corpus = corpus(scale);
    let names: Vec<&str> = corpus.iter().map(|w| w.name).collect();

    // Warm up once so allocation effects do not dominate the first engine.
    let _ = speed_report(&corpus[..1.min(corpus.len())]);
    let report = speed_report(&corpus);

    println!("Figure 6 — time to go out of SSA (ratio vs Sreedhar III), scale {scale}\n");
    let rows: Vec<(String, Vec<f64>)> =
        report.iter().map(|row| (row.engine.to_string(), row.seconds.clone())).collect();
    println!("{}", format_normalized(&names, &rows));

    println!("absolute time per engine (seconds, sum over corpus, serial batch engine):");
    for row in &report {
        let total: f64 = row.seconds.iter().sum();
        println!("  {:<44} {total:.4}", row.engine);
    }

    // Batch corpus engine: the seed-style serial loop (per-function API,
    // fresh analyses per call; clones excluded from all timed regions so the
    // comparison measures the engine, not the harness) vs the batch engine,
    // serial and parallel, over the *flattened* corpus — one translate_corpus
    // call, so the worker pool is spawned once and sized by the whole corpus
    // rather than per workload. Three samples each, minimum taken, to damp
    // scheduler noise.
    let options = OutOfSsaOptions::default();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let flat: Vec<_> = corpus.iter().flat_map(|w| w.functions.iter().cloned()).collect();
    let min3 = |f: &dyn Fn() -> f64| (0..3).map(|_| f()).fold(f64::INFINITY, f64::min);
    // Allocation counts: one untimed pass per serial engine, counting the
    // translation only — both input clones happen before the counter is
    // sampled, so the numbers compare the engines, not the harness.
    let seed_style_allocs = {
        let mut work = flat.clone();
        let before = allocation_count();
        for func in &mut work {
            let _ = ossa_destruct::translate_out_of_ssa(func, &options);
        }
        allocation_count() - before
    };
    let (batch_allocs, phase, batch_queries) = {
        let mut work = flat.clone();
        let before = allocation_count();
        let stats = ossa_destruct::translate_corpus_serial(&mut work, &options);
        let total = stats.total();
        (allocation_count() - before, total.phase_seconds, total.interference_queries)
    };
    let streaming_allocs = {
        let work = flat.clone();
        let before = allocation_count();
        let _ = ossa_destruct::translate_stream_with(work, &options, 1);
        allocation_count() - before
    };
    // Pooled streaming engine: three passes over the corpus through one
    // persistent worker and source. Pass 0 warms every pool and cache;
    // passes 1 and 2 are steady state. The gated metric is steady-state
    // allocations *per translated function*, measured at 1× (pass 1) and at
    // 2× the corpus (passes 1+2, i.e. the same stream drained twice) — with
    // flat steady-state heap traffic the two are equal up to jitter, no
    // matter how much longer the 2× stream is. Strictly single-threaded:
    // the allocation counter is thread-local.
    let stream_profile = ossa_bench::streaming_allocation_passes(scale, &options, 3);
    let stream_warmup_allocs = stream_profile.pass_allocations[0];
    let stream_steady_1x = stream_profile.steady_state_per_function(1);
    let stream_steady_2x = stream_profile.steady_state_per_function(2);
    let time_batch = |threads: usize| -> f64 {
        let mut work = flat.clone();
        let start = std::time::Instant::now();
        let _ = ossa_destruct::translate_corpus_with(&mut work, &options, threads);
        start.elapsed().as_secs_f64()
    };
    // Self-checking engine: the same serial batch run under Structural
    // output validation (CFG re-verification + translation postconditions on
    // every function). The gated trajectory number tracks what "always
    // validate" would cost a JIT.
    let validation_policy = EnginePolicy::validating(ValidationMode::Structural);
    let time_batch_validated = || -> f64 {
        let mut work = flat.clone();
        let start = std::time::Instant::now();
        let _ = ossa_destruct::translate_corpus_isolated_policy(
            &mut work,
            &options,
            &Limits::UNBOUNDED,
            &validation_policy,
            1,
        );
        start.elapsed().as_secs_f64()
    };
    // Recovery counters of one validated run: all zero on a healthy corpus
    // (validation rejects nothing, nothing recovers); the fallback counter
    // reports how many functions demoted the fast liveness checker.
    let (validation_failures, recovered_functions, liveness_fallbacks) = {
        let mut work = flat.clone();
        let stats = ossa_destruct::translate_corpus_isolated_policy(
            &mut work,
            &options,
            &Limits::UNBOUNDED,
            &validation_policy,
            1,
        );
        (stats.validation_failures(), stats.recovered_functions(), stats.total().liveness_fallbacks)
    };
    // Seed-style and batch-serial are sampled interleaved (five rounds,
    // minimum kept) so scheduler or frequency drift hits both equally
    // instead of biasing whichever ran later, and both at per-workload
    // granularity (clone excluded) so the input locality is identical — the
    // remaining difference is exactly the engine: per-worker caches and
    // scratch reused across functions versus rebuilt for every function.
    let mut seed_style = f64::INFINITY;
    let mut serial = f64::INFINITY;
    let mut streaming = f64::INFINITY;
    for _ in 0..5 {
        let s: f64 = corpus.iter().map(|w| run_variant_seed_style(w, &options).1).sum();
        seed_style = seed_style.min(s);
        let b: f64 = corpus.iter().map(|w| ossa_bench::run_variant(w, &options).1).sum();
        serial = serial.min(b);
        let t: f64 = corpus.iter().map(|w| run_variant_streaming(w, &options).1).sum();
        streaming = streaming.min(t);
    }
    let parallel: f64 = min3(&|| time_batch(0));
    let validated: f64 = min3(&time_batch_validated);
    let speedup = seed_style / parallel.max(1e-12);
    println!("\nbatch engine over the corpus (default options):");
    println!("  seed-style serial loop  {seed_style:.4}s  ({seed_style_allocs} allocations)");
    println!("  batch engine (serial)   {serial:.4}s  ({batch_allocs} allocations)");
    println!("  streaming engine (serial) {streaming:.4}s  ({streaming_allocs} allocations)");
    println!("  batch engine (parallel) {parallel:.4}s  ({threads} threads, {speedup:.2}x vs seed style)");
    let PhaseSeconds { liveness, coalesce, sequentialize } = phase;
    println!("  batch serial phases     liveness {liveness:.4}s, coalesce {coalesce:.4}s, sequentialize {sequentialize:.4}s");
    println!("  batch serial interference queries {batch_queries}");
    println!("  batch engine (serial, validated) {validated:.4}s  (structural output validation)");
    println!(
        "  self-checking counters: {validation_failures} validation failures, \
         {recovered_functions} recovered, {liveness_fallbacks} liveness fallbacks"
    );
    println!(
        "  pooled streaming: warm-up {stream_warmup_allocs} allocations, steady state \
         {stream_steady_1x:.3} allocations/function at 1x, {stream_steady_2x:.3} at 2x \
         ({} functions/pass)",
        stream_profile.functions_per_pass
    );

    // Scripted overload through the translation service: the shed /
    // queue-expiry / degradation counters are deterministic functions of
    // the corpus scale (the workers are paused while the queue is loaded),
    // so they ride in the trajectory JSON as a behaviour fingerprint of the
    // overload model next to the timing fields. The full service report
    // (throughput, tail latency) lives in `service_bench`'s own JSON.
    let overload = {
        let segment: Vec<_> = flat.iter().take(16).cloned().collect();
        ossa_bench::service_load::scripted_overload_stats(&segment)
    };
    println!(
        "\nscripted service overload: {} accepted, {} shed, {} expired in queue, \
         {} deadline expiries, {} degraded / {} recovered transitions",
        overload.accepted,
        overload.shed,
        overload.expired_in_queue,
        overload.deadline_exceeded,
        overload.degraded_transitions,
        overload.recovered_transitions
    );

    // Figure 5 static-copy counts per coalescing variant: the ROADMAP's
    // quality check tracks the Sreedhar III vs Sharing ordering anomaly
    // across PRs through these (deterministic, so they double as a cheap
    // behaviour fingerprint in the committed baseline).
    let static_copies: Vec<(&str, usize)> = quality_report(&corpus)
        .into_iter()
        .map(|row| (row.variant, row.copies.iter().sum::<usize>()))
        .collect();
    println!("\nFigure 5 static copies per variant (sum over corpus):");
    for &(name, copies) in &static_copies {
        println!("  {name:<14} {copies}");
    }

    // Machine-readable trajectory.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"engines\": [");
    for (i, row) in report.iter().enumerate() {
        let total: f64 = row.seconds.iter().sum();
        let comma = if i + 1 < report.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"seconds\": {:.6}}}{comma}",
            row.engine, total
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"figure5_static_copies\": [");
    for (i, &(name, copies)) in static_copies.iter().enumerate() {
        let comma = if i + 1 < static_copies.len() { "," } else { "" };
        let _ = writeln!(json, "    {{\"name\": \"{name}\", \"copies\": {copies}}}{comma}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"seed_style_serial_seconds\": {seed_style:.6},");
    let _ = writeln!(json, "  \"batch_serial_seconds\": {serial:.6},");
    let _ = writeln!(json, "  \"streaming_serial_seconds\": {streaming:.6},");
    let _ = writeln!(json, "  \"batch_parallel_seconds\": {parallel:.6},");
    let _ = writeln!(json, "  \"batch_threads\": {threads},");
    let _ = writeln!(json, "  \"batch_speedup_vs_seed_style\": {speedup:.3},");
    let _ = writeln!(json, "  \"phase_seconds\": {{");
    let _ = writeln!(json, "    \"liveness\": {liveness:.6},");
    let _ = writeln!(json, "    \"coalesce\": {coalesce:.6},");
    let _ = writeln!(json, "    \"sequentialize\": {sequentialize:.6}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"seed_style_serial_allocations\": {seed_style_allocs},");
    let _ = writeln!(json, "  \"batch_serial_allocations\": {batch_allocs},");
    let _ = writeln!(json, "  \"streaming_serial_allocations\": {streaming_allocs},");
    let _ = writeln!(
        json,
        "  \"streaming_functions_per_pass\": {},",
        stream_profile.functions_per_pass
    );
    let _ = writeln!(json, "  \"streaming_warmup_allocations\": {stream_warmup_allocs},");
    let _ = writeln!(json, "  \"streaming_steady_state_allocations\": {stream_steady_1x:.4},");
    let _ = writeln!(json, "  \"streaming_steady_state_allocations_2x\": {stream_steady_2x:.4},");
    let _ = writeln!(json, "  \"batch_serial_interference_queries\": {batch_queries},");
    let _ = writeln!(json, "  \"batch_serial_validated_seconds\": {validated:.6},");
    let _ = writeln!(json, "  \"validation_failures\": {validation_failures},");
    let _ = writeln!(json, "  \"recovered_functions\": {recovered_functions},");
    let _ = writeln!(json, "  \"liveness_fallbacks\": {liveness_fallbacks},");
    let _ = writeln!(json, "  \"service_overload_shed\": {},", overload.shed);
    let _ =
        writeln!(json, "  \"service_overload_expired_in_queue\": {},", overload.expired_in_queue);
    let _ =
        writeln!(json, "  \"service_overload_deadline_exceeded\": {},", overload.deadline_exceeded);
    let _ = writeln!(
        json,
        "  \"service_overload_degraded_transitions\": {},",
        overload.degraded_transitions
    );
    let _ = writeln!(
        json,
        "  \"service_overload_recovered_transitions\": {},",
        overload.recovered_transitions
    );
    let pool = &stream_profile.pool;
    let _ = writeln!(json, "  \"pool\": {{");
    let _ = writeln!(json, "    \"checkouts\": {},", pool.checkouts);
    let _ = writeln!(json, "    \"recycled\": {},", pool.recycled);
    let _ = writeln!(json, "    \"retired\": {},", pool.retired);
    let _ = writeln!(json, "    \"discarded\": {}", pool.discarded);
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    let path = "BENCH_fig6.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(err) => eprintln!("\nfailed to write {path}: {err}"),
    }
}
