//! Figure 6 reproduction: out-of-SSA translation time for the different
//! engine configurations, normalized to `Sreedhar III`.

use ossa_bench::{corpus, format_normalized, speed_report, DEFAULT_SCALE};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_SCALE);
    let corpus = corpus(scale);
    let names: Vec<&str> = corpus.iter().map(|w| w.name).collect();

    // Warm up once so allocation effects do not dominate the first engine.
    let _ = speed_report(&corpus[..1.min(corpus.len())]);
    let report = speed_report(&corpus);

    println!("Figure 6 — time to go out of SSA (ratio vs Sreedhar III), scale {scale}\n");
    let rows: Vec<(String, Vec<f64>)> =
        report.iter().map(|row| (row.engine.to_string(), row.seconds.clone())).collect();
    println!("{}", format_normalized(&names, &rows));

    println!("absolute time per engine (seconds, sum over corpus):");
    for row in &report {
        let total: f64 = row.seconds.iter().sum();
        println!("  {:<44} {total:.4}", row.engine);
    }
}
