//! Bit-identity fingerprint of the translated corpus.
//!
//! For every Figure 5 variant, translates the full corpus through the serial
//! batch engine and prints an FNV-1a hash of the printed form of every
//! translated function together with the behavioural counters (interference
//! queries, remaining copies). Two builds producing the same fingerprints
//! make exactly the same coalescing decisions on the whole corpus — the
//! cheap way to prove a performance change is behaviour-preserving.
//!
//! Usage: `fingerprint [scale]` (default scale 1.0).

use std::fmt::Write as _;

use ossa_destruct::{translate_corpus_serial, OutOfSsaOptions};

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse::<f64>().ok()).unwrap_or(1.0);
    let corpus = ossa_cfggen::spec_like_corpus(scale, true);
    let functions: Vec<_> = corpus.iter().flat_map(|w| w.functions.iter().cloned()).collect();
    println!("fingerprint over {} functions at scale {scale}", functions.len());

    let mut text = String::new();
    for (name, options) in OutOfSsaOptions::figure5_variants() {
        let mut work = functions.clone();
        let stats = translate_corpus_serial(&mut work, &options);
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for func in &work {
            text.clear();
            let _ = write!(text, "{}", func.display());
            fnv1a(&mut hash, text.as_bytes());
        }
        let total = stats.total();
        println!(
            "{name:<14} hash {hash:016x}  queries {:>9}  copies {:>6}  coalesced {:>6}",
            total.interference_queries, total.remaining_copies, total.moves_coalesced
        );
    }
}
