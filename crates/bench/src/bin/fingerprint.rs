//! Bit-identity fingerprint of the translated corpus.
//!
//! For every Figure 5 variant, translates the full corpus through the serial
//! batch engine and prints an FNV-1a hash of the printed form of every
//! translated function together with the behavioural counters (interference
//! queries, remaining copies). Two builds producing the same fingerprints
//! make exactly the same coalescing decisions on the whole corpus — the
//! cheap way to prove a performance change is behaviour-preserving.
//!
//! Usage:
//!
//! * `fingerprint [scale]` — print the fingerprints;
//! * `fingerprint [scale] --write <path>` — also write them to `<path>`
//!   (the committed `FINGERPRINT_baseline.txt`);
//! * `fingerprint [scale] --check <path>` — compare against `<path>` and
//!   exit non-zero on any mismatch, which is how CI fails the build on a
//!   bit-identity regression.

use std::fmt::Write as _;
use std::process::ExitCode;

use ossa_destruct::{translate_corpus_serial, OutOfSsaOptions};

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

fn main() -> ExitCode {
    // Strict argument handling: this binary is a CI gate, so a malformed
    // invocation (missing operand, typo'd flag) must fail loudly instead of
    // silently skipping the comparison and exiting green.
    let mut scale = 1.0f64;
    let mut check: Option<String> = None;
    let mut write: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => {
                    eprintln!("fingerprint: --check requires a baseline path");
                    return ExitCode::FAILURE;
                }
            },
            "--write" => match args.next() {
                Some(path) => write = Some(path),
                None => {
                    eprintln!("fingerprint: --write requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => match other.parse::<f64>() {
                Ok(s) => scale = s,
                Err(_) => {
                    eprintln!(
                        "fingerprint: unrecognized argument {other:?} \
                         (usage: fingerprint [scale] [--check <path>] [--write <path>])"
                    );
                    return ExitCode::FAILURE;
                }
            },
        }
    }

    let corpus = ossa_cfggen::spec_like_corpus(scale, true);
    let functions: Vec<_> = corpus.iter().flat_map(|w| w.functions.iter().cloned()).collect();
    println!("fingerprint over {} functions at scale {scale}", functions.len());

    let mut text = String::new();
    let mut report = String::new();
    let mut per_workload: Vec<(&str, Vec<u64>)> = Vec::new();
    for (name, options) in OutOfSsaOptions::figure5_variants() {
        let mut work = functions.clone();
        let stats = translate_corpus_serial(&mut work, &options);
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for func in &work {
            text.clear();
            let _ = write!(text, "{}", func.display());
            fnv1a(&mut hash, text.as_bytes());
        }
        let total = stats.total();
        let line = format!(
            "{name:<14} hash {hash:016x}  queries {:>9}  copies {:>6}  coalesced {:>6}",
            total.interference_queries, total.remaining_copies, total.moves_coalesced
        );
        println!("{line}");
        let _ = writeln!(report, "{line}");
        // Per-workload query slices: `per_function` follows the flattened
        // corpus order, so summing it workload by workload localizes the
        // per-variant total without a second translation pass.
        let mut queries = Vec::with_capacity(corpus.len());
        let mut at = 0usize;
        for workload in &corpus {
            let n = workload.functions.len();
            queries
                .push(stats.per_function[at..at + n].iter().map(|s| s.interference_queries).sum());
            at += n;
        }
        per_workload.push((name, queries));
    }

    // Per-workload interference-query breakdown (stdout only; the committed
    // baseline keeps the stable per-variant format above). This is the
    // localization handle the ROADMAP's decision differ needs for the
    // Sreedhar III vs Sharing static-copy anomaly: a divergence shows up
    // here as a workload whose query ratio between the two variants is an
    // outlier, narrowing the function range to diff first.
    println!("\nper-workload interference queries:");
    print!("{:<14}", "");
    for workload in &corpus {
        print!(" {:>10}", workload.name);
    }
    println!();
    for (name, queries) in &per_workload {
        print!("{name:<14}");
        for q in queries {
            print!(" {q:>10}");
        }
        println!();
    }

    if let Some(path) = write {
        match std::fs::write(&path, &report) {
            Ok(()) => println!("wrote {path}"),
            Err(err) => {
                eprintln!("fingerprint: cannot write {path}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = check {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("fingerprint: cannot read baseline {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        if baseline.trim_end() != report.trim_end() {
            eprintln!("fingerprint: MISMATCH against {path} — translated output changed");
            eprintln!("--- baseline\n{baseline}--- current\n{report}");
            return ExitCode::FAILURE;
        }
        println!("fingerprint: matches {path}");
    }
    ExitCode::SUCCESS
}
