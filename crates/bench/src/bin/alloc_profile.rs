//! Per-phase allocation profile of the serial batch engine.
//!
//! Splits the batch-serial allocation count of `fig6_speed` into its
//! translation phases by driving them separately over the same corpus with
//! the counting allocator: copy insertion (isolation + Method I), the
//! analyses (CFG/domtree/frequencies + liveness backend + def/use index),
//! the decision phase, and sequentialization. The phases are re-driven
//! through the public pipeline entry points, so the split is approximate at
//! the boundaries but pins down where an allocation regression lives.
//!
//! Usage: `alloc_profile [scale] [--phase coalesce] [--streaming] [--json PATH]`
//! (default scale 1.0).
//!
//! With `--phase coalesce` the run additionally splits the coalesce phase by
//! sub-stage (setup / affinity build / decide / sharing / snapshot /
//! rewrite) through the [`ossa_destruct::set_coalesce_probe`] hook, counting
//! allocations and wall-clock per sub-stage; `--json PATH` writes that
//! drill-down as a JSON report (uploaded as a CI artifact next to
//! `BENCH_fig6.json`).
//!
//! With `--streaming` the run instead profiles the *pooled streaming
//! engine*: several passes over the corpus through one persistent
//! [`ossa_destruct::EngineWorker`] and corpus source, reporting the warm-up
//! pass (cold pools and caches growing to their high-water marks) against
//! the steady-state passes (recycled storage only) as allocations per
//! translated function, plus the function-pool traffic. `--json PATH`
//! writes the profile for the CI artifact (`ALLOC_streaming.json`).

use std::cell::RefCell;
use std::time::Instant;

use ossa_bench::alloc::allocation_count;
use ossa_destruct::{
    insertion, set_coalesce_probe, translate_corpus_isolated_policy, translate_corpus_serial,
    translate_out_of_ssa_scratch, CoalesceStage, EnginePolicy, Limits, OutOfSsaOptions,
    TranslateScratch, ValidationMode,
};
use ossa_liveness::FunctionAnalyses;

#[global_allocator]
static ALLOC: ossa_bench::alloc::CountingAllocator = ossa_bench::alloc::CountingAllocator;

/// Probed sub-stages of the coalesce phase, in pipeline order.
const STAGE_NAMES: [&str; 6] =
    ["setup", "affinity_build", "decide", "sharing", "snapshot", "rewrite"];

/// Per-sub-stage accumulators of the coalesce drill-down. The probe fires at
/// sub-stage starts; the allocation and time deltas between two firings are
/// attributed to the earlier stage, and `CoalesceStage::Done` closes the
/// last one, so inter-function driver work is attributed to no stage.
struct ProbeState {
    last: Option<(usize, u64, Instant)>,
    allocs: [u64; STAGE_NAMES.len()],
    nanos: [u64; STAGE_NAMES.len()],
}

thread_local! {
    static PROBE_STATE: RefCell<ProbeState> = const {
        RefCell::new(ProbeState {
            last: None,
            allocs: [0; STAGE_NAMES.len()],
            nanos: [0; STAGE_NAMES.len()],
        })
    };
}

fn stage_index(stage: CoalesceStage) -> Option<usize> {
    match stage {
        CoalesceStage::Setup => Some(0),
        CoalesceStage::AffinityBuild => Some(1),
        CoalesceStage::Decide => Some(2),
        CoalesceStage::Sharing => Some(3),
        CoalesceStage::Snapshot => Some(4),
        CoalesceStage::Rewrite => Some(5),
        CoalesceStage::Done => None,
    }
}

fn coalesce_stage_probe(stage: CoalesceStage) {
    let allocs_now = allocation_count();
    let now = Instant::now();
    PROBE_STATE.with(|state| {
        let mut state = state.borrow_mut();
        if let Some((idx, allocs_then, then)) = state.last {
            state.allocs[idx] += allocs_now - allocs_then;
            state.nanos[idx] += now.duration_since(then).as_nanos() as u64;
        }
        state.last = stage_index(stage).map(|idx| (idx, allocs_now, now));
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut phase: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut streaming = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--phase" => {
                phase = args.get(i + 1).cloned();
                i += 2;
            }
            "--streaming" => {
                streaming = true;
                i += 1;
            }
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 2;
            }
            other => {
                if let Ok(s) = other.parse::<f64>() {
                    scale = s;
                } else {
                    eprintln!("unknown argument: {other}");
                    eprintln!(
                        "usage: alloc_profile [scale] [--phase coalesce] [--streaming] \
                         [--json PATH]"
                    );
                    std::process::exit(2);
                }
                i += 1;
            }
        }
    }
    if let Some(name) = &phase {
        if name != "coalesce" {
            eprintln!("unknown --phase {name}; only `coalesce` is supported");
            std::process::exit(2);
        }
    }
    let options = OutOfSsaOptions::default();
    if streaming {
        streaming_report(scale, &options, json_path.as_deref());
        return;
    }
    let corpus = ossa_cfggen::spec_like_corpus(scale, true);
    let functions: Vec<_> = corpus.iter().flat_map(|w| w.functions.iter().cloned()).collect();

    if phase.is_some() {
        coalesce_drilldown(&functions, &options, scale, json_path.as_deref());
        return;
    }

    // Warm-up run so lazy statics and the first-growth costs of the recycled
    // caches are out of the way (the steady-state numbers are the gated ones).
    {
        let mut work = functions.clone();
        let _ = translate_corpus_serial(&mut work, &options);
    }

    // Whole batch-serial translation.
    let total = {
        let mut work = functions.clone();
        let before = allocation_count();
        let _ = translate_corpus_serial(&mut work, &options);
        allocation_count() - before
    };

    // Copy insertion alone (isolation + Method I) with recycled storage.
    let (insert_only, isolate_only) = {
        let mut work = functions.clone();
        let mut iso_work = functions.clone();
        let mut result = insertion::CopyInsertion::default();
        // Warm the recycled insertion storage.
        {
            let mut warm = functions[0].clone();
            result.reset();
            insertion::isolate_pinned_values(&mut warm, &mut result);
            insertion::insert_phi_copies_into(&mut warm, &mut result);
        }
        let before = allocation_count();
        for func in &mut iso_work {
            result.reset();
            insertion::isolate_pinned_values(func, &mut result);
        }
        let isolate_only = allocation_count() - before;
        let before = allocation_count();
        for func in &mut work {
            result.reset();
            insertion::isolate_pinned_values(func, &mut result);
            insertion::insert_phi_copies_into(func, &mut result);
        }
        (allocation_count() - before, isolate_only)
    };

    // Translation with sequentialization disabled: total minus this is the
    // sequentialization share.
    let no_seq = {
        let mut work = functions.clone();
        let opts = options.clone().with_sequentialize(false);
        let mut analyses = FunctionAnalyses::new();
        let mut scratch = TranslateScratch::new();
        {
            let mut warm = functions[0].clone();
            analyses.invalidate_cfg();
            let _ = translate_out_of_ssa_scratch(&mut warm, &opts, &mut analyses, &mut scratch);
        }
        let before = allocation_count();
        for func in &mut work {
            analyses.invalidate_cfg();
            let _ = translate_out_of_ssa_scratch(func, &opts, &mut analyses, &mut scratch);
        }
        allocation_count() - before
    };

    // Analyses alone over one recycled cache (pre-insertion shapes, so a
    // lower bound on the in-pipeline analysis share).
    let analyses_only = {
        let work = functions.clone();
        let mut analyses = FunctionAnalyses::new();
        {
            let warm = &functions[0];
            analyses.invalidate_cfg();
            let _ = analyses.frequencies(warm);
            let _ = analyses.live_range_info(warm);
            let _ = analyses.fast_liveness(warm);
        }
        let before = allocation_count();
        for func in &work {
            analyses.invalidate_cfg();
            let _ = analyses.frequencies(func);
            let _ = analyses.live_range_info(func);
            let _ = analyses.fast_liveness(func);
        }
        allocation_count() - before
    };

    // Sub-analysis increments (each loop adds one analysis to the forced
    // set; the delta is that analysis's share).
    let analysis_steps = {
        let work = functions.clone();
        let mut analyses = FunctionAnalyses::new();
        let force = |upto: usize, analyses: &mut FunctionAnalyses| -> u64 {
            {
                let warm = &functions[0];
                analyses.invalidate_cfg();
                let _ = analyses.domtree(warm);
                if upto >= 1 {
                    let _ = analyses.frequencies(warm);
                }
                if upto >= 2 {
                    let _ = analyses.live_range_info(warm);
                }
                if upto >= 3 {
                    let _ = analyses.fast_liveness(warm);
                }
            }
            let before = allocation_count();
            for func in &work {
                analyses.invalidate_cfg();
                let _ = analyses.domtree(func);
                if upto >= 1 {
                    let _ = analyses.frequencies(func);
                }
                if upto >= 2 {
                    let _ = analyses.live_range_info(func);
                }
                if upto >= 3 {
                    let _ = analyses.fast_liveness(func);
                }
            }
            allocation_count() - before
        };
        let domtree = force(0, &mut analyses);
        let freqs = force(1, &mut analyses);
        let info = force(2, &mut analyses);
        let fast = force(3, &mut analyses);
        (domtree, freqs, info, fast)
    };

    println!("allocation profile at scale {scale} over {} functions", functions.len());
    println!("  analyses alone (pre-insertion shapes) {analyses_only}");
    println!(
        "    cfg+domtree {}  +freqs {}  +def/use {}  +fastliveness {}",
        analysis_steps.0, analysis_steps.1, analysis_steps.2, analysis_steps.3
    );
    println!("  batch serial total          {total}");
    println!("  copy insertion alone        {insert_only}");
    println!("  isolation alone             {isolate_only}");
    println!("  without sequentialization   {no_seq}");
    println!("  sequentialization share     {}", total.saturating_sub(no_seq));
    println!("  per function (total)        {:.1}", total as f64 / functions.len() as f64);
}

/// The `--streaming` profile: warm-up vs steady-state allocation counts of
/// the pooled streaming engine, per pass and per translated function, with
/// the function-pool traffic. Four passes: pass 0 warms every pool, cache
/// and scratch buffer; passes 1–3 are steady state (the gate's "1×" is pass
/// 1, its "2×" passes 1+2 — the same corpus streamed twice through the warm
/// worker).
fn streaming_report(scale: f64, options: &OutOfSsaOptions, json_path: Option<&str>) {
    let profile = ossa_bench::streaming_allocation_passes(scale, options, 4);
    let functions = profile.functions_per_pass;
    let warmup = profile.pass_allocations[0];
    println!("pooled streaming allocation profile at scale {scale}, {functions} functions/pass");
    println!("  warm-up pass            {warmup} allocations");
    for (i, allocs) in profile.pass_allocations.iter().enumerate().skip(1) {
        println!(
            "  steady-state pass {i}     {allocs} allocations  ({:.3} per function)",
            *allocs as f64 / functions.max(1) as f64
        );
    }
    let steady_1x = profile.steady_state_per_function(1);
    let steady_2x = profile.steady_state_per_function(2);
    println!("  steady state per function: {steady_1x:.3} at 1x corpus, {steady_2x:.3} at 2x");
    let pool = profile.pool;
    println!(
        "  pool traffic: {} checkouts ({} recycled), {} retired, {} discarded",
        pool.checkouts, pool.recycled, pool.retired, pool.discarded
    );

    // One self-checking pass over the same corpus (Structural validation,
    // serial): the recovery counters belong next to the pool traffic in the
    // CI artifact — all zero on a healthy corpus, and a nonzero
    // `validation_failures` in the artifact is the first place an injected
    // or real miscompile would surface outside the test suite.
    let (validation_failures, recovered_functions, liveness_fallbacks) = {
        let corpus = ossa_cfggen::spec_like_corpus(scale, true);
        let mut work: Vec<_> = corpus.iter().flat_map(|w| w.functions.iter().cloned()).collect();
        let stats = translate_corpus_isolated_policy(
            &mut work,
            options,
            &Limits::UNBOUNDED,
            &EnginePolicy::validating(ValidationMode::Structural),
            1,
        );
        (stats.validation_failures(), stats.recovered_functions(), stats.total().liveness_fallbacks)
    };
    println!(
        "  self-checking pass: {validation_failures} validation failures, \
         {recovered_functions} recovered, {liveness_fallbacks} liveness fallbacks"
    );

    // Scripted overload through the translation service: deterministic
    // shed / queue-expiry / degradation counters (the workers are paused
    // while the queue is loaded), reported next to the pool traffic so the
    // CI artifact carries the overload-model fingerprint too. Allocation
    // counting is thread-local, so the service's worker threads do not
    // perturb the streaming numbers above.
    let overload = {
        let corpus = ossa_cfggen::spec_like_corpus(scale, true);
        let segment: Vec<_> =
            corpus.iter().flat_map(|w| w.functions.iter().cloned()).take(16).collect();
        ossa_bench::service_load::scripted_overload_stats(&segment)
    };
    println!(
        "  scripted service overload: {} shed, {} expired in queue, {} deadline expiries, \
         {} degraded / {} recovered transitions",
        overload.shed,
        overload.expired_in_queue,
        overload.deadline_exceeded,
        overload.degraded_transitions,
        overload.recovered_transitions
    );

    if let Some(path) = json_path {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str(&format!("  \"scale\": {scale},\n"));
        json.push_str("  \"mode\": \"streaming\",\n");
        json.push_str(&format!("  \"functions_per_pass\": {functions},\n"));
        json.push_str("  \"pass_allocations\": [");
        for (i, allocs) in profile.pass_allocations.iter().enumerate() {
            if i > 0 {
                json.push_str(", ");
            }
            json.push_str(&allocs.to_string());
        }
        json.push_str("],\n");
        json.push_str(&format!("  \"warmup_allocations\": {warmup},\n"));
        json.push_str(&format!("  \"steady_state_allocations\": {steady_1x:.4},\n"));
        json.push_str(&format!("  \"steady_state_allocations_2x\": {steady_2x:.4},\n"));
        json.push_str("  \"pool\": {\n");
        json.push_str(&format!("    \"checkouts\": {},\n", pool.checkouts));
        json.push_str(&format!("    \"recycled\": {},\n", pool.recycled));
        json.push_str(&format!("    \"retired\": {},\n", pool.retired));
        json.push_str(&format!("    \"discarded\": {}\n", pool.discarded));
        json.push_str("  },\n");
        json.push_str(&format!("  \"validation_failures\": {validation_failures},\n"));
        json.push_str(&format!("  \"recovered_functions\": {recovered_functions},\n"));
        json.push_str(&format!("  \"liveness_fallbacks\": {liveness_fallbacks},\n"));
        json.push_str(&format!("  \"service_overload_shed\": {},\n", overload.shed));
        json.push_str(&format!(
            "  \"service_overload_expired_in_queue\": {},\n",
            overload.expired_in_queue
        ));
        json.push_str(&format!(
            "  \"service_overload_deadline_exceeded\": {},\n",
            overload.deadline_exceeded
        ));
        json.push_str(&format!(
            "  \"service_overload_degraded_transitions\": {},\n",
            overload.degraded_transitions
        ));
        json.push_str(&format!(
            "  \"service_overload_recovered_transitions\": {}\n",
            overload.recovered_transitions
        ));
        json.push_str("}\n");
        std::fs::write(path, json).expect("write streaming profile JSON");
        println!("wrote {path}");
    }
}

/// The `--phase coalesce` drill-down: one warmed batch-serial pass with the
/// sub-stage probe installed, reporting allocations and wall-clock per
/// coalesce sub-stage, optionally as JSON.
fn coalesce_drilldown(
    functions: &[ossa_ir::Function],
    options: &OutOfSsaOptions,
    scale: f64,
    json_path: Option<&str>,
) {
    // Warm-up pass (no probe) so recycled caches reach steady state.
    {
        let mut work = functions.to_vec();
        let _ = translate_corpus_serial(&mut work, options);
    }
    let mut work = functions.to_vec();
    set_coalesce_probe(Some(coalesce_stage_probe));
    let before = allocation_count();
    let _ = translate_corpus_serial(&mut work, options);
    let total_allocs = allocation_count() - before;
    set_coalesce_probe(None);
    let (allocs, nanos) = PROBE_STATE.with(|state| (state.borrow().allocs, state.borrow().nanos));

    let stage_allocs: u64 = allocs.iter().sum();
    let stage_nanos: u64 = nanos.iter().sum();
    println!("coalesce allocation drill-down at scale {scale} over {} functions", functions.len());
    for (i, name) in STAGE_NAMES.iter().enumerate() {
        println!("  {name:<15} {:>6} allocations  {:>9.3} ms", allocs[i], nanos[i] as f64 / 1e6);
    }
    println!(
        "  {:<15} {stage_allocs:>6} allocations  {:>9.3} ms",
        "coalesce total",
        stage_nanos as f64 / 1e6
    );
    println!("  batch serial total (all phases): {total_allocs} allocations");

    if let Some(path) = json_path {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str(&format!("  \"scale\": {scale},\n"));
        json.push_str("  \"phase\": \"coalesce\",\n");
        json.push_str(&format!("  \"functions\": {},\n", functions.len()));
        json.push_str("  \"stages\": {\n");
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            json.push_str(&format!(
                "    \"{name}\": {{ \"allocations\": {}, \"seconds\": {:.6} }}{}\n",
                allocs[i],
                nanos[i] as f64 / 1e9,
                if i + 1 < STAGE_NAMES.len() { "," } else { "" }
            ));
        }
        json.push_str("  },\n");
        json.push_str(&format!(
            "  \"total\": {{ \"allocations\": {stage_allocs}, \"seconds\": {:.6} }},\n",
            stage_nanos as f64 / 1e9
        ));
        json.push_str(&format!("  \"batch_serial_allocations\": {total_allocs}\n"));
        json.push_str("}\n");
        std::fs::write(path, json).expect("write drill-down JSON");
        println!("wrote {path}");
    }
}
