//! Per-phase allocation profile of the serial batch engine.
//!
//! Splits the batch-serial allocation count of `fig6_speed` into its
//! translation phases by driving them separately over the same corpus with
//! the counting allocator: copy insertion (isolation + Method I), the
//! analyses (CFG/domtree/frequencies + liveness backend + def/use index),
//! the decision phase, and sequentialization. The phases are re-driven
//! through the public pipeline entry points, so the split is approximate at
//! the boundaries but pins down where an allocation regression lives.
//!
//! Usage: `alloc_profile [scale]` (default scale 1.0).

use ossa_bench::alloc::allocation_count;
use ossa_destruct::{
    insertion, translate_corpus_serial, translate_out_of_ssa_scratch, OutOfSsaOptions,
    TranslateScratch,
};
use ossa_liveness::FunctionAnalyses;

#[global_allocator]
static ALLOC: ossa_bench::alloc::CountingAllocator = ossa_bench::alloc::CountingAllocator;

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse::<f64>().ok()).unwrap_or(1.0);
    let corpus = ossa_cfggen::spec_like_corpus(scale, true);
    let functions: Vec<_> = corpus.iter().flat_map(|w| w.functions.iter().cloned()).collect();
    let options = OutOfSsaOptions::default();

    // Warm-up run so lazy statics and the first-growth costs of the recycled
    // caches are out of the way (the steady-state numbers are the gated ones).
    {
        let mut work = functions.clone();
        let _ = translate_corpus_serial(&mut work, &options);
    }

    // Whole batch-serial translation.
    let total = {
        let mut work = functions.clone();
        let before = allocation_count();
        let _ = translate_corpus_serial(&mut work, &options);
        allocation_count() - before
    };

    // Copy insertion alone (isolation + Method I) with recycled storage.
    let (insert_only, isolate_only) = {
        let mut work = functions.clone();
        let mut iso_work = functions.clone();
        let mut result = insertion::CopyInsertion::default();
        // Warm the recycled insertion storage.
        {
            let mut warm = functions[0].clone();
            result.reset();
            insertion::isolate_pinned_values(&mut warm, &mut result);
            insertion::insert_phi_copies_into(&mut warm, &mut result);
        }
        let before = allocation_count();
        for func in &mut iso_work {
            result.reset();
            insertion::isolate_pinned_values(func, &mut result);
        }
        let isolate_only = allocation_count() - before;
        let before = allocation_count();
        for func in &mut work {
            result.reset();
            insertion::isolate_pinned_values(func, &mut result);
            insertion::insert_phi_copies_into(func, &mut result);
        }
        (allocation_count() - before, isolate_only)
    };

    // Translation with sequentialization disabled: total minus this is the
    // sequentialization share.
    let no_seq = {
        let mut work = functions.clone();
        let opts = options.clone().with_sequentialize(false);
        let mut analyses = FunctionAnalyses::new();
        let mut scratch = TranslateScratch::new();
        {
            let mut warm = functions[0].clone();
            analyses.invalidate_cfg();
            let _ = translate_out_of_ssa_scratch(&mut warm, &opts, &mut analyses, &mut scratch);
        }
        let before = allocation_count();
        for func in &mut work {
            analyses.invalidate_cfg();
            let _ = translate_out_of_ssa_scratch(func, &opts, &mut analyses, &mut scratch);
        }
        allocation_count() - before
    };

    // Analyses alone over one recycled cache (pre-insertion shapes, so a
    // lower bound on the in-pipeline analysis share).
    let analyses_only = {
        let work = functions.clone();
        let mut analyses = FunctionAnalyses::new();
        {
            let warm = &functions[0];
            analyses.invalidate_cfg();
            let _ = analyses.frequencies(warm);
            let _ = analyses.live_range_info(warm);
            let _ = analyses.fast_liveness(warm);
        }
        let before = allocation_count();
        for func in &work {
            analyses.invalidate_cfg();
            let _ = analyses.frequencies(func);
            let _ = analyses.live_range_info(func);
            let _ = analyses.fast_liveness(func);
        }
        allocation_count() - before
    };

    // Sub-analysis increments (each loop adds one analysis to the forced
    // set; the delta is that analysis's share).
    let analysis_steps = {
        let work = functions.clone();
        let mut analyses = FunctionAnalyses::new();
        let force = |upto: usize, analyses: &mut FunctionAnalyses| -> u64 {
            {
                let warm = &functions[0];
                analyses.invalidate_cfg();
                let _ = analyses.domtree(warm);
                if upto >= 1 {
                    let _ = analyses.frequencies(warm);
                }
                if upto >= 2 {
                    let _ = analyses.live_range_info(warm);
                }
                if upto >= 3 {
                    let _ = analyses.fast_liveness(warm);
                }
            }
            let before = allocation_count();
            for func in &work {
                analyses.invalidate_cfg();
                let _ = analyses.domtree(func);
                if upto >= 1 {
                    let _ = analyses.frequencies(func);
                }
                if upto >= 2 {
                    let _ = analyses.live_range_info(func);
                }
                if upto >= 3 {
                    let _ = analyses.fast_liveness(func);
                }
            }
            allocation_count() - before
        };
        let domtree = force(0, &mut analyses);
        let freqs = force(1, &mut analyses);
        let info = force(2, &mut analyses);
        let fast = force(3, &mut analyses);
        (domtree, freqs, info, fast)
    };

    println!("allocation profile at scale {scale} over {} functions", functions.len());
    println!("  analyses alone (pre-insertion shapes) {analyses_only}");
    println!(
        "    cfg+domtree {}  +freqs {}  +def/use {}  +fastliveness {}",
        analysis_steps.0, analysis_steps.1, analysis_steps.2, analysis_steps.3
    );
    println!("  batch serial total          {total}");
    println!("  copy insertion alone        {insert_only}");
    println!("  isolation alone             {isolate_only}");
    println!("  without sequentialization   {no_seq}");
    println!("  sequentialization share     {}", total.saturating_sub(no_seq));
    println!("  per function (total)        {:.1}", total as f64 / functions.len() as f64);
}
