//! Figure 5 reproduction: impact of interference accuracy and coalescing
//! strategy on the number of remaining copies, normalized to `Intersect`.

use ossa_bench::{corpus, format_normalized, quality_report, DEFAULT_SCALE};

fn main() {
    let scale =
        std::env::args().nth(1).and_then(|s| s.parse::<f64>().ok()).unwrap_or(DEFAULT_SCALE);
    let corpus = corpus(scale);
    let names: Vec<&str> = corpus.iter().map(|w| w.name).collect();
    let report = quality_report(&corpus);

    println!("Figure 5 — remaining static copies (ratio vs Intersect), scale {scale}\n");
    let rows: Vec<(String, Vec<f64>)> = report
        .iter()
        .map(|row| (row.variant.to_string(), row.copies.iter().map(|&c| c as f64).collect()))
        .collect();
    println!("{}", format_normalized(&names, &rows));

    println!("Figure 5 (weighted / dynamic estimate) — ratio vs Intersect\n");
    let rows: Vec<(String, Vec<f64>)> =
        report.iter().map(|row| (row.variant.to_string(), row.weighted.clone())).collect();
    println!("{}", format_normalized(&names, &rows));

    println!("absolute remaining static copies per variant (sum over corpus):");
    for row in &report {
        let total: usize = row.copies.iter().sum();
        println!("  {:<14} {total}", row.variant);
    }
}
