//! Corner-case table (the paper's Figures 1–4 as executable checks): the
//! lost-copy, swap, branch-use and branch-with-decrement situations, each
//! translated and verified against the interpreter.

use ossa_bench::quality_variants;
use ossa_destruct::translate_corpus;
use ossa_interp::{same_behaviour, Interpreter};
use ossa_ir::builder::FunctionBuilder;
use ossa_ir::{BinaryOp, CmpOp, Function, InstData};

fn lost_copy() -> Function {
    let mut b = FunctionBuilder::new("fig4_lost_copy", 1);
    let entry = b.create_block();
    let header = b.create_block();
    let exit = b.create_block();
    b.set_entry(entry);
    b.switch_to_block(entry);
    let p = b.param(0);
    let x1 = b.iconst(1);
    b.jump(header);
    b.switch_to_block(header);
    let x3 = b.declare_value();
    let i_next = b.declare_value();
    let x2 = b.phi(vec![(entry, x1), (header, x3)]);
    let i = b.phi(vec![(entry, p), (header, i_next)]);
    let one = b.iconst(1);
    b.func_mut()
        .append_inst(header, InstData::Binary { op: BinaryOp::Add, dst: x3, args: [x2, one] });
    b.func_mut()
        .append_inst(header, InstData::Binary { op: BinaryOp::Sub, dst: i_next, args: [i, one] });
    let zero = b.iconst(0);
    let c = b.cmp(CmpOp::Gt, i_next, zero);
    b.branch(c, header, exit);
    b.switch_to_block(exit);
    b.ret(Some(x2));
    b.finish()
}

fn swap() -> Function {
    let mut b = FunctionBuilder::new("fig3_swap", 1);
    let entry = b.create_block();
    let header = b.create_block();
    let exit = b.create_block();
    b.set_entry(entry);
    b.switch_to_block(entry);
    let p = b.param(0);
    let a1 = b.iconst(1);
    let b1 = b.iconst(2);
    b.jump(header);
    b.switch_to_block(header);
    let a2 = b.declare_value();
    let b2 = b.declare_value();
    let i_next = b.declare_value();
    b.phi_to(a2, vec![(entry, a1), (header, b2)]);
    b.phi_to(b2, vec![(entry, b1), (header, a2)]);
    let i = b.phi(vec![(entry, p), (header, i_next)]);
    let one = b.iconst(1);
    b.func_mut()
        .append_inst(header, InstData::Binary { op: BinaryOp::Sub, dst: i_next, args: [i, one] });
    let zero = b.iconst(0);
    let c = b.cmp(CmpOp::Gt, i_next, zero);
    b.branch(c, header, exit);
    b.switch_to_block(exit);
    let ten = b.iconst(10);
    let scaled = b.binary(BinaryOp::Mul, a2, ten);
    let s = b.binary(BinaryOp::Add, scaled, b2);
    b.ret(Some(s));
    b.finish()
}

/// Figure 1: a φ argument whose predecessor ends with a branch using another
/// value — the copy must be inserted before the branch use.
fn branch_use() -> Function {
    let mut b = FunctionBuilder::new("fig1_branch_use", 2);
    let entry = b.create_block();
    let left = b.create_block();
    let right = b.create_block();
    let join = b.create_block();
    let other = b.create_block();
    b.set_entry(entry);
    b.switch_to_block(entry);
    let u = b.param(0);
    let v = b.param(1);
    b.branch(u, left, right);
    b.switch_to_block(left);
    b.jump(join);
    b.switch_to_block(right);
    // The branch of `right` uses u; the copy for the φ argument v must be
    // inserted before that use.
    b.branch(u, join, other);
    b.switch_to_block(join);
    let w = b.phi(vec![(left, u), (right, v)]);
    b.ret(Some(w));
    b.switch_to_block(other);
    let sum = b.binary(BinaryOp::Add, u, v);
    b.ret(Some(sum));
    b.finish()
}

fn br_dec() -> Function {
    let mut b = FunctionBuilder::new("fig2_br_dec", 1);
    let entry = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    b.set_entry(entry);
    b.switch_to_block(entry);
    let n = b.param(0);
    let zero = b.iconst(0);
    b.jump(body);
    b.switch_to_block(body);
    let u_dec = b.declare_value();
    let t2 = b.declare_value();
    let u = b.phi(vec![(entry, n), (body, u_dec)]);
    let t1 = b.phi(vec![(entry, zero), (body, t2)]);
    b.func_mut().append_inst(body, InstData::Binary { op: BinaryOp::Add, dst: t2, args: [t1, u] });
    b.func_mut().append_inst(
        body,
        InstData::BrDec { counter: u, dec: u_dec, loop_dest: body, exit_dest: exit },
    );
    b.switch_to_block(exit);
    let r = b.binary(BinaryOp::Add, t2, u_dec);
    b.ret(Some(r));
    b.finish()
}

fn main() {
    let cases: Vec<(&str, Function, Vec<i64>)> = vec![
        ("lost copy (Fig. 4)", lost_copy(), vec![1, 2, 5]),
        ("swap (Fig. 3)", swap(), vec![1, 2, 5]),
        ("branch use (Fig. 1)", branch_use(), vec![0, 1]),
        ("branch with decrement (Fig. 2)", br_dec(), vec![2, 3, 7]),
    ];

    println!(
        "{:<32}{:<16}{:>10}{:>12}{:>14}",
        "case", "variant", "copies", "edges split", "correct"
    );
    // All four corner cases run through the batch engine, one batch per
    // variant, and are then checked against the interpreter oracle.
    for (variant, options) in quality_variants() {
        let mut translated: Vec<Function> = cases.iter().map(|(_, f, _)| f.clone()).collect();
        let corpus_stats = translate_corpus(&mut translated, &options);
        for (((case, func, inputs), work), stats) in
            cases.iter().zip(&translated).zip(&corpus_stats.per_function)
        {
            let mut correct = true;
            for &input in inputs {
                let args = [input, 1];
                let a = Interpreter::new().run(func, &args[..func.num_params as usize]).unwrap();
                let b = Interpreter::new().run(work, &args[..func.num_params as usize]).unwrap();
                correct &= same_behaviour(&a, &b);
            }
            println!(
                "{:<32}{:<16}{:>10}{:>12}{:>14}",
                case, variant, stats.remaining_copies, stats.edges_split, correct
            );
            assert!(correct, "{case} / {variant} produced wrong code");
        }
    }
    println!("\nall corner cases translate correctly under every variant");
}
