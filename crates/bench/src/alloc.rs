//! A counting global allocator for the perf trajectory.
//!
//! Wraps the system allocator and counts, per thread, how many heap
//! allocations were requested. The report binaries register it with
//! `#[global_allocator]` and sample [`allocation_count`] around a measured
//! region; the delta is the region's allocation count. Counting is
//! thread-local so that a parallel run does not need atomic traffic on the
//! allocation path, and a thread only observes its own allocations.
//!
//! The counter uses `LocalKey::try_with` so allocations that happen while
//! the thread-local slot itself is being initialized or torn down are simply
//! not counted instead of recursing or aborting.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of heap allocations performed by the current thread since it
/// started (wrapping; meant to be sampled twice and subtracted).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

fn bump() {
    // Ignore allocations during TLS construction/destruction.
    let _ = ALLOCATIONS.try_with(|count| count.set(count.get().wrapping_add(1)));
}

/// System allocator wrapper counting allocation requests per thread.
///
/// `alloc`, `alloc_zeroed` and `realloc` each count as one allocation;
/// `dealloc` is free. Register with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: ossa_bench::alloc::CountingAllocator = ossa_bench::alloc::CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the only addition is a thread-local
// counter bump, which performs no allocation itself.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}
