//! # ossa-bench — the evaluation harness
//!
//! Reproduces the paper's evaluation on the simulated SPEC CINT2000 corpus:
//!
//! * **Figure 5** ([`quality_report`]) — remaining copies per coalescing
//!   variant, normalized to the `Intersect` baseline;
//! * **Figure 6** ([`speed_report`]) — out-of-SSA translation time per
//!   engine configuration, normalized to `Sreedhar III`;
//! * **Figure 7** ([`memory_report`]) — measured and evaluated memory
//!   footprints of the interference/liveness structures.
//!
//! The binaries `fig5_quality`, `fig6_speed`, `fig7_memory` and
//! `table_corner_cases` print the rows; the Criterion benches wrap the same
//! code for statistically meaningful timings.

#![warn(missing_docs)]
// `deny` instead of `forbid`: the counting allocator is the one audited
// exception (a `GlobalAlloc` impl is an unsafe trait by definition).
#![deny(unsafe_code)]

use std::time::Instant;

#[allow(unsafe_code)]
pub mod alloc;
pub mod service_load;

use ossa_cfggen::{
    generate_ssa_function_into_cached, pin_call_conventions, spec_config, spec_like_corpus,
    spec_num_functions, GenScratch, Workload, SPEC_BENCHMARKS,
};
use ossa_destruct::{
    translate_corpus_serial, translate_corpus_with, translate_out_of_ssa,
    translate_stream_pooled_serial, translate_stream_with, ClassCheck, EngineWorker,
    InterferenceMode, OutOfSsaOptions, OutOfSsaStats, PooledSource,
};
use ossa_ir::{Function, FunctionPool, PoolStats};
use ossa_liveness::FunctionAnalyses;

/// The Figure 5 coalescing variants, in the paper's order.
///
/// Delegates to [`OutOfSsaOptions::figure5_variants`], the single source of
/// truth also consumed by the oracle test suites — a variant added there is
/// automatically benchmarked *and* covered.
pub fn quality_variants() -> Vec<(&'static str, OutOfSsaOptions)> {
    OutOfSsaOptions::figure5_variants().into_iter().collect()
}

/// The Figure 6 / Figure 7 engine configurations, in the paper's order.
pub fn engine_variants() -> Vec<(&'static str, OutOfSsaOptions)> {
    vec![
        ("Sreedhar III", OutOfSsaOptions::sreedhar_iii()),
        ("Us III", OutOfSsaOptions::us_iii()),
        (
            "Us III + InterCheck",
            OutOfSsaOptions::us_iii().with_interference(InterferenceMode::InterCheck),
        ),
        (
            "Us III + InterCheck + LiveCheck",
            OutOfSsaOptions::us_iii().with_interference(InterferenceMode::InterCheckLiveCheck),
        ),
        (
            "Us III + Linear + InterCheck + LiveCheck",
            OutOfSsaOptions::us_iii()
                .with_interference(InterferenceMode::InterCheckLiveCheck)
                .with_class_check(ClassCheck::Linear),
        ),
        ("Us I", OutOfSsaOptions::us_i()),
        (
            "Us I + Linear + InterCheck + LiveCheck",
            OutOfSsaOptions::us_i()
                .with_interference(InterferenceMode::InterCheckLiveCheck)
                .with_class_check(ClassCheck::Linear),
        ),
    ]
}

/// Default corpus scale used by the report binaries.
pub const DEFAULT_SCALE: f64 = 0.35;

/// Builds the simulated corpus at `scale`.
pub fn corpus(scale: f64) -> Vec<Workload> {
    spec_like_corpus(scale, true)
}

/// A pool-aware streaming source regenerating the simulated SPEC corpus
/// function by function.
///
/// Enumerates exactly the functions of [`corpus`] / `spec_like_corpus` in
/// the same order with the same seeds and configs (shared through
/// [`spec_config`] / [`spec_num_functions`]), but builds each one *into* a
/// slot checked out of the engine's [`FunctionPool`] instead of fresh heap
/// storage — and converts it to optimized SSA through its own recycled
/// analyses and generator scratch. Once the source and the engine worker are
/// warm, producing and translating one more function allocates (almost)
/// nothing: this is the input half of the engine's O(1) steady-state heap
/// traffic story, and the measurement vehicle of the streaming allocation
/// gate.
#[derive(Debug)]
pub struct CorpusSource {
    scale: f64,
    pin_calls: bool,
    bench: usize,
    index: usize,
    analyses: FunctionAnalyses,
    scratch: GenScratch,
    name: String,
}

impl CorpusSource {
    /// Creates a source streaming the corpus at `scale` from its beginning.
    pub fn new(scale: f64, pin_calls: bool) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        Self {
            scale,
            pin_calls,
            bench: 0,
            index: 0,
            analyses: FunctionAnalyses::new(),
            scratch: GenScratch::new(),
            name: String::new(),
        }
    }

    /// Rewinds the stream to the first function of the first benchmark,
    /// keeping all recycled generator state warm — streaming the corpus
    /// `k` times through a rewound source is the "k× corpus" of the
    /// steady-state flatness gate.
    pub fn rewind(&mut self) {
        self.bench = 0;
        self.index = 0;
    }

    /// Total number of functions one full pass over the stream yields.
    pub fn functions_per_pass(&self) -> usize {
        SPEC_BENCHMARKS.iter().map(|spec| spec_num_functions(spec, self.scale)).sum()
    }
}

impl PooledSource for CorpusSource {
    fn next_into(&mut self, pool: &mut FunctionPool) -> Option<Function> {
        use std::fmt::Write as _;
        loop {
            let spec = SPEC_BENCHMARKS.get(self.bench)?;
            let num_functions = spec_num_functions(spec, self.scale);
            if self.index >= num_functions {
                self.bench += 1;
                self.index = 0;
                continue;
            }
            let config = spec_config(spec, self.scale);
            let i = self.index;
            self.index += 1;
            self.name.clear();
            let _ = write!(self.name, "{}::fn{}", spec.name, i);
            let slot = pool.checkout();
            let (mut func, _) = generate_ssa_function_into_cached(
                slot,
                &self.name,
                &config,
                spec.seed + i as u64,
                &mut self.analyses,
                &mut self.scratch,
            );
            if self.pin_calls {
                pin_call_conventions(&mut func);
            }
            return Some(func);
        }
    }
}

/// Result of [`streaming_allocation_passes`]: the allocation trajectory of
/// the pooled streaming engine across repeated passes over the corpus.
#[derive(Clone, Debug)]
pub struct StreamingProfile {
    /// Functions translated per pass (one full corpus).
    pub functions_per_pass: usize,
    /// Thread-local allocation count of each pass, in order. Pass 0 is the
    /// warm-up (cold pools and caches); later passes are steady state.
    pub pass_allocations: Vec<u64>,
    /// Pool traffic accumulated over all passes.
    pub pool: PoolStats,
}

impl StreamingProfile {
    /// Steady-state allocations per translated function over the first
    /// `passes` post-warm-up passes (the "k× corpus" metric: the corpus is
    /// streamed `k` times through the warm worker and the per-function cost
    /// must not grow with `k`).
    pub fn steady_state_per_function(&self, passes: usize) -> f64 {
        let passes = passes.min(self.pass_allocations.len().saturating_sub(1));
        if passes == 0 || self.functions_per_pass == 0 {
            return 0.0;
        }
        let total: u64 = self.pass_allocations[1..1 + passes].iter().sum();
        total as f64 / (passes * self.functions_per_pass) as f64
    }
}

/// Streams the corpus at `scale` through the pooled serial engine `passes`
/// times over one persistent [`EngineWorker`] and one persistent
/// [`CorpusSource`], sampling the thread-local allocation counter around
/// each pass.
///
/// Pass 0 is the warm-up: pools, caches and scratch grow to their high-water
/// marks. Every later pass reuses that storage, so its allocation count is
/// the steady-state heap traffic of streaming one more corpus through a
/// long-running translator. The counts are only meaningful in a binary that
/// registers [`alloc::CountingAllocator`] as the global allocator (they are
/// zero otherwise), and the run is strictly single-threaded because the
/// counter is thread-local.
pub fn streaming_allocation_passes(
    scale: f64,
    options: &OutOfSsaOptions,
    passes: usize,
) -> StreamingProfile {
    let mut source = CorpusSource::new(scale, true);
    let mut worker = EngineWorker::new();
    let functions_per_pass = source.functions_per_pass();
    let mut pass_allocations = Vec::with_capacity(passes);
    for _ in 0..passes.max(1) {
        source.rewind();
        let before = alloc::allocation_count();
        let stats = translate_stream_pooled_serial(&mut source, &mut worker, options, |_, _, _| {});
        pass_allocations.push(alloc::allocation_count() - before);
        debug_assert_eq!(stats.per_function.len(), functions_per_pass);
    }
    StreamingProfile { functions_per_pass, pass_allocations, pool: worker.pool.stats() }
}

/// Runs one translation variant over one workload through the serial batch
/// engine; the clone of the workload's functions is *not* timed (the seed
/// harness included it, which diluted the engine comparison).
pub fn run_variant(workload: &Workload, options: &OutOfSsaOptions) -> (OutOfSsaStats, f64) {
    let mut funcs = workload.functions.clone();
    let start = Instant::now();
    let stats = translate_corpus_serial(&mut funcs, options);
    (stats.total(), start.elapsed().as_secs_f64())
}

/// Runs one translation variant over one workload through the parallel batch
/// engine (`threads == 0` selects one worker per core).
pub fn run_variant_parallel(
    workload: &Workload,
    options: &OutOfSsaOptions,
    threads: usize,
) -> (OutOfSsaStats, f64) {
    let mut funcs = workload.functions.clone();
    let start = Instant::now();
    let stats = translate_corpus_with(&mut funcs, options, threads);
    (stats.total(), start.elapsed().as_secs_f64())
}

/// Runs one translation variant over one workload through the serial
/// *streaming* engine (`translate_stream_with`, one worker). The input
/// functions are cloned into a queue before the timer starts, so the timed
/// region is exactly the engine draining an iterator — comparable with
/// [`run_variant`]'s batch-serial timing.
pub fn run_variant_streaming(
    workload: &Workload,
    options: &OutOfSsaOptions,
) -> (OutOfSsaStats, f64) {
    let queue = workload.functions.clone();
    let start = Instant::now();
    let (_funcs, stats) = translate_stream_with(queue, options, 1);
    (stats.total(), start.elapsed().as_secs_f64())
}

/// The seed harness's serial loop, kept as the baseline the batch engine is
/// measured against: one [`translate_out_of_ssa`] call per function, fresh
/// analyses inside every call. The clone is excluded from the timed region
/// (unlike the seed's `run_variant`) so that the batch-vs-seed-style speedup
/// measures the engine, not a timing-harness difference.
pub fn run_variant_seed_style(
    workload: &Workload,
    options: &OutOfSsaOptions,
) -> (OutOfSsaStats, f64) {
    let mut funcs = workload.functions.clone();
    let mut total = OutOfSsaStats::default();
    let start = Instant::now();
    for func in &mut funcs {
        let stats = translate_out_of_ssa(func, options);
        total.absorb(&stats);
    }
    (total, start.elapsed().as_secs_f64())
}

/// Minimal timing harness used by the `harness = false` benches (no
/// Criterion in the offline build environment): runs `f` once for warm-up,
/// then `samples` times, and returns the minimum wall-clock seconds together
/// with the last result.
pub fn time_min<R>(samples: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut result = f();
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

/// One row of the Figure 5 report: remaining copies per benchmark and the
/// ratio against the `Intersect` baseline.
#[derive(Clone, Debug)]
pub struct QualityRow {
    /// Variant label.
    pub variant: &'static str,
    /// Remaining static copies per benchmark, in corpus order.
    pub copies: Vec<usize>,
    /// Remaining weighted copies per benchmark.
    pub weighted: Vec<f64>,
}

/// Computes the Figure 5 data over `corpus`.
pub fn quality_report(corpus: &[Workload]) -> Vec<QualityRow> {
    quality_variants()
        .into_iter()
        .map(|(variant, options)| {
            let mut copies = Vec::new();
            let mut weighted = Vec::new();
            for workload in corpus {
                let (stats, _) = run_variant(workload, &options);
                copies.push(stats.remaining_copies);
                weighted.push(stats.remaining_weighted);
            }
            QualityRow { variant, copies, weighted }
        })
        .collect()
}

/// One row of the Figure 6 report: time per benchmark.
#[derive(Clone, Debug)]
pub struct SpeedRow {
    /// Engine label.
    pub engine: &'static str,
    /// Seconds spent translating each benchmark.
    pub seconds: Vec<f64>,
}

/// Computes the Figure 6 data over `corpus`.
pub fn speed_report(corpus: &[Workload]) -> Vec<SpeedRow> {
    engine_variants()
        .into_iter()
        .map(|(engine, options)| {
            let seconds = corpus.iter().map(|w| run_variant(w, &options).1).collect();
            SpeedRow { engine, seconds }
        })
        .collect()
}

/// One row of the Figure 7 report: memory footprint per engine, summed over
/// the corpus.
#[derive(Clone, Debug)]
pub struct MemoryRow {
    /// Engine label.
    pub engine: &'static str,
    /// Measured footprint in bytes (graph + liveness/livecheck structures).
    pub measured_bytes: usize,
    /// Evaluated footprint using ordered-set liveness formulas.
    pub evaluated_ordered_bytes: usize,
    /// Evaluated footprint using bit-set liveness formulas.
    pub evaluated_bitset_bytes: usize,
}

/// Computes the Figure 7 data over `corpus`.
pub fn memory_report(corpus: &[Workload]) -> Vec<MemoryRow> {
    engine_variants()
        .into_iter()
        .map(|(engine, options)| {
            let mut measured = 0usize;
            let mut ordered = 0usize;
            let mut bitset = 0usize;
            for workload in corpus {
                let (stats, _) = run_variant(workload, &options);
                measured += stats.memory.total_bytes();
                ordered += stats.memory.interference_graph_evaluated
                    + stats.memory.liveness_ordered_bytes
                    + stats.memory.livecheck_evaluated;
                bitset += stats.memory.interference_graph_evaluated
                    + stats.memory.liveness_bitset_bytes
                    + stats.memory.livecheck_evaluated;
            }
            MemoryRow {
                engine,
                measured_bytes: measured,
                evaluated_ordered_bytes: ordered,
                evaluated_bitset_bytes: bitset,
            }
        })
        .collect()
}

/// Formats a ratio table normalized to the first row, one column per
/// benchmark plus a final `sum` column.
pub fn format_normalized(names: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{:<44}", "variant");
    for name in names {
        let _ = write!(out, "{:>12}", name.split('.').next_back().unwrap_or(name));
    }
    let _ = writeln!(out, "{:>12}", "sum");
    let baseline: Vec<f64> = rows[0].1.clone();
    let baseline_sum: f64 = baseline.iter().sum();
    for (label, values) in rows {
        let _ = write!(out, "{label:<44}");
        for (value, base) in values.iter().zip(&baseline) {
            let ratio = if *base > 0.0 { value / base } else { 1.0 };
            let _ = write!(out, "{ratio:>12.3}");
        }
        let sum: f64 = values.iter().sum();
        let ratio = if baseline_sum > 0.0 { sum / baseline_sum } else { 1.0 };
        let _ = writeln!(out, "{ratio:>12.3}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_report_has_expected_shape() {
        let corpus = corpus(0.05);
        let report = quality_report(&corpus);
        assert_eq!(report.len(), 7);
        assert!(report.iter().all(|row| row.copies.len() == corpus.len()));
        // The Intersect baseline never removes more copies than Sharing.
        let intersect: usize = report[0].copies.iter().sum();
        let sharing: usize = report[6].copies.iter().sum();
        assert!(sharing <= intersect);
    }

    #[test]
    fn corpus_source_matches_spec_like_corpus() {
        let expected: Vec<Function> = corpus(0.1).into_iter().flat_map(|w| w.functions).collect();

        // First pass: cold pool, every checkout allocates.
        let mut source = CorpusSource::new(0.1, true);
        let mut pool = FunctionPool::new();
        let mut got = Vec::new();
        while let Some(func) = source.next_into(&mut pool) {
            got.push(func);
        }
        assert_eq!(got, expected);

        // Second pass after a rewind, retiring each slot as it is checked:
        // the whole stream is rebuilt through recycled storage and must stay
        // bit-identical.
        source.rewind();
        for expected_func in &expected {
            let func = source.next_into(&mut pool).expect("rewound stream is full length");
            assert_eq!(&func, expected_func);
            pool.retire(func);
        }
        assert!(source.next_into(&mut pool).is_none());
        assert!(pool.stats().recycled >= expected.len() as u64 - 1);
    }

    #[test]
    fn streaming_profile_math() {
        let profile = StreamingProfile {
            functions_per_pass: 10,
            pass_allocations: vec![1000, 20, 30],
            pool: PoolStats::default(),
        };
        assert!((profile.steady_state_per_function(1) - 2.0).abs() < 1e-9);
        assert!((profile.steady_state_per_function(2) - 2.5).abs() < 1e-9);
        // Requesting more passes than measured clamps to what exists.
        assert!((profile.steady_state_per_function(5) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn engine_variants_cover_the_paper_configurations() {
        assert_eq!(engine_variants().len(), 7);
        assert_eq!(quality_variants().len(), 7);
    }

    #[test]
    fn normalized_table_starts_at_one() {
        let rows = vec![("base".to_string(), vec![2.0, 4.0]), ("half".to_string(), vec![1.0, 2.0])];
        let table = format_normalized(&["a", "b"], &rows);
        assert!(table.contains("1.000"));
        assert!(table.contains("0.500"));
    }
}
