//! Criterion wrapper for the Figure 5 quality sweep: time to run each
//! coalescing variant over a small corpus (the copy counts themselves are
//! printed by the `fig5_quality` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ossa_bench::{corpus, quality_variants, run_variant};

fn bench_quality_variants(c: &mut Criterion) {
    let corpus = corpus(0.08);
    let mut group = c.benchmark_group("fig5_quality");
    for (name, options) in quality_variants() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &options, |b, options| {
            b.iter(|| {
                let mut copies = 0usize;
                for workload in &corpus {
                    copies += run_variant(workload, options).0.remaining_copies;
                }
                copies
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_quality_variants
}
criterion_main!(benches);
