//! Timing wrapper for the Figure 5 quality sweep: time to run each coalescing
//! variant over a small corpus (the copy counts themselves are printed by the
//! `fig5_quality` binary).

use ossa_bench::{corpus, quality_variants, run_variant, time_min};

fn main() {
    let corpus = corpus(0.08);
    println!("fig5_quality — min of 10 samples per variant");
    for (name, options) in quality_variants() {
        let (seconds, copies) = time_min(10, || {
            let mut copies = 0usize;
            for workload in &corpus {
                copies += run_variant(workload, &options).0.remaining_copies;
            }
            copies
        });
        println!("  {name:<14} {seconds:>10.4}s   ({copies} copies)");
    }
}
