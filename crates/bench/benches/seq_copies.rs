//! Benchmark of the parallel-copy sequentialization (Algorithm 1) on
//! synthetic permutations of various sizes.

use ossa_bench::time_min;
use ossa_destruct::sequentialize;
use ossa_ir::entity::EntityRef;
use ossa_ir::{CopyPair, Value};

/// Builds a parallel copy made of `cycles` disjoint cycles of length `len`
/// plus one tree copy per cycle.
fn build_moves(cycles: usize, len: usize) -> Vec<CopyPair> {
    let mut moves = Vec::new();
    let mut next = 0usize;
    for _ in 0..cycles {
        let base = next;
        for i in 0..len {
            let dst = base + i;
            let src = base + (i + 1) % len;
            moves.push(CopyPair { dst: Value::new(dst), src: Value::new(src) });
        }
        next += len;
        // One tree edge duplicating the first element of the cycle.
        moves.push(CopyPair { dst: Value::new(next), src: Value::new(base) });
        next += 1;
    }
    moves
}

fn main() {
    // Each sample batches many calls: a single small sequentialization costs
    // tens of nanoseconds, below the resolution of one Instant pair.
    const BATCH: usize = 1000;
    println!("seq_copies — min of 200 samples per shape, {BATCH} calls per sample");
    for &(cycles, len) in &[(1usize, 4usize), (4, 4), (16, 8), (64, 8)] {
        let moves = build_moves(cycles, len);
        let temp = Value::new(100_000);
        let (seconds, copies) = time_min(200, || {
            let mut copies = 0;
            for _ in 0..BATCH {
                copies = sequentialize(&moves, temp).copies.len();
            }
            copies
        });
        println!(
            "  {cycles:>3}x{len:<3} {:>12.1}ns/call   ({copies} copies)",
            seconds * 1e9 / BATCH as f64
        );
    }
}
