//! Benchmark of the parallel-copy sequentialization (Algorithm 1) on
//! synthetic permutations of various sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ossa_destruct::sequentialize;
use ossa_ir::entity::EntityRef;
use ossa_ir::{CopyPair, Value};

/// Builds a parallel copy made of `cycles` disjoint cycles of length `len`
/// plus one tree copy per cycle.
fn build_moves(cycles: usize, len: usize) -> Vec<CopyPair> {
    let mut moves = Vec::new();
    let mut next = 0usize;
    for _ in 0..cycles {
        let base = next;
        for i in 0..len {
            let dst = base + i;
            let src = base + (i + 1) % len;
            moves.push(CopyPair { dst: Value::new(dst), src: Value::new(src) });
        }
        next += len;
        // One tree edge duplicating the first element of the cycle.
        moves.push(CopyPair { dst: Value::new(next), src: Value::new(base) });
        next += 1;
    }
    moves
}

fn bench_sequentialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_copies");
    for &(cycles, len) in &[(1usize, 4usize), (4, 4), (16, 8), (64, 8)] {
        let moves = build_moves(cycles, len);
        let temp = Value::new(100_000);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{cycles}x{len}")),
            &moves,
            |b, moves| b.iter(|| sequentialize(moves, temp).copies.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sequentialize);
criterion_main!(benches);
