//! Criterion wrapper for the Figure 7 memory accounting: cost of computing
//! the per-engine memory report (the byte numbers themselves are printed by
//! the `fig7_memory` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use ossa_bench::{corpus, memory_report};

fn bench_memory_report(c: &mut Criterion) {
    let corpus = corpus(0.06);
    c.bench_function("fig7_memory_report", |b| {
        b.iter(|| {
            let report = memory_report(&corpus);
            report.iter().map(|row| row.measured_bytes).sum::<usize>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_memory_report
}
criterion_main!(benches);
