//! Timing wrapper for the Figure 7 memory accounting: cost of computing the
//! per-engine memory report (the byte numbers themselves are printed by the
//! `fig7_memory` binary).

use ossa_bench::{corpus, memory_report, time_min};

fn main() {
    let corpus = corpus(0.06);
    let (seconds, bytes) = time_min(10, || {
        let report = memory_report(&corpus);
        report.iter().map(|row| row.measured_bytes).sum::<usize>()
    });
    println!("fig7_memory_report: {seconds:.4}s (min of 10), {bytes} measured bytes");
}
