//! Criterion reproduction of Figure 6: time to go out of SSA for each engine
//! configuration over the simulated corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ossa_bench::{corpus, engine_variants, run_variant};

fn bench_engines(c: &mut Criterion) {
    let corpus = corpus(0.08);
    let mut group = c.benchmark_group("fig6_speed");
    for (name, options) in engine_variants() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &options, |b, options| {
            b.iter(|| {
                let mut copies = 0usize;
                for workload in &corpus {
                    copies += run_variant(workload, options).0.remaining_copies;
                }
                copies
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines
}
criterion_main!(benches);
