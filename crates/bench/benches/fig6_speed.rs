//! Timing wrapper for the Figure 6 reproduction: time to go out of SSA for
//! each engine configuration over the simulated corpus, plus the batch
//! (parallel) corpus engine against the serial baseline.

use ossa_bench::{corpus, engine_variants, run_variant, time_min};

fn main() {
    let corpus = corpus(0.08);
    println!("fig6_speed — min of 10 samples per engine");
    for (name, options) in engine_variants() {
        let (seconds, copies) = time_min(10, || {
            let mut copies = 0usize;
            for workload in &corpus {
                copies += run_variant(workload, &options).0.remaining_copies;
            }
            copies
        });
        println!("  {name:<44} {seconds:>10.4}s   ({copies} copies)");
    }

    // Batch engine: serial vs parallel, one translate_corpus call over the
    // flattened corpus so the worker pool is spawned once and sized by the
    // whole corpus.
    let options = ossa_destruct::OutOfSsaOptions::default();
    let flat: Vec<_> = corpus.iter().flat_map(|w| w.functions.iter().cloned()).collect();
    let (serial, _) = time_min(10, || {
        let mut work = flat.clone();
        ossa_destruct::translate_corpus_with(&mut work, &options, 1).total().remaining_copies
    });
    let (parallel, _) = time_min(10, || {
        let mut work = flat.clone();
        ossa_destruct::translate_corpus_with(&mut work, &options, 0).total().remaining_copies
    });
    println!("  {:<44} {serial:>10.4}s", "batch engine (serial)");
    println!(
        "  {:<44} {parallel:>10.4}s   ({:.2}x)",
        "batch engine (parallel)",
        serial / parallel.max(1e-12)
    );
}
