//! # ossa-regalloc — a linear-scan register allocator for post-SSA code
//!
//! The paper positions its out-of-SSA translation as the phase that runs
//! right before register allocation in a JIT ("register allocation often
//! relies on linear scan techniques"). This crate provides that downstream
//! consumer: a simple linear-scan allocator over the code produced by
//! `ossa-destruct`, honouring the register pins that the translation
//! preserved (calling conventions, dedicated registers).
//!
//! The allocator assigns every live value either an architectural register
//! or a spill slot; it does not rewrite the code with loads and stores (the
//! `jit_pipeline` example only needs the assignment and the allocation
//! verifier).
//!
//! # Examples
//!
//! ```
//! use ossa_cfggen::{generate_ssa_function, GenConfig};
//! use ossa_destruct::{translate_out_of_ssa, OutOfSsaOptions};
//! use ossa_regalloc::{allocate, check_allocation};
//!
//! let (mut func, _) = generate_ssa_function("demo", &GenConfig::small(), 3);
//! translate_out_of_ssa(&mut func, &OutOfSsaOptions::default());
//! let allocation = allocate(&func, 8);
//! check_allocation(&func, &allocation, 8).expect("allocation is consistent");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;

use ossa_ir::entity::{Block, SecondaryMap, Value};
use ossa_ir::Function;
use ossa_liveness::{BlockLiveness, FunctionAnalyses};

/// Where a value lives for its whole lifetime.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Location {
    /// An architectural register.
    Reg(u32),
    /// A spill slot in the stack frame.
    Spill(u32),
}

/// A live interval over the linearised instruction numbering.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// First program point where the value is live.
    pub start: u32,
    /// Last program point where the value is live (inclusive).
    pub end: u32,
}

impl Interval {
    /// Returns `true` if the two intervals overlap.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// Result of register allocation.
#[derive(Clone, Debug, Default)]
pub struct Allocation {
    /// Location assigned to each allocated value.
    pub locations: HashMap<Value, Location>,
    /// Live interval computed for each allocated value.
    pub intervals: HashMap<Value, Interval>,
    /// Number of values spilled.
    pub spills: usize,
}

impl Allocation {
    /// The location of `value`, if it was live at all.
    pub fn location(&self, value: Value) -> Option<Location> {
        self.locations.get(&value).copied()
    }

    /// Number of distinct registers used.
    pub fn registers_used(&self) -> usize {
        let mut regs: Vec<u32> = self
            .locations
            .values()
            .filter_map(|loc| match loc {
                Location::Reg(r) => Some(*r),
                Location::Spill(_) => None,
            })
            .collect();
        regs.sort();
        regs.dedup();
        regs.len()
    }
}

/// Computes conservative live intervals over a linearisation of the layout,
/// reading liveness from the shared analysis cache.
fn live_intervals(func: &Function, analyses: &FunctionAnalyses) -> HashMap<Value, Interval> {
    let liveness = analyses.liveness_sets(func);

    // Linear numbering of (block, inst) program points in layout order.
    let mut block_range: SecondaryMap<Block, (u32, u32)> = SecondaryMap::new();
    block_range.resize(func.num_blocks());
    let mut counter = 0u32;
    for block in func.blocks() {
        let start = counter;
        counter += func.block_len(block) as u32 + 1;
        block_range[block] = (start, counter - 1);
    }

    let mut intervals: HashMap<Value, Interval> = HashMap::new();
    let touch = |value: Value, point: u32, intervals: &mut HashMap<Value, Interval>| {
        let entry = intervals.entry(value).or_insert(Interval { start: point, end: point });
        entry.start = entry.start.min(point);
        entry.end = entry.end.max(point);
    };

    let mut scratch: Vec<Value> = Vec::new();
    for block in func.blocks() {
        let (block_start, block_end) = block_range[block];
        for (offset, &inst) in func.block_insts(block).iter().enumerate() {
            let point = block_start + offset as u32;
            scratch.clear();
            func.collect_inst_defs(inst, &mut scratch);
            func.collect_inst_uses(inst, &mut scratch);
            for &v in &scratch {
                touch(v, point, &mut intervals);
            }
        }
        // Extend to block boundaries for values live across the block.
        for value in func.values() {
            if liveness.is_live_in(block, value) {
                touch(value, block_start, &mut intervals);
            }
            if liveness.is_live_out(block, value) {
                touch(value, block_end, &mut intervals);
            }
        }
    }
    intervals
}

/// Allocates registers for `func` with `num_regs` architectural registers,
/// computing its analyses from scratch. Pinned values are given their
/// required register; other values get any free register or a spill slot
/// when none is available.
pub fn allocate(func: &Function, num_regs: u32) -> Allocation {
    allocate_cached(func, num_regs, &FunctionAnalyses::new())
}

/// Like [`allocate`], but reads CFG and liveness from a shared analysis
/// cache — e.g. the one the out-of-SSA translation just used, whose
/// CFG-level analyses are still valid for the translated function.
pub fn allocate_cached(func: &Function, num_regs: u32, analyses: &FunctionAnalyses) -> Allocation {
    let intervals = live_intervals(func, analyses);
    let mut by_start: Vec<(Value, Interval)> = intervals.iter().map(|(&v, &i)| (v, i)).collect();
    by_start.sort_by_key(|&(v, i)| (i.start, i.end, v.index()));

    let mut locations: HashMap<Value, Location> = HashMap::new();
    // active: (end, value, register)
    let mut active: Vec<(u32, Value, u32)> = Vec::new();
    let mut next_spill = 0u32;
    let mut spills = 0usize;

    for (value, interval) in by_start {
        active.retain(|&(end, _, _)| end >= interval.start);
        let used: Vec<u32> = active.iter().map(|&(_, _, r)| r).collect();

        let preferred = func.pinned_reg(value);
        let chosen = match preferred {
            Some(reg) => {
                // Evict any non-pinned value occupying the required register
                // by spilling it.
                if let Some(pos) =
                    active.iter().position(|&(_, v, r)| r == reg && func.pinned_reg(v).is_none())
                {
                    let (_, evicted, _) = active.remove(pos);
                    locations.insert(evicted, Location::Spill(next_spill));
                    next_spill += 1;
                    spills += 1;
                }
                Some(reg)
            }
            None => (0..num_regs).find(|r| !used.contains(r)),
        };

        match chosen {
            Some(reg) => {
                locations.insert(value, Location::Reg(reg));
                active.push((interval.end, value, reg));
            }
            None => {
                locations.insert(value, Location::Spill(next_spill));
                next_spill += 1;
                spills += 1;
            }
        }
    }

    Allocation { locations, intervals, spills }
}

/// Errors reported by [`check_allocation`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocationError {
    /// A value referenced in the function has no location.
    Unallocated(Value),
    /// Two values with overlapping intervals share a register.
    Conflict(Value, Value, u32),
    /// A pinned value was not assigned its required register.
    PinViolated(Value, u32),
    /// A register number is out of range.
    RegisterOutOfRange(Value, u32),
}

impl std::fmt::Display for AllocationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocationError::Unallocated(v) => write!(f, "value {v} has no location"),
            AllocationError::Conflict(a, b, r) => {
                write!(f, "values {a} and {b} overlap in register r{r}")
            }
            AllocationError::PinViolated(v, r) => {
                write!(f, "pinned value {v} is not in its required register r{r}")
            }
            AllocationError::RegisterOutOfRange(v, r) => {
                write!(f, "value {v} assigned out-of-range register r{r}")
            }
        }
    }
}

impl std::error::Error for AllocationError {}

/// Checks that an allocation is consistent: every referenced value has a
/// location, overlapping intervals never share a register, register pins are
/// honoured and register numbers are within range.
///
/// # Errors
/// Returns the first inconsistency found.
pub fn check_allocation(
    func: &Function,
    allocation: &Allocation,
    num_regs: u32,
) -> Result<(), AllocationError> {
    for value in func.referenced_values().iter() {
        if allocation.location(value).is_none() {
            return Err(AllocationError::Unallocated(value));
        }
    }
    for (&value, &loc) in &allocation.locations {
        if let Location::Reg(r) = loc {
            if let Some(pinned) = func.pinned_reg(value) {
                if pinned != r {
                    return Err(AllocationError::PinViolated(value, pinned));
                }
            }
            if r >= num_regs && func.pinned_reg(value).is_none() {
                return Err(AllocationError::RegisterOutOfRange(value, r));
            }
        } else if let Some(pinned) = func.pinned_reg(value) {
            return Err(AllocationError::PinViolated(value, pinned));
        }
    }
    let entries: Vec<(&Value, &Location)> = allocation.locations.iter().collect();
    for (i, &(&a, &loc_a)) in entries.iter().enumerate() {
        for &(&b, &loc_b) in &entries[i + 1..] {
            let (Location::Reg(ra), Location::Reg(rb)) = (loc_a, loc_b) else { continue };
            if ra != rb {
                continue;
            }
            let (Some(ia), Some(ib)) = (allocation.intervals.get(&a), allocation.intervals.get(&b))
            else {
                continue;
            };
            if ia.overlaps(ib) {
                return Err(AllocationError::Conflict(a, b, ra));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_cfggen::{generate_ssa_function, pin_call_conventions, GenConfig};
    use ossa_destruct::{translate_out_of_ssa, OutOfSsaOptions};
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::BinaryOp;

    #[test]
    fn straightline_function_allocates_without_spills() {
        let mut b = FunctionBuilder::new("line", 2);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let y = b.param(1);
        let s = b.binary(BinaryOp::Add, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let allocation = allocate(&f, 4);
        check_allocation(&f, &allocation, 4).unwrap();
        assert_eq!(allocation.spills, 0);
        assert!(allocation.registers_used() <= 3);
    }

    #[test]
    fn spills_appear_when_registers_are_scarce() {
        let mut b = FunctionBuilder::new("pressure", 0);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let values: Vec<_> = (0..6).map(|i| b.iconst(i)).collect();
        // Keep everything live until the end by summing in reverse order.
        let mut acc = values[5];
        for &v in values.iter().rev().skip(1) {
            acc = b.binary(BinaryOp::Add, acc, v);
        }
        b.ret(Some(acc));
        let f = b.finish();
        let allocation = allocate(&f, 2);
        check_allocation(&f, &allocation, 2).unwrap();
        assert!(allocation.spills > 0);
    }

    #[test]
    fn pinned_values_get_their_register() {
        let mut b = FunctionBuilder::new("pinned", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let y = b.binary(BinaryOp::Add, x, x);
        b.ret(Some(y));
        let mut f = b.finish();
        f.pin_value(y, 3);
        let allocation = allocate(&f, 8);
        check_allocation(&f, &allocation, 8).unwrap();
        assert_eq!(allocation.location(y), Some(Location::Reg(3)));
    }

    #[test]
    fn full_pipeline_allocation_is_consistent() {
        for seed in 0..5 {
            let (mut f, _) = generate_ssa_function("pipeline", &GenConfig::small(), seed);
            pin_call_conventions(&mut f);
            translate_out_of_ssa(&mut f, &OutOfSsaOptions::default());
            let allocation = allocate(&f, 8);
            check_allocation(&f, &allocation, 8)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", f.display()));
        }
    }

    #[test]
    fn cached_allocation_matches_fresh_allocation() {
        use ossa_destruct::translate_out_of_ssa_cached;
        for seed in 0..5 {
            let (mut f, _) = generate_ssa_function("cached", &GenConfig::small(), seed);
            let mut analyses = FunctionAnalyses::new();
            translate_out_of_ssa_cached(&mut f, &OutOfSsaOptions::default(), &mut analyses);
            // Allocation through the cache the translation just used...
            let cached = allocate_cached(&f, 8, &analyses);
            check_allocation(&f, &cached, 8).unwrap();
            // ...is identical to a from-scratch allocation.
            let fresh = allocate(&f, 8);
            assert_eq!(cached.locations, fresh.locations, "seed {seed}");
            assert_eq!(cached.spills, fresh.spills, "seed {seed}");
        }
    }

    #[test]
    fn interval_overlap_is_symmetric() {
        let a = Interval { start: 0, end: 5 };
        let b = Interval { start: 5, end: 9 };
        let c = Interval { start: 6, end: 9 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}
