//! Conventional-SSA (CSSA) property checker.
//!
//! SSA form is *conventional* when all variables transitively connected by
//! φ-functions (the φ congruence classes of Sreedhar et al.) can be replaced
//! by a single name without changing the program semantics — i.e. when no
//! two variables of the same class have intersecting live ranges. Code just
//! out of SSA construction is conventional; copy propagation and other SSA
//! optimizations may break the property, and the out-of-SSA translation's
//! first phase (copy insertion) restores it.

use std::collections::HashMap;

use ossa_ir::entity::Value;
use ossa_ir::{Function, InstData};
use ossa_liveness::{FunctionAnalyses, IntersectionTest};

/// A pair of values from the same φ congruence class whose live ranges
/// intersect — a witness that the function is not in CSSA form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CssaViolation {
    /// First value of the intersecting pair.
    pub a: Value,
    /// Second value of the intersecting pair.
    pub b: Value,
}

/// φ congruence classes: the partition of values induced by "appears in the
/// same φ-function", closed transitively.
#[derive(Clone, Debug, Default)]
pub struct PhiCongruence {
    parent: HashMap<Value, Value>,
}

impl PhiCongruence {
    /// Builds the φ congruence classes of `func`.
    pub fn compute(func: &Function) -> Self {
        let mut this = Self::default();
        for block in func.blocks() {
            for inst in func.phis(block) {
                let data = func.inst(inst);
                let InstData::Phi { dst, .. } = *data else { unreachable!("phi expected") };
                for arg in data.phi_args(func.pools()).expect("phi") {
                    this.union(dst, arg.value);
                }
            }
        }
        this
    }

    fn find(&mut self, v: Value) -> Value {
        let parent = *self.parent.entry(v).or_insert(v);
        if parent == v {
            v
        } else {
            let root = self.find(parent);
            self.parent.insert(v, root);
            root
        }
    }

    fn union(&mut self, a: Value, b: Value) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    /// Returns `true` if `a` and `b` are in the same φ congruence class.
    pub fn same_class(&mut self, a: Value, b: Value) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups all values seen in φ-functions by class representative.
    pub fn classes(&mut self) -> Vec<Vec<Value>> {
        let members: Vec<Value> = self.parent.keys().copied().collect();
        let mut grouped: HashMap<Value, Vec<Value>> = HashMap::new();
        for v in members {
            let root = self.find(v);
            grouped.entry(root).or_default().push(v);
        }
        let mut classes: Vec<Vec<Value>> = grouped.into_values().collect();
        for class in &mut classes {
            class.sort();
        }
        classes.sort();
        classes
    }
}

/// Checks whether `func` (in SSA form) is conventional, owning a fresh
/// analysis cache. Returns the list of intersecting same-class pairs; an
/// empty list means the function is CSSA.
pub fn cssa_violations(func: &Function) -> Vec<CssaViolation> {
    cssa_violations_cached(func, &FunctionAnalyses::new())
}

/// Like [`cssa_violations`], reading the dominator tree, liveness sets and
/// def/use index from a shared analysis cache instead of recomputing them.
/// The check is read-only: nothing is invalidated, and whatever it computes
/// stays cached for the next pass.
pub fn cssa_violations_cached(func: &Function, analyses: &FunctionAnalyses) -> Vec<CssaViolation> {
    let domtree = analyses.domtree(func);
    let liveness = analyses.liveness_sets(func);
    let info = analyses.live_range_info(func);
    let intersect = IntersectionTest::new(func, domtree, liveness, info);

    let mut congruence = PhiCongruence::compute(func);
    let mut violations = Vec::new();
    for class in congruence.classes() {
        for (i, &a) in class.iter().enumerate() {
            for &b in &class[i + 1..] {
                if intersect.intersect(a, b) {
                    violations.push(CssaViolation { a, b });
                }
            }
        }
    }
    violations
}

/// Returns `true` if `func` is in conventional SSA form.
pub fn is_conventional(func: &Function) -> bool {
    cssa_violations(func).is_empty()
}

/// Like [`is_conventional`], reading analyses from a shared cache.
pub fn is_conventional_cached(func: &Function, analyses: &FunctionAnalyses) -> bool {
    cssa_violations_cached(func, analyses).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copyprop::propagate_copies;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{BinaryOp, InstData};

    /// Lost-copy shape. In the conventional variant the φ result is copied
    /// into a separate value before escaping the loop and the φ argument is
    /// fed through a dedicated copy; copy propagation removes both copies and
    /// produces the classic non-conventional form.
    fn lost_copy(conventional: bool) -> Function {
        let mut b = FunctionBuilder::new("lost-copy", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let x1 = b.iconst(1);
        b.jump(header);
        b.switch_to_block(header);
        let x3 = b.declare_value();
        let x2 = b.phi(vec![(entry, x1), (header, x3)]);
        let escaped = b.copy(x2);
        let one = b.iconst(1);
        let sum = b.binary(BinaryOp::Add, x2, one);
        b.func_mut().append_inst(header, InstData::Copy { dst: x3, src: sum });
        b.branch(p, header, exit);
        b.switch_to_block(exit);
        b.ret(Some(escaped));
        let mut f = b.finish();
        if !conventional {
            propagate_copies(&mut f);
        }
        f
    }

    #[test]
    fn freshly_built_phi_web_is_conventional() {
        let f = lost_copy(true);
        assert!(is_conventional(&f));
        assert!(cssa_violations(&f).is_empty());
    }

    #[test]
    fn copy_propagation_breaks_conventionality() {
        let f = lost_copy(false);
        let violations = cssa_violations(&f);
        assert!(!violations.is_empty());
        assert!(!is_conventional(&f));
    }

    #[test]
    fn congruence_classes_are_transitive() {
        // Two φs chained: u = φ(a, b); w = φ(u, c) — all five in one class.
        let mut b = FunctionBuilder::new("chain", 1);
        let entry = b.create_block();
        let l1 = b.create_block();
        let j1 = b.create_block();
        let l2 = b.create_block();
        let j2 = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let a = b.iconst(1);
        b.branch(p, l1, j1);
        b.switch_to_block(l1);
        let c1 = b.iconst(2);
        b.jump(j1);
        b.switch_to_block(j1);
        let u = b.phi(vec![(entry, a), (l1, c1)]);
        b.branch(p, l2, j2);
        b.switch_to_block(l2);
        let c2 = b.iconst(3);
        b.jump(j2);
        b.switch_to_block(j2);
        let w = b.phi(vec![(j1, u), (l2, c2)]);
        b.ret(Some(w));
        let f = b.finish();
        let mut congruence = PhiCongruence::compute(&f);
        assert!(congruence.same_class(a, w));
        assert!(congruence.same_class(c1, c2));
        assert!(congruence.same_class(u, w));
        let classes = congruence.classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 5);
    }

    #[test]
    fn unrelated_phis_form_separate_classes() {
        let mut b = FunctionBuilder::new("two-phis", 1);
        let entry = b.create_block();
        let left = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let a1 = b.iconst(1);
        let b1 = b.iconst(10);
        b.branch(p, left, join);
        b.switch_to_block(left);
        let a2 = b.iconst(2);
        let b2 = b.iconst(20);
        b.jump(join);
        b.switch_to_block(join);
        let pa = b.phi(vec![(entry, a1), (left, a2)]);
        let pb = b.phi(vec![(entry, b1), (left, b2)]);
        let s = b.binary(BinaryOp::Add, pa, pb);
        b.ret(Some(s));
        let f = b.finish();
        let mut congruence = PhiCongruence::compute(&f);
        assert!(!congruence.same_class(pa, pb));
        assert_eq!(congruence.classes().len(), 2);
        // This one is conventional: the two webs do not internally intersect.
        assert!(is_conventional(&f));
    }

    #[test]
    fn swap_pattern_is_not_conventional() {
        // a2 = φ(a1, b2); b2 = φ(b1, a2) — the classic swap problem.
        let mut b = FunctionBuilder::new("swap", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let a1 = b.iconst(1);
        let b1 = b.iconst(2);
        b.jump(header);
        b.switch_to_block(header);
        let a2 = b.declare_value();
        let b2 = b.declare_value();
        b.phi_to(a2, vec![(entry, a1), (header, b2)]);
        b.phi_to(b2, vec![(entry, b1), (header, a2)]);
        b.branch(p, header, exit);
        b.switch_to_block(exit);
        let s = b.binary(BinaryOp::Add, a2, b2);
        b.ret(Some(s));
        let f = b.finish();
        ossa_ir::verify_ssa(&f).expect("valid SSA");
        assert!(!is_conventional(&f));
    }
}
