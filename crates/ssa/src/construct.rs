//! SSA construction (Cytron et al.): pruned φ placement on iterated
//! dominance frontiers followed by dominance-tree renaming.
//!
//! The input is a function in "virtual register" form: values may be defined
//! several times and no φ-functions are present. The output is the same
//! function rewritten in SSA form with the dominance property. A map from
//! each new SSA value back to the original variable is returned so that
//! tests and workload generators can relate the two forms.

use ossa_ir::entity::{Block, SecondaryMap, Value};
use ossa_ir::{ControlFlowGraph, DominatorTree, Function, InstData, PhiArg};
use ossa_liveness::FunctionAnalyses;

use crate::scratch::SsaScratch;

/// Result of SSA construction.
#[derive(Clone, Debug)]
pub struct SsaConstruction {
    /// For each value present after construction, the original variable it
    /// was renamed from (identity for values that predate construction and
    /// were not renamed).
    pub origin: SecondaryMap<Value, Option<Value>>,
    /// Number of φ-functions inserted.
    pub phis_inserted: usize,
    /// Number of fresh SSA values created by renaming.
    pub values_created: usize,
}

/// Converts `func` (virtual-register form) into pruned SSA form in place,
/// owning a fresh analysis cache.
///
/// φ-functions are placed on the iterated dominance frontier of each
/// variable's definition blocks, restricted to blocks where the variable is
/// live-in (pruned SSA). Variables that may be used before being defined are
/// given an implicit `const 0` definition at the top of the entry block so
/// that the result always satisfies the SSA dominance property.
pub fn construct_ssa(func: &mut Function) -> SsaConstruction {
    let mut analyses = FunctionAnalyses::new();
    construct_ssa_cached(func, &mut analyses)
}

/// Like [`construct_ssa`], sharing the analyses in `analyses`.
///
/// Construction only mutates the instruction stream (entry definitions,
/// φ-functions, renaming) — the block structure is untouched — so the
/// CFG-level analyses (CFG, dominator tree, dominance frontiers) are
/// computed at most once through the whole pass and *stay valid for the
/// caller*; only the instruction-dependent caches are invalidated. Liveness
/// is computed twice exactly when entry definitions had to be inserted (a
/// new instruction version).
pub fn construct_ssa_cached(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
) -> SsaConstruction {
    let mut scratch = SsaScratch::new();
    let (phis_inserted, values_created) = construct_ssa_scratch(func, analyses, &mut scratch);
    SsaConstruction { origin: scratch.take_origin(), phis_inserted, values_created }
}

/// Like [`construct_ssa_cached`], with every working buffer recycled from
/// `scratch` — the zero-steady-state-allocation form used by the pooled
/// streaming path. Returns `(phis_inserted, values_created)`; the origin map
/// is left in the scratch ([`SsaScratch::origin`]) instead of being moved
/// out.
///
/// The computation is identical to [`construct_ssa_cached`] — same φ order,
/// same value numbering, bit-identical output — only the working storage is
/// reused.
pub fn construct_ssa_scratch(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut SsaScratch,
) -> (usize, usize) {
    // Give an entry definition to every variable that is live-in at entry
    // (i.e. possibly used before defined on some path).
    let entry = func.entry();
    scratch.entry_live_in.clear();
    scratch.entry_live_in.extend(analyses.liveness_sets(func).live_in(entry).iter());
    let entry_defs_inserted = !scratch.entry_live_in.is_empty();
    for insert_at in 0..scratch.entry_live_in.len() {
        let variable = scratch.entry_live_in[insert_at];
        func.insert_inst(entry, insert_at, InstData::Const { dst: variable, imm: 0 });
    }
    if entry_defs_inserted {
        // Instruction-only mutation confined to the entry block: the cached
        // liveness sets (just read above) are repaired per-block — the
        // repair region is the entry block plus its predecessor closure,
        // usually just the entry — instead of being recomputed
        // whole-function before φ placement reads them again below.
        analyses.invalidate_instructions_in_blocks(func, &[entry]);
    }

    let num_values_before = func.num_values();
    let mut phis_inserted = 0usize;
    {
        let cfg = analyses.cfg(func);
        let domtree = analyses.domtree(func);
        let frontiers = analyses.frontiers(func);
        let liveness = analyses.liveness_sets(func);

        // Definition blocks per variable, stored densely so that φ placement
        // below iterates variables in index order — iterating a HashMap here
        // made φ order (and with it all downstream SSA value numbering) vary
        // from run to run. High-water reset: slots are cleared in place so
        // their buffers survive for the next function.
        for slot in scratch.def_blocks.values_mut() {
            slot.clear();
        }
        scratch.def_blocks.resize(num_values_before);
        for &block in cfg.reverse_post_order() {
            for ii in 0..func.block_len(block) {
                let inst = func.block_insts(block)[ii];
                scratch.def_tmp.clear();
                func.collect_inst_defs(inst, &mut scratch.def_tmp);
                for &v in &scratch.def_tmp {
                    let blocks = &mut scratch.def_blocks[v];
                    if !blocks.contains(&block) {
                        blocks.push(block);
                    }
                }
            }
        }

        // φ placement on iterated dominance frontiers (pruned with the
        // liveness computed above — φ insertion itself does not change what
        // the placement reads). Stale slots past this function's values are
        // empty (cleared above), so the index-order iteration sees exactly
        // the variables a fresh map would.
        scratch.has_phi.clear();
        scratch.has_phi.resize(func.num_blocks(), false);
        scratch.ever_on_worklist.clear();
        scratch.ever_on_worklist.resize(func.num_blocks(), false);
        for var_index in 0..scratch.def_blocks.len() {
            let variable = Value::from_index(var_index);
            if scratch.def_blocks[variable].is_empty() {
                continue;
            }
            scratch.worklist.clear();
            scratch.worklist.extend_from_slice(&scratch.def_blocks[variable]);
            scratch.has_phi.iter_mut().for_each(|b| *b = false);
            scratch.ever_on_worklist.iter_mut().for_each(|b| *b = false);
            for &b in &scratch.worklist {
                scratch.ever_on_worklist[b.index()] = true;
            }
            while let Some(block) = scratch.worklist.pop() {
                for fi in 0..frontiers.frontier(block).len() {
                    let frontier_block = frontiers.frontier(block)[fi];
                    if scratch.has_phi[frontier_block.index()] {
                        continue;
                    }
                    if !liveness.live_in(frontier_block).contains(variable) {
                        continue; // pruned SSA: dead φ would be useless
                    }
                    scratch.has_phi[frontier_block.index()] = true;
                    scratch.phi_args.clear();
                    scratch.phi_args.extend(
                        cfg.preds(frontier_block)
                            .iter()
                            .map(|&pred| PhiArg { block: pred, value: variable }),
                    );
                    let args = func.make_phi_list(&scratch.phi_args);
                    func.insert_inst(frontier_block, 0, InstData::Phi { dst: variable, args });
                    phis_inserted += 1;
                    if !scratch.ever_on_worklist[frontier_block.index()] {
                        scratch.ever_on_worklist[frontier_block.index()] = true;
                        scratch.worklist.push(frontier_block);
                    }
                }
            }
        }

        // Renaming along the dominator tree.
        scratch.origin.truncate(0);
        scratch.origin.resize(func.num_values());
        for v in 0..num_values_before {
            let v = Value::from_index(v);
            scratch.origin[v] = Some(v);
        }

        // High-water reset of the renaming stacks (every stack is empty
        // after a balanced walk, but a panic-free guarantee costs nothing).
        for slot in scratch.stacks.values_mut() {
            slot.clear();
        }
        scratch.stacks.resize(num_values_before);
        debug_assert!(scratch.pushed.is_empty());
        rename_block(func, cfg, domtree, func.entry(), scratch);
    }
    // φ insertion and renaming are instruction-only mutations: the caller's
    // CFG-level caches stay valid, the instruction-dependent ones do not.
    analyses.invalidate_instructions();

    let values_created = func.num_values() - num_values_before;
    (phis_inserted, values_created)
}

fn rename_block(
    func: &mut Function,
    cfg: &ControlFlowGraph,
    domtree: &DominatorTree,
    block: Block,
    scratch: &mut SsaScratch,
) {
    // Remember how many pushes we do so we can pop them on exit. The push
    // log is shared across the recursive walk; each frame pops back to its
    // entry length.
    let pushed_start = scratch.pushed.len();

    // Renaming rewrites operands in place but never adds or removes
    // instructions, so the block's instruction list can be walked by index.
    for ii in 0..func.block_len(block) {
        let inst = func.block_insts(block)[ii];
        let is_phi = func.inst(inst).is_phi();
        if !is_phi {
            // Rewrite uses with the current top-of-stack version.
            let mut missing: Vec<Value> = Vec::new();
            {
                let stacks_ref: &SecondaryMap<Value, Vec<Value>> = &scratch.stacks;
                func.map_inst_uses(inst, |v| match stacks_ref.get(v).last() {
                    Some(&top) => top,
                    None => {
                        missing.push(v);
                        v
                    }
                });
            }
            debug_assert!(
                missing.is_empty(),
                "SSA renaming found uses of {missing:?} with no reaching definition in {}",
                func.name
            );
        }
        // Rewrite definitions with fresh values.
        scratch.def_tmp.clear();
        func.collect_inst_defs(inst, &mut scratch.def_tmp);
        if !scratch.def_tmp.is_empty() {
            scratch.def_repl.clear();
            for di in 0..scratch.def_tmp.len() {
                let old = scratch.def_tmp[di];
                let fresh = func.new_value();
                scratch.origin[fresh] = Some(scratch.origin[old].unwrap_or(old));
                if let Some(reg) = func.pinned_reg(old) {
                    func.pin_value(fresh, reg);
                }
                scratch.stacks[old].push(fresh);
                scratch.pushed.push(old);
                scratch.def_repl.push((old, fresh));
            }
            let repl: &[(Value, Value)] = &scratch.def_repl;
            func.map_inst_defs(inst, |v| {
                repl.iter().find(|&&(old, _)| old == v).map_or(v, |&(_, fresh)| fresh)
            });
        }
    }

    // Fill in φ arguments of successors for the edges leaving this block.
    // φ-functions are a prefix of the block, so a by-index walk that stops
    // at the first non-φ visits exactly what `Function::phis` returns,
    // without materializing the list.
    for &succ in cfg.succs(block) {
        for pi in 0..func.block_len(succ) {
            let phi = func.block_insts(succ)[pi];
            if !func.inst(phi).is_phi() {
                break;
            }
            for arg in func.phi_args_mut(phi) {
                if arg.block == block {
                    // The argument still holds the original variable name
                    // (or was already rewritten if this edge was visited —
                    // each edge is visited exactly once).
                    if let Some(&top) = scratch.stacks.get(arg.value).last() {
                        arg.value = top;
                    }
                }
            }
        }
    }

    // Recurse over dominator-tree children.
    for ci in 0..domtree.children(block).len() {
        let child = domtree.children(block)[ci];
        rename_block(func, cfg, domtree, child, scratch);
    }

    // Pop the versions pushed by this block (in reverse push order).
    while scratch.pushed.len() > pushed_start {
        let old = scratch.pushed.pop().expect("push log underflow");
        scratch.stacks[old].pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{verify_ssa, BinaryOp, CmpOp};

    /// Pre-SSA: x initialized, conditionally reassigned, then used.
    fn diamond_pre_ssa() -> (Function, Value) {
        let mut b = FunctionBuilder::new("pre", 1);
        let entry = b.create_block();
        let then_bb = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let x = b.declare_value();
        b.iconst_to(x, 1);
        b.branch(p, then_bb, join);
        b.switch_to_block(then_bb);
        b.iconst_to(x, 2);
        b.jump(join);
        b.switch_to_block(join);
        let r = b.binary(BinaryOp::Add, x, x);
        b.ret(Some(r));
        (b.finish(), x)
    }

    #[test]
    fn diamond_gets_one_phi_and_verifies() {
        let (mut f, x) = diamond_pre_ssa();
        let result = construct_ssa(&mut f);
        assert_eq!(result.phis_inserted, 1);
        verify_ssa(&f).expect("SSA verification");
        // The φ merges two versions of x.
        let join = f.blocks().nth(2).unwrap();
        let phis = f.phis(join);
        assert_eq!(phis.len(), 1);
        let phi_dst = f.inst(phis[0]).defs(f.pools())[0];
        assert_eq!(result.origin[phi_dst], Some(x));
    }

    #[test]
    fn loop_variable_gets_phi_at_header() {
        // i = 0; while (i < n) { i = i + 1 } return i
        let mut b = FunctionBuilder::new("loop", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        let i = b.declare_value();
        b.iconst_to(i, 0);
        b.jump(header);
        b.switch_to_block(header);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to_block(body);
        let one = b.iconst(1);
        b.binary_to(BinaryOp::Add, i, i, one);
        b.jump(header);
        b.switch_to_block(exit);
        b.ret(Some(i));
        let mut f = b.finish();

        let result = construct_ssa(&mut f);
        verify_ssa(&f).expect("SSA verification");
        assert_eq!(result.phis_inserted, 1);
        assert_eq!(f.phis(header).len(), 1);
        // No φ at exit (only one predecessor) or body.
        assert!(f.phis(exit).is_empty());
        assert!(f.phis(body).is_empty());
    }

    #[test]
    fn variable_used_before_definition_is_zero_initialized() {
        // Only one path defines x before its use.
        let mut b = FunctionBuilder::new("maybe-undef", 1);
        let entry = b.create_block();
        let def_bb = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let x = b.declare_value();
        b.branch(p, def_bb, join);
        b.switch_to_block(def_bb);
        b.iconst_to(x, 7);
        b.jump(join);
        b.switch_to_block(join);
        b.ret(Some(x));
        let mut f = b.finish();
        construct_ssa(&mut f);
        verify_ssa(&f).expect("SSA verification with implicit zero init");
    }

    #[test]
    fn multiple_variables_are_renamed_independently() {
        let mut b = FunctionBuilder::new("two-vars", 1);
        let entry = b.create_block();
        let left = b.create_block();
        let right = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let x = b.declare_value();
        let y = b.declare_value();
        b.iconst_to(x, 1);
        b.iconst_to(y, 10);
        b.branch(p, left, right);
        b.switch_to_block(left);
        b.iconst_to(x, 2);
        b.jump(join);
        b.switch_to_block(right);
        b.iconst_to(y, 20);
        b.jump(join);
        b.switch_to_block(join);
        let s = b.binary(BinaryOp::Add, x, y);
        b.ret(Some(s));
        let mut f = b.finish();
        let result = construct_ssa(&mut f);
        verify_ssa(&f).expect("SSA verification");
        // Both x and y need a φ at the join.
        assert_eq!(result.phis_inserted, 2);
        assert_eq!(f.phis(join).len(), 2);
    }

    #[test]
    fn brdec_definition_reaches_phi() {
        // A hardware loop: the counter is decremented by the terminator.
        let mut b = FunctionBuilder::new("brdec", 1);
        let entry = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let n = b.param(0);
        let counter = b.declare_value();
        b.copy_to(counter, n);
        b.jump(body);
        b.switch_to_block(body);
        // body uses and the terminator redefines `counter`.
        let acc = b.binary(BinaryOp::Add, counter, counter);
        b.func_mut().append_inst(
            body,
            InstData::BrDec { counter, dec: counter, loop_dest: body, exit_dest: exit },
        );
        b.switch_to_block(exit);
        b.ret(Some(acc));
        let mut f = b.finish();
        let result = construct_ssa(&mut f);
        verify_ssa(&f).expect("SSA verification");
        // The loop header (body) needs a φ for the counter.
        assert!(result.phis_inserted >= 1);
        assert!(!f.phis(body).is_empty());
    }

    #[test]
    fn already_ssa_function_gets_no_phis() {
        let mut b = FunctionBuilder::new("already", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let y = b.binary(BinaryOp::Add, x, x);
        b.ret(Some(y));
        let mut f = b.finish();
        let before = f.display().to_string();
        let result = construct_ssa(&mut f);
        assert_eq!(result.phis_inserted, 0);
        verify_ssa(&f).expect("SSA verification");
        // Straight-line code is renamed but structurally unchanged.
        assert_eq!(f.num_blocks(), 1);
        assert_ne!(before, String::new());
    }

    #[test]
    fn pinned_registers_survive_renaming() {
        let mut b = FunctionBuilder::new("pinned", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.declare_value();
        b.iconst_to(x, 3);
        b.ret(Some(x));
        let mut f = b.finish();
        f.pin_value(x, 5);
        construct_ssa(&mut f);
        verify_ssa(&f).expect("SSA verification");
        // Some renamed version of x keeps the pin.
        let pinned_count = f.values().filter(|&v| f.pinned_reg(v) == Some(5)).count();
        assert!(pinned_count >= 1);
    }
}
