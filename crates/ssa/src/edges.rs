//! Critical-edge splitting.
//!
//! A CFG edge is *critical* when its source has several successors and its
//! destination has several predecessors. Copies emulating φ-functions cannot
//! be placed on such an edge without affecting other paths, so most
//! out-of-SSA schemes either split these edges or (as the paper's approach
//! does) handle them with the extra φ-entry copy of Sreedhar's Method I.
//! Edge splitting is still needed for the branch-with-decrement corner case
//! (Figure 2), so this module provides both a single-edge splitter and a
//! whole-function pass.

use ossa_ir::entity::Block;
use ossa_ir::{ControlFlowGraph, Function, InstData};

/// Splits the edge `pred -> succ` by inserting a fresh block containing a
/// single jump to `succ`. φ-functions of `succ` are redirected to the new
/// block. Returns the new block.
///
/// # Panics
/// Panics if there is no edge from `pred` to `succ`.
pub fn split_edge(func: &mut Function, pred: Block, succ: Block) -> Block {
    let term = func.terminator(pred).expect("predecessor must have a terminator");
    assert!(func.inst(term).successors_iter().any(|s| s == succ), "no edge from {pred} to {succ}");
    let middle = func.add_block();
    func.inst_mut(term).replace_successor(succ, middle);
    func.append_inst(middle, InstData::Jump { dest: succ });
    func.redirect_phi_inputs(succ, pred, middle);
    middle
}

/// Splits every critical edge of `func`. Returns the number of edges split.
pub fn split_critical_edges(func: &mut Function) -> usize {
    let cfg = ControlFlowGraph::compute(func);
    let critical: Vec<(Block, Block)> =
        cfg.edges().filter(|&(pred, succ)| cfg.is_critical_edge(pred, succ)).collect();
    let count = critical.len();
    for (pred, succ) in critical {
        split_edge(func, pred, succ);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{verify_ssa, ControlFlowGraph};

    /// entry branches to {left, join}; left jumps to join: entry->join is
    /// critical.
    fn critical_cfg() -> (Function, Block, Block, Block) {
        let mut b = FunctionBuilder::new("crit", 1);
        let entry = b.create_block();
        let left = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let one = b.iconst(1);
        b.branch(p, left, join);
        b.switch_to_block(left);
        let two = b.iconst(2);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(entry, one), (left, two)]);
        b.ret(Some(m));
        (b.finish(), entry, left, join)
    }

    #[test]
    fn split_edge_redirects_phi_and_branch() {
        let (mut f, entry, left, join) = critical_cfg();
        let middle = split_edge(&mut f, entry, join);
        verify_ssa(&f).expect("still valid SSA");
        assert_eq!(f.successors(entry), vec![left, middle]);
        assert_eq!(f.successors(middle), vec![join]);
        // The φ argument previously coming from entry now comes from middle.
        assert!(f.phi_inputs_from(join, entry).is_empty());
        assert_eq!(f.phi_inputs_from(join, middle).len(), 1);
    }

    #[test]
    fn split_critical_edges_splits_only_critical_ones() {
        let (mut f, ..) = critical_cfg();
        let blocks_before = f.num_blocks();
        let split = split_critical_edges(&mut f);
        assert_eq!(split, 1);
        assert_eq!(f.num_blocks(), blocks_before + 1);
        verify_ssa(&f).expect("still valid SSA");
        // After splitting, no critical edge remains.
        let cfg = ControlFlowGraph::compute(&f);
        assert!(cfg.edges().all(|(p, s)| !cfg.is_critical_edge(p, s)));
    }

    #[test]
    fn function_without_critical_edges_is_unchanged() {
        let mut b = FunctionBuilder::new("simple", 1);
        let entry = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        b.jump(exit);
        b.switch_to_block(exit);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(split_critical_edges(&mut f), 0);
        assert_eq!(f.num_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "no edge")]
    fn splitting_a_missing_edge_panics() {
        let (mut f, _, left, _) = critical_cfg();
        let ghost = f.add_block();
        f.append_inst(ghost, InstData::Return { value: None });
        split_edge(&mut f, left, ghost);
    }
}
