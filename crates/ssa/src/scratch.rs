//! Recycled working storage for the SSA-side passes.
//!
//! The streaming translation engine rebuilds every incoming function inside
//! pooled storage, and once that pool is warm the *translation* allocates
//! nothing. [`SsaScratch`] extends the same discipline to the SSA-side
//! passes that run before translation — construction, copy propagation,
//! dead-code elimination — so the whole generate → SSA → optimize →
//! translate cycle is allocation-free at steady state.
//!
//! Every buffer follows one of two resets:
//!
//! * **plain** (`Copy`-valued maps and vectors): truncate to empty, then
//!   regrow inside retained capacity;
//! * **high-water** (`Vec`-valued maps): slots are cleared *in place* and the
//!   map is never truncated — truncating would drop the per-slot heap
//!   buffers the recycling exists to keep.
//!
//! The scratch-aware passes are bit-identical to their allocating
//! counterparts: only where the working bytes live changes, never what is
//! computed.

use ossa_ir::entity::{Block, Inst, SecondaryMap, Value};
use ossa_ir::PhiArg;

/// Recycled working storage shared by [`crate::construct_ssa_scratch`],
/// [`crate::propagate_copies_keeping_scratch`] and
/// [`crate::eliminate_dead_code_scratch`].
///
/// Create one per worker (or per [`ossa_ir::FunctionPool`]) and pass it to
/// every call; after one warm-up function the passes stop allocating.
#[derive(Debug, Default)]
pub struct SsaScratch {
    // --- construction ---------------------------------------------------
    /// Variables live-in at entry (get an implicit zero definition).
    pub(crate) entry_live_in: Vec<Value>,
    /// Definition blocks per variable (high-water reset).
    pub(crate) def_blocks: SecondaryMap<Value, Vec<Block>>,
    /// Per-instruction defs buffer.
    pub(crate) def_tmp: Vec<Value>,
    /// φ-placement worklist.
    pub(crate) worklist: Vec<Block>,
    /// Blocks that already received a φ for the current variable.
    pub(crate) has_phi: Vec<bool>,
    /// Blocks ever enqueued for the current variable.
    pub(crate) ever_on_worklist: Vec<bool>,
    /// φ-argument assembly buffer.
    pub(crate) phi_args: Vec<PhiArg>,
    /// Renaming stacks per original variable (high-water reset).
    pub(crate) stacks: SecondaryMap<Value, Vec<Value>>,
    /// Shared push log for the recursive renaming walk; each frame pops back
    /// to its entry length.
    pub(crate) pushed: Vec<Value>,
    /// Per-instruction def replacement pairs (old → fresh).
    pub(crate) def_repl: Vec<(Value, Value)>,
    /// Origin map of the most recent construction (new value → original
    /// variable).
    pub(crate) origin: SecondaryMap<Value, Option<Value>>,

    // --- copy propagation -----------------------------------------------
    /// value → copied-from source.
    pub(crate) copy_source: SecondaryMap<Value, Option<Value>>,
    /// Memoized resolution roots.
    pub(crate) roots: SecondaryMap<Value, Option<Value>>,
    /// Copy instructions found, with their block and destination.
    pub(crate) copy_insts: Vec<(Block, Inst, Value)>,

    // --- dead-code elimination ------------------------------------------
    /// Use counts per value.
    pub(crate) use_counts: SecondaryMap<Value, u32>,
}

impl SsaScratch {
    /// Creates empty scratch storage. Nothing is allocated until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The origin map written by the most recent
    /// [`crate::construct_ssa_scratch`] call: for each value present after
    /// construction, the original variable it was renamed from.
    pub fn origin(&self) -> &SecondaryMap<Value, Option<Value>> {
        &self.origin
    }

    /// Moves the origin map out of the scratch (leaving an empty one), for
    /// callers that need to keep it across further scratch reuse.
    pub fn take_origin(&mut self) -> SecondaryMap<Value, Option<Value>> {
        std::mem::take(&mut self.origin)
    }
}
