//! Dead-code elimination on SSA form.
//!
//! Cytron et al. already observed that the naive φ replacement should be
//! preceded by dead-code elimination. This pass removes value-producing
//! instructions (including φ-functions and copies) whose results are never
//! used, iterating until a fixpoint since removing one instruction can make
//! another dead.

use ossa_ir::Function;
use ossa_liveness::FunctionAnalyses;

use crate::scratch::SsaScratch;

/// Statistics of a DCE run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeadCodeElimination {
    /// Number of instructions removed.
    pub insts_removed: usize,
    /// Number of fixpoint iterations performed.
    pub iterations: usize,
}

/// Like [`eliminate_dead_code`], declaring its invalidation against a shared
/// analysis cache: DCE removes instructions inside existing blocks, so the
/// CFG-level analyses stay valid and only the instruction-dependent caches
/// are dropped — and only when an instruction was actually removed.
pub fn eliminate_dead_code_cached(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
) -> DeadCodeElimination {
    let stats = eliminate_dead_code(func);
    if stats.insts_removed > 0 {
        analyses.invalidate_instructions();
    }
    stats
}

/// Removes side-effect-free instructions whose definitions are unused.
pub fn eliminate_dead_code(func: &mut Function) -> DeadCodeElimination {
    let mut scratch = SsaScratch::new();
    eliminate_dead_code_scratch(func, &mut scratch)
}

/// Like [`eliminate_dead_code`], with the working storage recycled from
/// `scratch` — the zero-steady-state-allocation form used by the pooled
/// streaming path. Removal order (and with it the final instruction stream)
/// is identical; only the working storage is reused.
pub fn eliminate_dead_code_scratch(
    func: &mut Function,
    scratch: &mut SsaScratch,
) -> DeadCodeElimination {
    let mut stats = DeadCodeElimination::default();
    loop {
        stats.iterations += 1;
        // Count uses of every value (φ arguments included).
        scratch.use_counts.truncate(0);
        scratch.use_counts.resize(func.num_values());
        for bi in 0..func.layout().len() {
            let block = func.layout()[bi];
            for ii in 0..func.block_len(block) {
                let inst = func.block_insts(block)[ii];
                scratch.def_tmp.clear();
                func.collect_inst_uses(inst, &mut scratch.def_tmp);
                for &v in &scratch.def_tmp {
                    scratch.use_counts[v] += 1;
                }
            }
        }

        // Walk each block by position, advancing only when the instruction
        // survives: equivalent to iterating a snapshot of the list (removing
        // an instruction never changes which *later* instructions exist).
        let mut removed_this_round = 0usize;
        for bi in 0..func.layout().len() {
            let block = func.layout()[bi];
            let mut pos = 0usize;
            while pos < func.block_len(block) {
                let inst = func.block_insts(block)[pos];
                if func.inst(inst).has_side_effects() {
                    pos += 1;
                    continue;
                }
                scratch.def_tmp.clear();
                func.collect_inst_defs(inst, &mut scratch.def_tmp);
                if scratch.def_tmp.is_empty() {
                    pos += 1;
                    continue;
                }
                if scratch.def_tmp.iter().all(|&d| scratch.use_counts[d] == 0) {
                    func.remove_inst(block, inst);
                    removed_this_round += 1;
                } else {
                    pos += 1;
                }
            }
        }
        stats.insts_removed += removed_this_round;
        if removed_this_round == 0 {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{verify_ssa, BinaryOp};

    #[test]
    fn removes_transitively_dead_chains() {
        let mut b = FunctionBuilder::new("dce", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let dead1 = b.iconst(1);
        let dead2 = b.binary(BinaryOp::Add, dead1, dead1);
        let _dead3 = b.binary(BinaryOp::Mul, dead2, dead2);
        let live = b.binary(BinaryOp::Add, x, x);
        b.ret(Some(live));
        let mut f = b.finish();
        let stats = eliminate_dead_code(&mut f);
        assert_eq!(stats.insts_removed, 3);
        assert!(stats.iterations >= 2);
        verify_ssa(&f).expect("still valid");
        assert_eq!(f.block_len(entry), 3); // param, add, return
    }

    #[test]
    fn keeps_side_effecting_instructions() {
        let mut b = FunctionBuilder::new("effects", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let _unused_call = b.call(1, vec![x]);
        b.store(x, x);
        b.ret(None);
        let mut f = b.finish();
        let stats = eliminate_dead_code(&mut f);
        assert_eq!(stats.insts_removed, 0);
        assert_eq!(f.block_len(entry), 4);
    }

    #[test]
    fn removes_dead_phis() {
        let mut b = FunctionBuilder::new("deadphi", 1);
        let entry = b.create_block();
        let left = b.create_block();
        let right = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let a = b.iconst(1);
        let c = b.iconst(2);
        b.branch(p, left, right);
        b.switch_to_block(left);
        b.jump(join);
        b.switch_to_block(right);
        b.jump(join);
        b.switch_to_block(join);
        let _dead_phi = b.phi(vec![(left, a), (right, c)]);
        b.ret(None);
        let mut f = b.finish();
        let stats = eliminate_dead_code(&mut f);
        // The φ dies first, then both constants.
        assert_eq!(stats.insts_removed, 3);
        assert_eq!(f.count_phis(), 0);
        verify_ssa(&f).expect("still valid");
    }
}
