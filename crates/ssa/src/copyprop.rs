//! Copy propagation on SSA form.
//!
//! Copy propagation replaces every use of `b` by `a` when `b = a` is a copy,
//! following chains of copies to their root. It is one of the SSA
//! optimizations that *break conventionality*: after it runs, SSA variables
//! related by φ-functions may have overlapping live ranges (the swap and
//! lost-copy situations of the paper), which is exactly what the out-of-SSA
//! translation has to cope with.

use ossa_ir::entity::{SecondaryMap, Value};
use ossa_ir::{Function, InstData};
use ossa_liveness::FunctionAnalyses;

use crate::scratch::SsaScratch;

/// Statistics of a copy-propagation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CopyPropagation {
    /// Number of copy instructions whose uses were rewritten and that were
    /// removed from the function.
    pub copies_removed: usize,
    /// Number of operand rewrites performed.
    pub uses_rewritten: usize,
}

/// Runs copy propagation on SSA `func` in place.
///
/// Only plain [`InstData::Copy`] definitions are folded; φ-functions and
/// parallel copies are left untouched (their treatment is precisely the
/// subject of the out-of-SSA translation). The folded copy instructions are
/// removed.
pub fn propagate_copies(func: &mut Function) -> CopyPropagation {
    propagate_copies_keeping(func, 0)
}

/// Like [`propagate_copies`], declaring its invalidation against a shared
/// analysis cache: copy propagation rewrites and removes instructions inside
/// existing blocks, so the CFG-level analyses stay valid and only the
/// instruction-dependent caches are dropped — and only when the pass
/// actually changed something.
pub fn propagate_copies_cached(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
) -> CopyPropagation {
    propagate_copies_keeping_cached(func, 0, analyses)
}

/// Cached-pipeline variant of [`propagate_copies_keeping`]; see
/// [`propagate_copies_cached`] for the invalidation contract.
pub fn propagate_copies_keeping_cached(
    func: &mut Function,
    keep_every: usize,
    analyses: &mut FunctionAnalyses,
) -> CopyPropagation {
    let stats = propagate_copies_keeping(func, keep_every);
    if stats != CopyPropagation::default() {
        analyses.invalidate_instructions();
    }
    stats
}

/// Like [`propagate_copies`], but keeps every `keep_every`-th copy
/// untouched (`0` keeps none). Real optimization pipelines rarely remove
/// every copy — some remain because of partial redundancy, rematerialization
/// heuristics or renaming constraints — and the remaining ones are exactly
/// where the coalescing strategies compared by the paper differ, so the
/// workload generator keeps a fraction of them.
pub fn propagate_copies_keeping(func: &mut Function, keep_every: usize) -> CopyPropagation {
    let mut scratch = SsaScratch::new();
    propagate_copies_keeping_scratch(func, keep_every, &mut scratch)
}

/// Like [`propagate_copies_keeping`], with the working maps recycled from
/// `scratch` — the zero-steady-state-allocation form used by the pooled
/// streaming path. Computation (including the `keep_every` counting) is
/// identical; only the working storage is reused.
pub fn propagate_copies_keeping_scratch(
    func: &mut Function,
    keep_every: usize,
    scratch: &mut SsaScratch,
) -> CopyPropagation {
    // Map every copy destination to its source.
    scratch.copy_source.truncate(0);
    scratch.copy_source.resize(func.num_values());
    scratch.copy_insts.clear();
    let mut copy_index = 0usize;
    // The pass removes instructions only after all the walks below, so the
    // layout and per-block instruction lists can be walked by index.
    for bi in 0..func.layout().len() {
        let block = func.layout()[bi];
        for ii in 0..func.block_len(block) {
            let inst = func.block_insts(block)[ii];
            if let InstData::Copy { dst, src } = *func.inst(inst) {
                copy_index += 1;
                if keep_every != 0 && copy_index.is_multiple_of(keep_every) {
                    continue; // deliberately kept
                }
                scratch.copy_source[dst] = Some(src);
                scratch.copy_insts.push((block, inst, dst));
            }
        }
    }

    if scratch.copy_insts.is_empty() {
        return CopyPropagation::default();
    }

    // Resolve chains of copies (a <- b <- c) to the root definition.
    let resolve = |mut v: Value, map: &SecondaryMap<Value, Option<Value>>| -> Value {
        let mut hops = 0usize;
        while let Some(src) = map[v] {
            v = src;
            hops += 1;
            if hops > map.len() {
                break; // cycle guard; cannot happen in well-formed SSA
            }
        }
        v
    };

    scratch.roots.truncate(0);
    scratch.roots.resize(func.num_values());
    for value in func.values() {
        if scratch.copy_source[value].is_some() {
            scratch.roots[value] = Some(resolve(value, &scratch.copy_source));
        }
    }

    // Rewrite all uses (including φ arguments) to the roots.
    let mut uses_rewritten = 0usize;
    for bi in 0..func.layout().len() {
        let block = func.layout()[bi];
        for ii in 0..func.block_len(block) {
            let inst = func.block_insts(block)[ii];
            let roots = &scratch.roots;
            func.map_inst_uses(inst, |v| match roots[v] {
                Some(root) if root != v => {
                    uses_rewritten += 1;
                    root
                }
                _ => v,
            });
        }
    }

    // Remove the now-dead copy instructions.
    let mut copies_removed = 0usize;
    for ci in 0..scratch.copy_insts.len() {
        let (block, inst, _dst) = scratch.copy_insts[ci];
        if func.remove_inst(block, inst) {
            copies_removed += 1;
        }
    }

    CopyPropagation { copies_removed, uses_rewritten }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_ir::builder::FunctionBuilder;
    use ossa_ir::{verify_ssa, BinaryOp};

    #[test]
    fn chains_of_copies_are_folded_to_the_root() {
        let mut b = FunctionBuilder::new("chain", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let a = b.copy(x);
        let c = b.copy(a);
        let d = b.copy(c);
        let r = b.binary(BinaryOp::Add, d, a);
        b.ret(Some(r));
        let mut f = b.finish();
        let stats = propagate_copies(&mut f);
        assert_eq!(stats.copies_removed, 3);
        assert!(stats.uses_rewritten >= 2);
        verify_ssa(&f).expect("still valid SSA");
        // The add now reads x twice.
        let add = f
            .block_insts(entry)
            .iter()
            .copied()
            .find(|&i| matches!(f.inst(i), InstData::Binary { .. }));
        assert_eq!(f.inst(add.unwrap()).uses(f.pools()), vec![x, x]);
        assert_eq!(f.count_copies(), 0);
    }

    #[test]
    fn phi_arguments_are_rewritten() {
        let mut b = FunctionBuilder::new("phi-args", 1);
        let entry = b.create_block();
        let left = b.create_block();
        let right = b.create_block();
        let join = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let x = b.iconst(1);
        b.branch(p, left, right);
        b.switch_to_block(left);
        let a = b.copy(x);
        b.jump(join);
        b.switch_to_block(right);
        let c = b.copy(x);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(left, a), (right, c)]);
        b.ret(Some(m));
        let mut f = b.finish();
        propagate_copies(&mut f);
        verify_ssa(&f).expect("still valid SSA");
        // Both φ arguments now reference x directly.
        assert_eq!(f.phi_inputs_from(join, left)[0].1, x);
        assert_eq!(f.phi_inputs_from(join, right)[0].1, x);
    }

    #[test]
    fn function_without_copies_is_untouched() {
        let mut b = FunctionBuilder::new("nocopy", 1);
        let entry = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let x = b.param(0);
        let y = b.binary(BinaryOp::Mul, x, x);
        b.ret(Some(y));
        let mut f = b.finish();
        let before = f.display().to_string();
        let stats = propagate_copies(&mut f);
        assert_eq!(stats, CopyPropagation::default());
        assert_eq!(f.display().to_string(), before);
    }

    #[test]
    fn propagation_can_break_conventionality() {
        // The lost-copy pattern: after propagating the copy feeding the φ,
        // the φ result stays live across the back edge together with the
        // next iteration's value.
        let mut b = FunctionBuilder::new("lost-copy", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let exit = b.create_block();
        b.set_entry(entry);
        b.switch_to_block(entry);
        let p = b.param(0);
        let x1 = b.iconst(1);
        b.jump(header);
        b.switch_to_block(header);
        let x3 = b.declare_value();
        let x2 = b.phi(vec![(entry, x1), (header, x3)]);
        let one = b.iconst(1);
        let sum = b.binary(BinaryOp::Add, x2, one);
        // x3 = copy sum ; feeding the φ — conventional form.
        b.func_mut().append_inst(header, InstData::Copy { dst: x3, src: sum });
        b.branch(p, header, exit);
        b.switch_to_block(exit);
        b.ret(Some(x2));
        let mut f = b.finish();
        verify_ssa(&f).expect("valid before");
        let stats = propagate_copies(&mut f);
        assert_eq!(stats.copies_removed, 1);
        verify_ssa(&f).expect("valid after");
        // The φ now takes `sum` directly on the back edge.
        assert_eq!(f.phi_inputs_from(header, header)[0].1, sum);
    }
}
