//! # ossa-ssa — SSA construction and the optimizations that break CSSA
//!
//! This crate provides the SSA-side substrate of the out-of-SSA
//! reproduction:
//!
//! * [`construct::construct_ssa`] — pruned SSA construction (Cytron et al.):
//!   φ placement on iterated dominance frontiers and dominance-tree renaming;
//! * [`copyprop::propagate_copies`] — SSA copy propagation, the optimization
//!   that creates the overlapping live ranges (swap / lost-copy situations)
//!   the out-of-SSA translation must handle;
//! * [`dce::eliminate_dead_code`] — dead-code elimination;
//! * [`edges`] — critical-edge splitting (needed for the `br_dec` corner
//!   case of the paper's Figure 2);
//! * [`cssa`] — φ congruence classes and the conventional-SSA checker.
//!
//! # Examples
//!
//! ```
//! use ossa_ir::builder::FunctionBuilder;
//! use ossa_ir::{verify_ssa, BinaryOp, CmpOp};
//! use ossa_ssa::{construct_ssa, propagate_copies, is_conventional};
//!
//! // i = 0; while (i < n) i = i + 1; return i  — written with one mutable
//! // virtual register, then converted to SSA.
//! let mut b = FunctionBuilder::new("count", 1);
//! let entry = b.create_block();
//! let header = b.create_block();
//! let body = b.create_block();
//! let exit = b.create_block();
//! b.set_entry(entry);
//! b.switch_to_block(entry);
//! let n = b.param(0);
//! let i = b.declare_value();
//! b.iconst_to(i, 0);
//! b.jump(header);
//! b.switch_to_block(header);
//! let c = b.cmp(CmpOp::Lt, i, n);
//! b.branch(c, body, exit);
//! b.switch_to_block(body);
//! let one = b.iconst(1);
//! b.binary_to(BinaryOp::Add, i, i, one);
//! b.jump(header);
//! b.switch_to_block(exit);
//! b.ret(Some(i));
//! let mut func = b.finish();
//!
//! construct_ssa(&mut func);
//! verify_ssa(&func)?;
//! assert!(is_conventional(&func));
//! propagate_copies(&mut func);
//! # Ok::<(), ossa_ir::verify::VerifierErrors>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod construct;
pub mod copyprop;
pub mod cssa;
pub mod dce;
pub mod edges;
pub mod scratch;

pub use construct::{construct_ssa, construct_ssa_cached, construct_ssa_scratch, SsaConstruction};
pub use copyprop::{
    propagate_copies, propagate_copies_cached, propagate_copies_keeping,
    propagate_copies_keeping_cached, propagate_copies_keeping_scratch, CopyPropagation,
};
pub use cssa::{
    cssa_violations, cssa_violations_cached, is_conventional, is_conventional_cached,
    CssaViolation, PhiCongruence,
};
pub use dce::{
    eliminate_dead_code, eliminate_dead_code_cached, eliminate_dead_code_scratch,
    DeadCodeElimination,
};
pub use edges::{split_critical_edges, split_edge};
pub use scratch::SsaScratch;
