//! Service observability: latency histograms and the [`ServiceStats`]
//! counter block every overload decision is recorded in.
//!
//! Counters are deliberately coarse-grained and monotonic — each one counts
//! a *decision* the service made (accepted, shed, expired, degraded…), so a
//! scripted overload test can assert the exact sequence of decisions and a
//! production dashboard can alert on their rates. Latency is recorded in
//! log₂-bucketed histograms: constant memory, no per-request allocation, and
//! deterministic quantile reads (the upper bound of the bucket holding the
//! requested rank).

use std::time::Duration;

use ossa_ir::PoolStats;

/// Number of log₂ buckets: bucket `i` holds durations whose microsecond
/// count needs `i` bits, i.e. `[2^(i-1), 2^i)` µs (bucket 0: sub-µs). 40
/// buckets cover up to ~2^39 µs ≈ 6.4 days.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram with deterministic quantiles.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], count: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(duration: Duration) -> usize {
        let micros = duration.as_micros().min(u64::MAX as u128) as u64;
        let bits = (u64::BITS - micros.leading_zeros()) as usize;
        bits.min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, duration: Duration) {
        self.buckets[Self::bucket_of(duration)] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in seconds: the upper bound of the
    /// bucket holding the sample of that rank, so the estimate always
    /// *over*-reports within one bucket (a conservative p99 for an SLO
    /// check). Returns 0.0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i covers durations below 2^i microseconds.
                return (1u64 << i) as f64 / 1e6;
            }
        }
        (1u64 << (BUCKETS - 1)) as f64 / 1e6
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }
}

/// A point-in-time snapshot of every counter, gauge and histogram the
/// service maintains. Returned by `TranslationService::stats` (live, worker
/// pools not yet merged) and `TranslationService::shutdown` (final, pools
/// merged).
///
/// See the README's "Overload model & degradation ladder" section for the
/// meaning of each counter in the admission/deadline/ladder state machine.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Requests presented to `submit` (accepted or not).
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests refused with `SubmitError::QueueFull` (Reject admission).
    pub rejected_queue_full: u64,
    /// Requests refused with `SubmitError::Timeout` (Block admission wait
    /// exhausted before space opened).
    pub admission_timeouts: u64,
    /// Requests refused because the service was shutting down.
    pub rejected_shutdown: u64,
    /// Previously *accepted* requests evicted by ShedOldest admission; each
    /// received `ServiceError::Shed`.
    pub shed: u64,
    /// Accepted requests whose deadline had already passed at dequeue; each
    /// received `ServiceError::ExpiredInQueue` without translating.
    pub expired_in_queue: u64,
    /// Requests whose translation completed and was delivered.
    pub completed: u64,
    /// Requests whose every ladder rung failed; each received
    /// `ServiceError::Translate` with the final rung's error.
    pub failed: u64,
    /// Requests whose *final* error was `TranslateError::DeadlineExceeded`
    /// (the cancellation token tripped mid-translation on the last rung).
    pub deadline_exceeded: u64,
    /// Requests healed by a later ladder rung after an earlier rung failed.
    pub recovered: u64,
    /// Validation rejections observed across all rungs (including rungs
    /// that were subsequently healed).
    pub validation_failures: u64,
    /// Ladder transitions to a *more* degraded level.
    pub degraded_transitions: u64,
    /// Ladder transitions back toward the full-fidelity level.
    pub recovered_transitions: u64,
    /// Requests started at each degradation level (index = level).
    pub per_level: [u64; 3],
    /// The degradation level at snapshot time.
    pub level: u8,
    /// High-water mark of the queue depth.
    pub max_queue_depth: u64,
    /// Queue-wait latency (enqueue → dequeue), per accepted request.
    pub queue_wait: LatencyHistogram,
    /// Translation latency (ladder start → final outcome), per translated
    /// request.
    pub translate: LatencyHistogram,
    /// End-to-end latency (enqueue → reply), per accepted request.
    pub total: LatencyHistogram,
    /// Aggregated worker pool traffic (pristine snapshots + engine slots).
    /// Merged at worker exit, so live snapshots report only exited workers.
    pub pool: PoolStats,
}

impl ServiceStats {
    /// Accepted requests that have reached a terminal outcome so far.
    pub fn resolved(&self) -> u64 {
        self.completed + self.failed + self.expired_in_queue + self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), 0.0);
        for micros in [1u64, 1, 1, 1000, 1000, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 6);
        // 4 of 6 samples at or below the 1µs/1ms buckets: the median lands
        // in the 1µs bucket (upper bound 2^1 µs), p99 in the 100ms range.
        let p50 = h.quantile(0.5);
        assert!(p50 <= 4e-6, "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((0.1..0.27).contains(&p99), "p99 {p99}");
        // Quantiles never under-report: every sample ≤ its bucket's bound.
        assert!(h.quantile(1.0) >= 0.1);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_millis(10));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(1.0) >= 0.01);
    }
}
