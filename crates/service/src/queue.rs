//! The bounded submission queue: a `Mutex` + two `Condvar`s over a
//! `VecDeque`, with the three admission policies and the pause/close
//! lifecycle the service layers on top.
//!
//! The queue is deliberately *not* lock-free: contention here is one push or
//! pop per translated function, which is microseconds of work, and a mutex
//! keeps the admission decisions (full? shed whom? closed?) atomic with the
//! depth they were decided on. What matters for overload behaviour is that
//! the capacity check and the eviction happen under the same lock as the
//! insertion — no TOCTOU window where two producers both shed the same
//! victim or both squeeze past the bound.

use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use ossa_ir::Function;

use crate::ServiceResponse;

/// One accepted request parked in the queue.
pub(crate) struct QueueEntry {
    /// Service-assigned request id, echoed in the response.
    pub id: u64,
    /// The function to translate; ownership round-trips back to the client
    /// in the response, so a rejected or shed request loses nothing.
    pub func: Function,
    /// Absolute deadline spanning queue wait *and* translation.
    pub deadline: Option<Instant>,
    /// When the request was accepted; anchors the latency histograms.
    pub enqueued: Instant,
    /// One-shot reply channel (capacity 1, so the send never blocks).
    pub reply: SyncSender<ServiceResponse>,
}

struct Inner {
    entries: VecDeque<QueueEntry>,
    /// Closed queues accept nothing; pops drain the backlog then return
    /// `None`.
    closed: bool,
    /// Paused queues accept pushes but park consumers — the deterministic
    /// overload throttle the queue-edge tests script depth with.
    paused: bool,
}

/// Why a push was refused. The entry comes back so the caller can return
/// the function to the client.
pub(crate) enum PushRefusal {
    /// The queue was at capacity (Reject admission, or a Block admission
    /// wait that expired).
    Full(QueueEntry),
    /// The queue was closed.
    Closed(QueueEntry),
}

/// What a successful push displaced: under ShedOldest admission at
/// capacity, the oldest queued entry is evicted to admit the new one.
pub(crate) struct Admitted {
    pub shed: Option<QueueEntry>,
    /// Queue depth immediately after the push, for degradation decisions
    /// made atomically with the admission.
    pub depth: usize,
}

pub(crate) struct SharedQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl SharedQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
                paused: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Rejecting push: refuses immediately when at capacity.
    // The refused submission is handed back by value so the caller keeps
    // ownership of the function; the variants are as large as `Function`
    // by design and the path is cold.
    #[allow(clippy::result_large_err)]
    pub fn push_reject(&self, entry: QueueEntry) -> Result<Admitted, PushRefusal> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushRefusal::Closed(entry));
        }
        if inner.entries.len() >= self.capacity {
            return Err(PushRefusal::Full(entry));
        }
        Ok(self.admit(&mut inner, entry, None))
    }

    /// Shedding push: at capacity, evicts the oldest queued entry to make
    /// room. Always admits (unless closed).
    // The refused submission is handed back by value so the caller keeps
    // ownership of the function; the variants are as large as `Function`
    // by design and the path is cold.
    #[allow(clippy::result_large_err)]
    pub fn push_shed_oldest(&self, entry: QueueEntry) -> Result<Admitted, PushRefusal> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushRefusal::Closed(entry));
        }
        let shed =
            if inner.entries.len() >= self.capacity { inner.entries.pop_front() } else { None };
        Ok(self.admit(&mut inner, entry, shed))
    }

    /// Blocking push: waits for space until `wait_until` (forever if
    /// `None`), then refuses with `Full`.
    // The refused submission is handed back by value so the caller keeps
    // ownership of the function; the variants are as large as `Function`
    // by design and the path is cold.
    #[allow(clippy::result_large_err)]
    pub fn push_block(
        &self,
        entry: QueueEntry,
        wait_until: Option<Instant>,
    ) -> Result<Admitted, PushRefusal> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return Err(PushRefusal::Closed(entry));
            }
            if inner.entries.len() < self.capacity {
                return Ok(self.admit(&mut inner, entry, None));
            }
            match wait_until {
                None => inner = self.not_full.wait(inner).unwrap(),
                Some(limit) => {
                    let now = Instant::now();
                    if now >= limit {
                        return Err(PushRefusal::Full(entry));
                    }
                    let (guard, timeout) = self.not_full.wait_timeout(inner, limit - now).unwrap();
                    inner = guard;
                    if timeout.timed_out() && inner.entries.len() >= self.capacity && !inner.closed
                    {
                        return Err(PushRefusal::Full(entry));
                    }
                }
            }
        }
    }

    fn admit(&self, inner: &mut Inner, entry: QueueEntry, shed: Option<QueueEntry>) -> Admitted {
        inner.entries.push_back(entry);
        let depth = inner.entries.len();
        if !inner.paused {
            self.not_empty.notify_one();
        }
        Admitted { shed, depth }
    }

    /// Blocks until an entry is available (and the queue is unpaused) or
    /// the queue is closed *and* drained. Returns the entry with the depth
    /// remaining after the pop.
    pub fn pop(&self) -> Option<(QueueEntry, usize)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.paused {
                if let Some(entry) = inner.entries.pop_front() {
                    let depth = inner.entries.len();
                    self.not_full.notify_one();
                    return Some((entry, depth));
                }
                if inner.closed {
                    return None;
                }
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Parks (or releases) consumers without affecting producers.
    pub fn set_paused(&self, paused: bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.paused = paused;
        if !paused {
            drop(inner);
            self.not_empty.notify_all();
        }
    }

    /// Closes the queue: future pushes refuse, consumers drain the backlog
    /// then observe end-of-stream. Also unpauses, so a paused service shuts
    /// down cleanly.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        inner.paused = false;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}
